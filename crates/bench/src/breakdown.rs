//! Table 1: the cost breakdown of the MAC authorization protocol.
//!
//! The paper decomposes one request into phases and reports two columns —
//! an SSL request (total 47 ms) and a Snowflake MAC request (total 110 ms):
//!
//! ```text
//! Minimum cost of HTTP GET            5     5
//! Java+Jetty overhead for HTTP       20    20
//! Java SSL overhead                  22     —
//! S-expression parsing                —   ~20
//! SPKI object unmarshalling           —   ~20
//! Other Snowflake overhead            —    17
//! MAC costs                           —    28
//! Total                              47   110
//! ```
//!
//! [`measure`] reproduces each phase with the real code paths and returns
//! the same rows.

use crate::rigs::{self, HttpKind, Tier};
use crate::time_it;
use snowflake_core::{Certificate, Delegation, Principal, Proof, Tag, Time, Validity, VerifyCtx};
use snowflake_crypto::hmac::hmac_sha256;
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::HttpRequest;
use snowflake_sexpr::Sexp;
use std::time::Duration;

/// One row of Table 1: phase name and the two protocol columns.
pub struct Row {
    /// The phase name, matching the paper's row labels.
    pub phase: &'static str,
    /// Cost within an SSL request, if the phase applies.
    pub ssl: Option<Duration>,
    /// Cost within a Snowflake MAC request, if the phase applies.
    pub snowflake: Option<Duration>,
}

/// A representative proof: a two-certificate delegation chain, the shape a
/// server parses and verifies per Snowflake-authorized request.
fn representative_proof() -> Proof {
    let mut rng = DetRng::new(b"breakdown");
    let mut rb = move |b: &mut [u8]| rng.fill(b);
    let owner = KeyPair::generate(Group::test512(), &mut rb);
    let alice = KeyPair::generate(Group::test512(), &mut rb);
    let tag = Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]);
    let c1 = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: Principal::key(&owner.public),
            tag: tag.clone(),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rb,
    );
    let c2 = Certificate::issue(
        &alice,
        Delegation {
            subject: Principal::message(b"the request"),
            issuer: Principal::key(&alice.public),
            tag,
            validity: Validity::until(Time(2_000_000)),
            delegable: false,
        },
        &mut rb,
    );
    Proof::signed_cert(c2).then(Proof::signed_cert(c1))
}

/// Measures every phase of Table 1 with `iters` iterations per phase.
pub fn measure(iters: usize) -> Vec<Row> {
    let warmup = (iters / 10).max(1);

    // Row 1: minimum cost of an HTTP GET (fast-path server).
    let mut mini = rigs::http_rig(HttpKind::Mini);
    let t_min = time_it(warmup, iters, || {
        mini.get();
    });

    // Row 2: framework overhead = framework GET − minimal GET.
    let mut framework = rigs::http_rig(HttpKind::Framework);
    let t_framework = time_it(warmup, iters, || {
        framework.get();
    });
    let framework_overhead = t_framework.saturating_sub(t_min);

    // Row 3: SSL overhead = GET over the secure channel − framework GET.
    let mut ssl = rigs::ssl_rig(Tier::Framework, false);
    let t_ssl = time_it(warmup, iters, || {
        ssl.get();
    });
    let ssl_overhead = t_ssl.saturating_sub(t_framework);

    // Row 4: S-expression parsing (the representative proof's wire form).
    let proof = representative_proof();
    let wire = proof.to_sexp().canonical();
    let t_parse = time_it(warmup, iters, || {
        let _ = Sexp::parse(&wire).expect("parse");
    });

    // Row 5: SPKI object unmarshalling (typed objects from the tree).
    let tree = Sexp::parse(&wire).expect("parse");
    let t_unmarshal = time_it(warmup, iters, || {
        let _ = Proof::from_sexp(&tree).expect("decode");
    });

    // Row 6: other Snowflake overhead — proof verification plus marshalling
    // the reply-side objects.
    let ctx = VerifyCtx::at(Time(1_000_000));
    let t_other = time_it(warmup, iters, || {
        proof.verify(&ctx).expect("verify");
        let _ = proof.to_sexp();
    });

    // Row 7: MAC costs — request canonicalization, hash, and HMAC.
    let mut req = HttpRequest::get("/doc");
    req.set_header("Connection", "keep-alive");
    let secret = [7u8; 32];
    let t_mac = time_it(warmup, iters, || {
        let h = snowflake_http::request_hash(&req, snowflake_core::HashAlg::Sha256);
        let _ = hmac_sha256(&secret, &h.bytes);
    });

    vec![
        Row {
            phase: "Minimum cost of HTTP GET",
            ssl: Some(t_min),
            snowflake: Some(t_min),
        },
        Row {
            phase: "Framework overhead for HTTP",
            ssl: Some(framework_overhead),
            snowflake: Some(framework_overhead),
        },
        Row {
            phase: "SSL (secure channel) overhead",
            ssl: Some(ssl_overhead),
            snowflake: None,
        },
        Row {
            phase: "S-expression parsing",
            ssl: None,
            snowflake: Some(t_parse),
        },
        Row {
            phase: "SPKI object unmarshalling",
            ssl: None,
            snowflake: Some(t_unmarshal),
        },
        Row {
            phase: "Other Snowflake overhead",
            ssl: None,
            snowflake: Some(t_other),
        },
        Row {
            phase: "MAC costs",
            ssl: None,
            snowflake: Some(t_mac),
        },
    ]
}

/// Column totals `(ssl, snowflake)` over the rows.
pub fn totals(rows: &[Row]) -> (Duration, Duration) {
    let ssl = rows.iter().filter_map(|r| r.ssl).sum();
    let sf = rows.iter().filter_map(|r| r.snowflake).sum();
    (ssl, sf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_proof_verifies() {
        let proof = representative_proof();
        let ctx = VerifyCtx::at(Time(1_000_000));
        proof.verify(&ctx).unwrap();
        assert_eq!(proof.size(), 3);
    }

    #[test]
    fn measure_produces_paper_rows() {
        let rows = measure(2);
        assert_eq!(rows.len(), 7);
        // SSL column has exactly three entries; Snowflake has six.
        assert_eq!(rows.iter().filter(|r| r.ssl.is_some()).count(), 3);
        assert_eq!(rows.iter().filter(|r| r.snowflake.is_some()).count(), 6);
        let (ssl, sf) = totals(&rows);
        assert!(ssl > Duration::ZERO);
        assert!(sf > Duration::ZERO);
    }
}
