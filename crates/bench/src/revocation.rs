//! Revocation freshness rigs: validator push throughput under N
//! subscribers, the staleness window (revoke → every subscriber rejects),
//! and pull-mode CRL refresh throughput.
//!
//! The dominant costs are cryptographic and per-subscriber: each
//! revocation signs one fresh CRL (Schnorr sign) and every subscriber
//! re-verifies it on receipt (Schnorr verify), so push fan-out scales as
//! `sign + N × verify`.  The staleness window is what the subsystem
//! exists to shrink: with push it collapses from "rest of the CRL
//! validity window" (up to minutes) to one synchronous broadcast.

use snowflake_core::{
    Certificate, Delegation, Principal, RevocationPolicy, Time, Validity, VerifyCtx,
};
use snowflake_crypto::{DetRng, Group, HashVal, KeyPair};
use snowflake_revocation::{AgentSink, FreshnessAgent, InProcessValidator, ValidatorService};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn det(seed: &str) -> Box<dyn FnMut(&mut [u8]) + Send> {
    let mut r = DetRng::new(seed.as_bytes());
    Box::new(move |b: &mut [u8]| r.fill(b))
}

fn kp(seed: &str) -> KeyPair {
    let mut r = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| r.fill(b))
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

/// A validator with `n` subscribed freshness agents and one revocable
/// certificate warm at every verifier.
pub struct PushRig {
    /// The validator under load.
    pub validator: Arc<ValidatorService>,
    /// One agent per subscribed verifier.
    pub agents: Vec<Arc<FreshnessAgent>>,
    /// The revocable certificate every verifier honors.
    pub cert: Certificate,
}

/// Builds the rig: `subscribers` agents, each registered with and
/// subscribed to one validator, plus a revocable certificate.
pub fn push_rig(subscribers: usize) -> PushRig {
    let validator = ValidatorService::with_clock(kp("push-validator"), fixed_clock, det("push-rng"));
    let agents: Vec<Arc<FreshnessAgent>> = (0..subscribers)
        .map(|i| {
            let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 10, i as u64);
            agent.register_validator(
                validator.validator_hash(),
                Arc::new(InProcessValidator(Arc::clone(&validator))),
            );
            validator.subscribe(Box::new(AgentSink::new(&agent)));
            agent
        })
        .collect();
    let owner = kp("push-owner");
    let mut rng = DetRng::new(b"push-cert");
    let cert = Certificate::issue_with_revocation(
        &owner,
        Delegation {
            subject: Principal::message(b"warm subject"),
            issuer: Principal::key(&owner.public),
            tag: snowflake_core::Tag::Star,
            validity: Validity::always(),
            delegable: false,
        },
        Some(RevocationPolicy::Crl {
            validator: validator.validator_hash(),
        }),
        &mut |b| rng.fill(b),
    );
    PushRig {
        validator,
        agents,
        cert,
    }
}

/// Revokes `revocations` distinct hashes, each broadcast to every
/// subscriber, and returns the wall time for the whole batch — the
/// validator's push throughput under this fan-out.
pub fn run_push_fanout(rig: &PushRig, revocations: usize) -> Duration {
    let start = Instant::now();
    for i in 0..revocations {
        rig.validator
            .revoke(HashVal::of(format!("dead-{i}").as_bytes()));
    }
    start.elapsed()
}

/// Measures the staleness window: from the instant `revoke` is called
/// until *every* subscribed verifier's agent-fed `VerifyCtx` rejects the
/// certificate.  Returns the window (push makes it one broadcast wide).
pub fn run_staleness_window(rig: &PushRig) -> Duration {
    let ctxs: Vec<VerifyCtx> = rig
        .agents
        .iter()
        .map(|a| VerifyCtx::at(fixed_clock()).with_revocation_source(Arc::clone(a) as _))
        .collect();
    // Warm: every verifier honors the certificate.
    for ctx in &ctxs {
        assert!(
            ctx.check_revocation(&rig.cert).is_ok(),
            "cert must verify before revocation"
        );
    }
    let start = Instant::now();
    rig.validator.revoke(rig.cert.hash());
    loop {
        if ctxs
            .iter()
            .all(|ctx| ctx.check_revocation(&rig.cert).is_err())
        {
            return start.elapsed();
        }
    }
}

/// Runs `rounds` pull refreshes per agent (each fetching and re-checking
/// the validator's current CRL) and returns the wall time — the pull-mode
/// cost push amortizes away.
pub fn run_refresh(rig: &PushRig, rounds: usize) -> Duration {
    // Pull agents: refresh is always due (lead covers the whole window).
    let pullers: Vec<Arc<FreshnessAgent>> = (0..rig.agents.len())
        .map(|i| {
            let agent = FreshnessAgent::with_pacing(
                fixed_clock,
                snowflake_revocation::DEFAULT_CRL_WINDOW,
                0,
                i as u64,
            );
            agent.register_validator(
                rig.validator.validator_hash(),
                Arc::new(InProcessValidator(Arc::clone(&rig.validator))),
            );
            agent
        })
        .collect();
    let start = Instant::now();
    for _ in 0..rounds {
        for agent in &pullers {
            assert_eq!(agent.refresh_due(), 1, "refresh must fetch every round");
        }
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rig_broadcasts_to_all_subscribers() {
        let rig = push_rig(4);
        let d = run_push_fanout(&rig, 2);
        assert!(d > Duration::ZERO);
        for agent in &rig.agents {
            assert!(agent.stats().deltas_applied >= 2, "every agent saw the pushes");
        }
    }

    #[test]
    fn staleness_window_closes() {
        let rig = push_rig(3);
        let d = run_staleness_window(&rig);
        assert!(d > Duration::ZERO);
        for agent in &rig.agents {
            let ctx = VerifyCtx::at(fixed_clock()).with_revocation_source(Arc::clone(agent) as _);
            assert!(ctx.check_revocation(&rig.cert).is_err());
        }
    }

    #[test]
    fn refresh_pulls_every_round() {
        let rig = push_rig(2);
        let d = run_refresh(&rig, 3);
        assert!(d > Duration::ZERO);
    }
}
