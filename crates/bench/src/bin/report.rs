//! Prints every table and figure of the paper's §7 evaluation with live
//! measurements next to the paper's numbers.
//!
//! Usage: `cargo run --release -p snowflake-bench --bin report [section] [iters]`
//! where `section` ∈ {fig6, fig7, fig8, table1, setup, prover, all}.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let section = args.get(1).map(String::as_str).unwrap_or("all");
    let iters: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    println!("Snowflake end-to-end authorization — evaluation report");
    println!("(paper numbers: 270 MHz Sun Ultra 5, Java 1.2, 1024-bit RSA;");
    println!(" this build: in-process transports, 512-bit Schnorr test group)");

    match section {
        "fig6" => snowflake_bench::report::fig6(iters),
        "fig7" => snowflake_bench::report::fig7(iters),
        "fig8" => snowflake_bench::report::fig8(iters),
        "table1" => snowflake_bench::report::table1(iters),
        "setup" => snowflake_bench::report::setup(iters),
        "prover" => snowflake_bench::report::prover(iters),
        "all" => snowflake_bench::report::all(iters),
        other => {
            eprintln!("unknown section {other}; use fig6|fig7|fig8|table1|setup|prover|all");
            std::process::exit(2);
        }
    }
}
