//! A minimal fast-path HTTP server — the "optimized C implementation"
//! baseline of Figure 7.
//!
//! The paper compares a trivial C client against Apache (4.6 ms) with the
//! convenient-but-slow Java stack (25 ms).  The analogous comparison here is
//! this hand-rolled responder (no header model, no routing, preformatted
//! responses) against the `snowflake-http` framework server.

use std::collections::HashMap;
use std::io::{Read, Write};

/// Preformats a complete HTTP response for a body.
fn preformat(body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: application/octet-stream\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

const NOT_FOUND: &[u8] =
    b"HTTP/1.0 404 Not Found\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n";

/// The minimal server: path → preformatted response bytes.
pub struct MiniHttp {
    responses: HashMap<String, Vec<u8>>,
}

impl MiniHttp {
    /// Builds a server from `(path, body)` pairs.
    pub fn new(files: &[(&str, &[u8])]) -> MiniHttp {
        MiniHttp {
            responses: files
                .iter()
                .map(|(p, b)| ((*p).to_string(), preformat(b)))
                .collect(),
        }
    }

    /// Serves requests until EOF.  The parser does the minimum legal work:
    /// scan to the end of the header block, pull the path out of the first
    /// line, write preformatted bytes.
    pub fn serve_stream<S: Read + Write>(&self, stream: &mut S) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 1024];
        loop {
            // Read until we have a full header block.
            let header_end = loop {
                if let Some(pos) = find_double_crlf(&buf) {
                    break pos;
                }
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(()); // clean EOF
                }
                buf.extend_from_slice(&chunk[..n]);
            };

            // Path = second token of the request line.
            let line_end = buf.iter().position(|&b| b == b'\r').unwrap_or(header_end);
            let line = &buf[..line_end];
            let path = line
                .split(|&b| b == b' ')
                .nth(1)
                .map(|p| String::from_utf8_lossy(p).into_owned())
                .unwrap_or_default();

            match self.responses.get(&path) {
                Some(resp) => stream.write_all(resp)?,
                None => stream.write_all(NOT_FOUND)?,
            }
            stream.flush()?;
            buf.drain(..header_end + 4);
        }
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_http::{duplex, HttpClient, HttpRequest};

    #[test]
    fn serves_preformatted_files() {
        let mini = MiniHttp::new(&[("/doc", b"hello fast world")]);
        let (client_stream, mut server_stream) = duplex();
        let t = std::thread::spawn(move || {
            let _ = mini.serve_stream(&mut server_stream);
        });
        let mut client = HttpClient::new(Box::new(client_stream));
        let mut req = HttpRequest::get("/doc");
        req.set_header("Connection", "keep-alive");
        for _ in 0..3 {
            let resp = client.send(&req).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, b"hello fast world");
        }
        let missing = client.send(&HttpRequest::get("/none")).unwrap();
        assert_eq!(missing.status, 404);
        drop(client);
        t.join().unwrap();
    }
}
