//! The connection-scaling rig: many mostly-idle MAC keep-alive sessions
//! on a small worker pool.
//!
//! The paper's MAC protocol (§5.3.1) amortizes one expensive
//! establishment across many cheap per-request HMAC verifications — which
//! only pays off if a server can afford to *keep sessions open*.  With a
//! thread (or pooled worker) per connection, ten thousand idle sessions
//! cost ten thousand stacks; with the connection reactor they cost one
//! epoll registration and a few buffers each.  This rig measures exactly
//! that claim: park N authenticated keep-alive connections, drive
//! requests through the active 1%, and report tail latency plus resident
//! memory per parked connection.

use snowflake_core::{Delegation, HashAlg, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::DetRng;
use snowflake_http::auth::{self, authorize_mac};
use snowflake_http::mac::ClientMacSession;
use snowflake_http::{HttpRequest, HttpResponse, HttpServer, MacSessionStore};
use snowflake_runtime::{PoolConfig, ReactorConfig, ServerRuntime};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Env var that switches the bench executable into client-fleet mode
/// (see [`client_child_main`]).
pub const CHILD_ENV: &str = "SF_CONN_SCALING_CHILD";

/// Largest client fleet one child process holds (each connection is one
/// descriptor on the child side).
const CHILD_FLEET_CAP: usize = 4_000;

/// Sizes for one scaling run.
pub struct ScalingConfig {
    /// Keep-alive connections to park (each authenticates once).
    pub parked: usize,
    /// How many of the parked connections stay active.
    pub active: usize,
    /// Requests each active connection issues during measurement.
    pub requests_per_active: usize,
    /// Established MAC sessions shared round-robin by the connections
    /// (establishment is the expensive DH step the protocol amortizes;
    /// the per-request server cost is identical for 256 sessions or
    /// 10k).
    pub sessions: usize,
    /// Pool workers serving every ready frame.
    pub workers: usize,
}

/// What one run measured.
pub struct ScalingResult {
    /// Connections actually parked in the reactor at steady state.
    pub parked: usize,
    /// Latency samples taken on the active connections.
    pub samples: usize,
    /// Median active-request latency.
    pub p50: Duration,
    /// 99th-percentile active-request latency.
    pub p99: Duration,
    /// Resident-set growth per parked connection, in bytes, measured in
    /// the server's process.  On small runs the client ends share that
    /// process (so this bounds the server cost from above); on large runs
    /// they live in child processes and this is the server cost alone.
    pub rss_per_conn_bytes: u64,
}

fn vm_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Establishes `n` MAC sessions against `store` (the once-per-session DH
/// exchange) and returns ready-to-send header pairs `(Sf-Mac-Id, Sf-Mac)`
/// for the fixed benchmark request.
fn establish_sessions(
    store: &MacSessionStore,
    n: usize,
    request_hash: &snowflake_core::HashVal,
) -> Vec<(String, String)> {
    let mut srng = {
        let mut r = DetRng::new(b"conn-scaling-server");
        move |b: &mut [u8]| r.fill(b)
    };
    (0..n)
        .map(|i| {
            let mut crng = {
                let mut r = DetRng::new(format!("conn-scaling-client-{i}").as_bytes());
                move |b: &mut [u8]| r.fill(b)
            };
            let (body, dh) = ClientMacSession::request_body(&mut crng);
            let proven = Delegation {
                subject: Principal::message(b"establishment"),
                issuer: Principal::message(b"scaling issuer"),
                tag: Tag::Star,
                validity: Validity::until(Time(1_000_000)),
                delegable: false,
            };
            let proof = Proof::Assumption {
                stmt: proven.clone(),
                authority: "bench".into(),
            };
            let reply = store
                .establish(&body, proven, proof, Time(0), &mut srng)
                .expect("establishment");
            let session = ClientMacSession::from_grant(&reply, &dh, Validity::always())
                .expect("grant");
            (session.id_header(), session.authenticate(request_hash))
        })
        .collect()
}

/// The fixed request every connection sends (keep-alive, MAC'd).
fn base_request() -> HttpRequest {
    let mut req = HttpRequest::get("/doc");
    req.set_header("Connection", "keep-alive");
    req
}

/// One authenticated round trip on an already-open connection.
fn roundtrip(stream: &TcpStream, headers: &(String, String)) -> HttpResponse {
    let mut req = base_request();
    req.set_header(auth::MAC_ID_HEADER, &headers.0);
    req.set_header(auth::MAC_HEADER, &headers.1);
    req.write_to(&mut &*stream).expect("write request");
    HttpResponse::read_from(&mut BufReader::new(stream))
        .expect("read reply")
        .expect("server must reply on a kept-alive socket")
}

/// Entry point for a client-fleet child process (the bench executable
/// re-exec'd with [`CHILD_ENV`] set).  A single process cannot hold both
/// ends of 10k+ connections under a typical `RLIMIT_NOFILE` hard cap, so
/// the parked client ends live in children while the measured server (and
/// the active connections) stay in the parent.
///
/// Protocol on stdin: server address, connection count, session count,
/// then one `Sf-Mac-Id <TAB> Sf-Mac` line per session.  The child opens
/// every connection, authenticates one request on each, prints
/// `READY <count>` on stdout, and parks until the parent closes its
/// stdin.
pub fn client_child_main() -> ! {
    let stdin = std::io::stdin();
    let mut lock = stdin.lock();
    let mut line = String::new();
    let mut next_line = |lock: &mut std::io::StdinLock<'_>| {
        line.clear();
        lock.read_line(&mut line).expect("child stdin");
        line.trim_end_matches('\n').to_owned()
    };
    let addr = next_line(&mut lock);
    let count: usize = next_line(&mut lock).parse().expect("connection count");
    let nsessions: usize = next_line(&mut lock).parse().expect("session count");
    let sessions: Vec<(String, String)> = (0..nsessions)
        .map(|_| {
            let l = next_line(&mut lock);
            let (id, mac) = l.split_once('\t').expect("tab-separated session line");
            (id.to_owned(), mac.to_owned())
        })
        .collect();

    let conns: Vec<TcpStream> = (0..count)
        .map(|i| {
            let stream = TcpStream::connect(&addr).expect("child connect");
            let resp = roundtrip(&stream, &sessions[i % sessions.len()]);
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            stream
        })
        .collect();
    println!("READY {}", conns.len());
    std::io::stdout().flush().ok();

    // Park (holding every connection open) until the parent closes stdin.
    let mut buf = [0u8; 64];
    while matches!(lock.read(&mut buf), Ok(n) if n > 0) {}
    drop(conns);
    std::process::exit(0);
}

/// Spawns one child holding `count` parked connections.  The caller
/// reads the `READY` line, so several children open fleets concurrently.
fn spawn_client_fleet(
    addr: &std::net::SocketAddr,
    count: usize,
    sessions: &[(String, String)],
) -> Child {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .env(CHILD_ENV, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn client-fleet child");
    {
        let stdin = child.stdin.as_mut().expect("child stdin");
        let mut cfg = format!("{addr}\n{count}\n{}\n", sessions.len());
        for (id, mac) in sessions {
            cfg.push_str(id);
            cfg.push('\t');
            cfg.push_str(mac);
            cfg.push('\n');
        }
        stdin.write_all(cfg.as_bytes()).expect("write child config");
        stdin.flush().expect("flush child config");
    }
    child
}

/// Parks `cfg.parked` authenticated keep-alive sessions, then measures
/// request latency through the active subset.
pub fn run_connection_scaling(cfg: &ScalingConfig) -> ScalingResult {
    // Two fds per connection (client + server end, same process) plus
    // slack for the suite's own files.
    let _ = snowflake_runtime::raise_nofile_limit((cfg.parked as u64 + 1_024) * 2 + 1_024);

    let store = Arc::new(MacSessionStore::new());
    // All connections send the identical request, so the MAC covers one
    // request hash, computed the same way the server will.
    let request_hash = auth::request_hash(&base_request(), HashAlg::Sha256);
    let sessions = establish_sessions(&store, cfg.sessions, &request_hash);

    let server = HttpServer::new();
    let verify_store = Arc::clone(&store);
    server.route(
        "/doc",
        Arc::new(move |req: &HttpRequest| {
            match authorize_mac(&verify_store, req, &Tag::Star, HashAlg::Sha256, Time(500)) {
                Some(Ok(_)) => HttpResponse::ok("text/plain", b"authorized document".to_vec()),
                Some(Err(e)) => HttpResponse::forbidden(&e),
                None => HttpResponse::forbidden("MAC headers required"),
            }
        }),
    );

    let runtime = ServerRuntime::with_reactor_config(
        PoolConfig::new("conn-scaling", cfg.workers, 256),
        ReactorConfig {
            max_parked: cfg.parked + 1_024,
            // Idle reaping must not race the measurement.
            idle_timeout: Duration::from_secs(600),
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let _handle = server
        .attach_to_reactor(listener, &runtime)
        .expect("attach to reactor");

    // Open the fleet: each connection authenticates one request and then
    // sits parked in the reactor.  The active slice lives in this
    // process; when both ends of the whole fleet would blow through
    // `RLIMIT_NOFILE` (hard-capped in most containers), the parked
    // remainder's client ends go to child processes instead.
    let rss_before = vm_rss_bytes();
    let remainder = cfg.parked.saturating_sub(cfg.active);
    let limit = snowflake_runtime::nofile_limit().unwrap_or(1_024);
    let in_process = (cfg.parked as u64) * 2 + 2_048 <= limit;

    let mut local_parked: Vec<TcpStream> = Vec::new();
    let mut children: Vec<Child> = Vec::new();
    if in_process {
        for i in 0..remainder {
            let stream = TcpStream::connect(addr).expect("connect");
            let resp = roundtrip(&stream, &sessions[i % sessions.len()]);
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            local_parked.push(stream);
        }
    } else {
        let mut left = remainder;
        while left > 0 {
            let count = left.min(CHILD_FLEET_CAP);
            children.push(spawn_client_fleet(&addr, count, &sessions));
            left -= count;
        }
        for child in &mut children {
            let stdout = child.stdout.as_mut().expect("child stdout");
            let mut ready = String::new();
            BufReader::new(stdout)
                .read_line(&mut ready)
                .expect("read child READY");
            assert!(ready.starts_with("READY "), "child reported: {ready:?}");
        }
    }
    let active: Vec<TcpStream> = (0..cfg.active)
        .map(|a| {
            let stream = TcpStream::connect(addr).expect("connect active");
            let resp = roundtrip(&stream, &sessions[a % sessions.len()]);
            assert_eq!(resp.status, 200);
            stream
        })
        .collect();

    // Steady state: every connection parked, no worker held.
    let deadline = Instant::now() + Duration::from_secs(60);
    while runtime.reactor_stats().parked < cfg.parked as u64 {
        assert!(Instant::now() < deadline, "fleet never fully parked");
        std::thread::sleep(Duration::from_millis(10));
    }
    let rss_after = vm_rss_bytes();

    // Drive the active slice and sample per-request latency while the
    // other 99% stay parked.
    let mut samples: Vec<Duration> =
        Vec::with_capacity(cfg.active * cfg.requests_per_active);
    for (a, stream) in active.iter().enumerate() {
        let headers = &sessions[a % sessions.len()];
        for _ in 0..cfg.requests_per_active {
            let start = Instant::now();
            let resp = roundtrip(stream, headers);
            samples.push(start.elapsed());
            assert_eq!(resp.status, 200);
        }
    }
    samples.sort();

    let parked = runtime.reactor_stats().parked as usize;
    let result = ScalingResult {
        parked,
        samples: samples.len(),
        p50: samples[samples.len() / 2],
        p99: samples[(samples.len() * 99) / 100],
        rss_per_conn_bytes: rss_after.saturating_sub(rss_before) / cfg.parked.max(1) as u64,
    };
    drop(active);
    drop(local_parked);
    for mut child in children {
        drop(child.stdin.take());
        let _ = child.wait();
    }
    runtime.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_parks_and_answers() {
        let r = run_connection_scaling(&ScalingConfig {
            parked: 32,
            active: 4,
            requests_per_active: 3,
            sessions: 4,
            workers: 2,
        });
        assert_eq!(r.parked, 32);
        assert_eq!(r.samples, 12);
        assert!(r.p99 >= r.p50);
    }
}
