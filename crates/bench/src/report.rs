//! Paper-style report tables.
//!
//! Each function runs a figure's configurations and prints rows in the
//! paper's layout, next to the paper's 2000-era numbers (270 MHz Sun
//! Ultra 5, Java 1.2 with green threads).  Absolute values will differ by
//! orders of magnitude; what must reproduce is the *shape*: who wins, by
//! roughly what factor, and where the cheap/expensive crossovers fall.

use crate::rigs::{self, HttpKind, RmiKind, Tier};
use crate::{breakdown, ms, time_it, time_it_stable};
use snowflake_channel::SessionCache;
use std::time::Duration;

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!(
        "{:<44} {:>10} {:>12}",
        "configuration", "paper(ms)", "measured(ms)"
    );
    println!("{}", "-".repeat(68));
}

fn row(name: &str, paper: &str, measured: Duration) {
    println!("{name:<44} {paper:>10} {:>12}", ms(measured));
}

/// Figure 6: the cost of introducing Snowflake authorization to RMI.
pub fn fig6(iters: usize) {
    header("Figure 6: RMI call cost (warm)");
    let env = rigs::rmi_env();
    for (kind, label, paper) in [
        (RmiKind::Plain, "basic RMI", "4.8"),
        (RmiKind::Ssh, "RMI + ssh channel", "13"),
        (RmiKind::Snowflake, "RMI + ssh + Snowflake check_auth", "18"),
    ] {
        let mut rig = rigs::rmi_rig(&env, kind);
        let t = time_it_stable(iters / 10 + 1, iters, || {
            rig.call();
        });
        row(label, paper, t);
    }
}

/// §7.2: connection setup and server-side proof verification costs.
pub fn setup(iters: usize) {
    header("Section 7.2: Snowflake RMI setup costs");
    let env = rigs::rmi_env();
    let n = iters.clamp(1, 10);
    let mut total = Duration::ZERO;
    for _ in 0..n {
        total += rigs::rmi_connection_setup(&env);
    }
    row(
        "new authorized connection (public-key op)",
        "470",
        total / n as u32,
    );

    let mut rig = rigs::rmi_rig(&env, RmiKind::Snowflake);
    let mut total = Duration::ZERO;
    for _ in 0..n {
        total += rigs::rmi_proof_verify(&env, &mut rig);
    }
    row(
        "server parses + verifies client proof",
        "190",
        total / n as u32,
    );
}

/// Figure 7: the cost of introducing Snowflake authorization to HTTP.
pub fn fig7(iters: usize) {
    header("Figure 7: HTTP GET cost");
    for (kind, label, paper) in [
        (HttpKind::Mini, "minimal server (paper: C/Apache)", "4.6"),
        (
            HttpKind::Framework,
            "framework server (paper: Java/Jetty)",
            "25",
        ),
        (HttpKind::SnowflakeSign, "Snowflake signed request", "81"),
    ] {
        let mut rig = rigs::http_rig(kind);
        let t = time_it_stable(iters / 10 + 1, iters, || {
            rig.get();
        });
        row(label, paper, t);
    }
}

/// Figure 8: SSL-like channel vs Snowflake client/server authorization.
pub fn fig8(iters: usize) {
    header("Figure 8: SSL vs Snowflake authorization");
    let warm = iters / 10 + 1;

    // --- SSL-like baselines (black bars). -----------------------------
    for (tier, label, paper) in [
        (Tier::Mini, "SSL ignore, minimal server, warm conn", "14"),
        (
            Tier::Framework,
            "SSL ignore, framework server, warm conn",
            "47",
        ),
    ] {
        let mut rig = rigs::ssl_rig(tier, false);
        let t = time_it_stable(warm, iters, || {
            rig.get();
        });
        row(label, paper, t);
    }
    for (tier, label, paper) in [
        (Tier::Mini, "SSL verify, cached session / request", "140"),
        (
            Tier::Framework,
            "SSL verify, cached session (framework)",
            "290",
        ),
    ] {
        let client_cache = SessionCache::new();
        let server_cache = SessionCache::new();
        // Seed a resumable session with one full handshake.
        rigs::ssl_resumed_session(tier, &client_cache, &server_cache);
        let t = time_it(1, iters.min(50), || {
            rigs::ssl_resumed_session(tier, &client_cache, &server_cache);
        });
        row(label, paper, t);
    }
    for (tier, label, paper) in [
        (Tier::Mini, "SSL verify, new session", "250"),
        (
            Tier::Framework,
            "SSL verify, new session (framework)",
            "420",
        ),
    ] {
        let t = time_it(1, iters.min(20), || {
            rigs::ssl_new_session(tier, true);
        });
        row(label, paper, t);
    }

    // --- Snowflake client authorization (gray bars). -------------------
    for (kind, label, paper) in [
        (
            HttpKind::SnowflakeIdent,
            "Sf client auth: identical request",
            "81",
        ),
        (
            HttpKind::SnowflakeMac,
            "Sf client auth: MAC-amortized",
            "110",
        ),
        (
            HttpKind::SnowflakeSign,
            "Sf client auth: signature/request",
            "380",
        ),
    ] {
        let mut rig = rigs::http_rig(kind);
        let t = time_it_stable(warm, iters, || {
            rig.get();
        });
        row(label, paper, t);
    }

    // --- Snowflake server (document) authentication (white bars). ------
    for (cached, new_session, label, paper) in [
        (true, false, "Sf doc auth: cached proof, cached conn", "99"),
        (false, false, "Sf doc auth: fresh sign, cached conn", "430"),
        (true, true, "Sf doc auth: cached proof, new conn", "160"),
        (false, true, "Sf doc auth: fresh sign, new conn", "490"),
    ] {
        let mut rig = rigs::doc_auth_rig(cached);
        rig.get(new_session); // warm
        let t = time_it(1, iters.min(50), || {
            rig.get(new_session);
        });
        row(label, paper, t);
    }
}

/// Table 1: breakdown of time spent in the MAC authorization protocol.
pub fn table1(iters: usize) {
    println!();
    println!("=== Table 1: MAC authorization protocol breakdown ===");
    println!(
        "{:<34} {:>10} {:>10} {:>12} {:>12}",
        "phase", "paper-SSL", "paper-Sf", "meas-SSL", "meas-Sf"
    );
    println!("{}", "-".repeat(82));
    let paper = [
        ("Minimum cost of HTTP GET", "5", "5"),
        ("Framework overhead for HTTP", "20", "20"),
        ("SSL (secure channel) overhead", "22", "-"),
        ("S-expression parsing", "-", "~20"),
        ("SPKI object unmarshalling", "-", "~20"),
        ("Other Snowflake overhead", "-", "17"),
        ("MAC costs", "-", "28"),
    ];
    let rows = breakdown::measure(iters);
    for (row, (name, p_ssl, p_sf)) in rows.iter().zip(paper) {
        assert_eq!(row.phase, name, "row order must match the paper");
        let fmt = |d: Option<Duration>| d.map(ms).unwrap_or_else(|| "-".repeat(1));
        println!(
            "{:<34} {:>10} {:>10} {:>12} {:>12}",
            row.phase,
            p_ssl,
            p_sf,
            fmt(row.ssl),
            fmt(row.snowflake)
        );
    }
    let (ssl, sf) = breakdown::totals(&rows);
    println!(
        "{:<34} {:>10} {:>10} {:>12} {:>12}",
        "Total",
        "47",
        "110",
        ms(ssl),
        ms(sf)
    );
}

/// §7.4.1: prover graph traversal cost vs chain depth, with and without the
/// shortcut cache.
pub fn prover(iters: usize) {
    println!();
    println!("=== Section 7.4.1: prover search cost vs chain depth ===");
    println!("{:<12} {:>14} {:>14}", "depth", "cold(ms)", "warm(ms)");
    println!("{}", "-".repeat(42));
    for depth in [1usize, 2, 4, 8, 16] {
        let rig = rigs::prover_rig(depth);
        let cold = time_it(2, iters, || {
            rig.search_cold();
        });
        rig.search_warm(); // populate the shortcut
        let warm = time_it(2, iters, || {
            rig.search_warm();
        });
        println!("{depth:<12} {:>14} {:>14}", ms(cold), ms(warm));
    }
    println!("(shortcut cache turns deep traversals into constant-depth lookups)");
}

/// Runs every report section.
pub fn all(iters: usize) {
    fig6(iters);
    setup(iters);
    fig7(iters);
    fig8(iters);
    table1(iters);
    prover(iters);
}
