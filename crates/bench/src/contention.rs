//! Contention rigs: multi-threaded throughput of the two hottest
//! server-side read paths — prover search and MAC verification.
//!
//! Both paths used to funnel through one global lock (a write-locked BFS
//! in the Prover, a single-`Mutex` `MacSessionStore`), so adding threads
//! added nothing.  The rigs here run a fixed amount of total work split
//! across T threads; with the read-mostly prover graph and the sharded
//! session store, wall time should *drop* as T grows toward the core
//! count instead of staying flat.

use snowflake_core::{
    Certificate, Delegation, HashVal, Principal, Proof, Tag, Time, Validity,
};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::mac::ClientMacSession;
use snowflake_http::MacSessionStore;
use snowflake_prover::Prover;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn det(seed: &str) -> impl FnMut(&mut [u8]) {
    let mut r = DetRng::new(seed.as_bytes());
    move |b: &mut [u8]| r.fill(b)
}

fn kp(seed: &str) -> KeyPair {
    let mut r = det(seed);
    KeyPair::generate(Group::test512(), &mut r)
}

fn web_tag() -> Tag {
    Tag::named("web", vec![])
}

// ======================================================================
// Prover search under contention
// ======================================================================

/// A prover whose graph holds one shared deep chain plus one direct
/// delegation per tenant, and the query mix threads run against it.
pub struct ProverContentionRig {
    /// The shared prover.
    pub prover: Arc<Prover>,
    /// Deep-chain endpoints (subject, issuer).
    pub chain: (Principal, Principal),
    /// Per-tenant subjects, all delegated directly from the chain issuer.
    pub tenants: Vec<Principal>,
}

/// Builds the shared graph: a `depth`-edge chain to exercise BFS and
/// `tenants` single-hop edges to exercise the subject-indexed fast path.
pub fn prover_contention_rig(depth: usize, tenants: usize) -> ProverContentionRig {
    let prover = Arc::new(Prover::with_rng(Box::new(det("contention-prover"))));
    let keys: Vec<KeyPair> = (0..=depth).map(|i| kp(&format!("cont-{i}"))).collect();
    let mut rng = det("contention-issue");
    for i in 0..depth {
        let d = Delegation {
            subject: Principal::key(&keys[i + 1].public),
            issuer: Principal::key(&keys[i].public),
            tag: web_tag(),
            validity: Validity::always(),
            delegable: true,
        };
        prover.add_proof(Proof::signed_cert(Certificate::issue(&keys[i], d, &mut rng)));
    }
    let issuer = Principal::key(&keys[0].public);
    let tenants: Vec<Principal> = (0..tenants)
        .map(|t| {
            let subject = Principal::message(format!("tenant-{t}").as_bytes());
            let d = Delegation {
                subject: subject.clone(),
                issuer: issuer.clone(),
                tag: web_tag(),
                validity: Validity::always(),
                delegable: false,
            };
            prover.add_proof(Proof::signed_cert(Certificate::issue(&keys[0], d, &mut rng)));
            subject
        })
        .collect();
    ProverContentionRig {
        prover,
        chain: (Principal::key(&keys[depth].public), issuer),
        tenants,
    }
}

/// Runs `total_queries` warm `find_proof` calls split over `threads`
/// threads (each thread alternates its own tenant lookups with the shared
/// deep-chain query) and returns the wall time for the whole batch.
pub fn run_prover_contention(
    rig: &ProverContentionRig,
    threads: usize,
    total_queries: usize,
) -> Duration {
    let per_thread = total_queries / threads.max(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let prover = Arc::clone(&rig.prover);
            let tenant = rig.tenants[t % rig.tenants.len()].clone();
            let (chain_subject, issuer) = (rig.chain.0.clone(), rig.chain.1.clone());
            s.spawn(move || {
                for q in 0..per_thread {
                    let subject = if q % 2 == 0 { &tenant } else { &chain_subject };
                    assert!(
                        prover
                            .find_proof(subject, &issuer, &web_tag(), Time(0))
                            .is_some(),
                        "contention lost an answer"
                    );
                }
            });
        }
    });
    start.elapsed()
}

// ======================================================================
// MAC verification under contention
// ======================================================================

/// A sharded session store with pre-established sessions and, per session,
/// one pre-authenticated request (id, MAC bytes, request hash).
pub struct MacContentionRig {
    /// The shared store.
    pub store: Arc<MacSessionStore>,
    /// `(mac_id, mac_bytes, request_hash)` per established session.
    pub requests: Vec<(HashVal, Vec<u8>, HashVal)>,
}

/// Establishes `sessions` MAC sessions and precomputes one valid request
/// MAC for each, so the measured loop is pure server-side `verify`.
pub fn mac_contention_rig(sessions: usize) -> MacContentionRig {
    let store = Arc::new(MacSessionStore::new());
    let mut srng = det("mac-cont-server");
    let requests = (0..sessions)
        .map(|i| {
            let mut crng = det(&format!("mac-cont-client-{i}"));
            let (body, dh) = ClientMacSession::request_body(&mut crng);
            let proven = Delegation {
                subject: Principal::message(b"establishment"),
                issuer: Principal::message(b"bench issuer"),
                tag: Tag::Star,
                validity: Validity::until(Time(1_000_000)),
                delegable: false,
            };
            let proof = Proof::Assumption {
                stmt: proven.clone(),
                authority: "bench".into(),
            };
            let reply = store
                .establish(&body, proven, proof, Time(0), &mut srng)
                .expect("establishment");
            let session = ClientMacSession::from_grant(&reply, &dh, Validity::always())
                .expect("grant");
            let hash = HashVal::of(format!("request-{i}").as_bytes());
            let mac = snowflake_sexpr::b64_decode(session.authenticate(&hash).as_bytes())
                .expect("mac header");
            (session.mac_id.clone(), mac, hash)
        })
        .collect();
    MacContentionRig { store, requests }
}

/// Runs `total_verifies` MAC verifications split over `threads` threads,
/// each thread working a disjoint slice of sessions, and returns the wall
/// time for the whole batch.
pub fn run_mac_contention(
    rig: &MacContentionRig,
    threads: usize,
    total_verifies: usize,
) -> Duration {
    let per_thread = total_verifies / threads.max(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = Arc::clone(&rig.store);
            // Disjoint slice: thread t owns every threads-th session.
            let mine: Vec<(HashVal, Vec<u8>, HashVal)> = rig
                .requests
                .iter()
                .skip(t)
                .step_by(threads.max(1))
                .cloned()
                .collect();
            s.spawn(move || {
                if mine.is_empty() {
                    return;
                }
                for q in 0..per_thread {
                    let (id, mac, hash) = &mine[q % mine.len()];
                    store
                        .verify(id, mac, hash, &Tag::Star, Time(500))
                        .expect("verify under contention");
                }
            });
        }
    });
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prover_rig_answers_under_threads() {
        let rig = prover_contention_rig(4, 8);
        let d = run_prover_contention(&rig, 4, 64);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn mac_rig_verifies_under_threads() {
        let rig = mac_contention_rig(8);
        let d = run_mac_contention(&rig, 4, 64);
        assert!(d > Duration::ZERO);
    }
}
