//! The runtime-saturation rig: one bounded worker pool driven at a
//! chosen oversubscription factor, measuring end-to-end throughput and
//! the shed rate — the production-shaped curve the per-connection-thread
//! servers could never show.
//!
//! Offered load is `workers × oversubscription` submissions of a fixed
//! CPU-bound job.  At 1× the pool keeps up and sheds nothing; as the
//! factor grows, the queue saturates and the admission path starts
//! refusing work (each refusal counted), which is exactly the bounded
//! behavior the servers inherit from `snowflake_runtime`.

use snowflake_crypto::sha256;
use snowflake_runtime::{PoolConfig, SubmitError, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workers in the measured pool (matched to small-host deployments; the
/// point of the curve is the ratio, not the absolute count).
pub const SATURATION_WORKERS: usize = 4;

/// Queue capacity of the measured pool.
pub const SATURATION_QUEUE: usize = 8;

/// Hash blocks per job: enough work that a job is not pure queue noise,
/// little enough that smoke mode stays instant.
const JOB_BLOCKS: usize = 8;

/// One measured run of the saturation rig.
#[derive(Debug, Clone, Copy)]
pub struct SaturationResult {
    /// Jobs offered (`workers × oversubscription`).
    pub offered: u64,
    /// Jobs the pool accepted and completed.
    pub completed: u64,
    /// Submissions refused at admission (the drop counter's delta).
    pub shed: u64,
    /// Wall time from first submission to drain.
    pub elapsed: Duration,
}

impl SaturationResult {
    /// Completed jobs per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of offered jobs shed.
    pub fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.offered as f64
    }
}

/// The fixed CPU-bound job: a short SHA-256 chain.
fn job_work(seed: u64, sink: &AtomicU64) {
    let mut block = seed.to_be_bytes().to_vec();
    for _ in 0..JOB_BLOCKS {
        block = sha256(&block).to_vec();
    }
    sink.fetch_add(u64::from(block[0]), Ordering::Relaxed);
}

/// Offers `SATURATION_WORKERS × oversubscription` jobs to a fresh bounded
/// pool as fast as admission allows, then drains and reports.
pub fn run_saturation(oversubscription: usize) -> SaturationResult {
    let pool = WorkerPool::new(PoolConfig::new(
        "saturation",
        SATURATION_WORKERS,
        SATURATION_QUEUE,
    ));
    let offered = (SATURATION_WORKERS * oversubscription) as u64;
    let sink = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut shed = 0u64;
    for i in 0..offered {
        let sink = Arc::clone(&sink);
        match pool.submit(move || job_work(i, &sink)) {
            Ok(()) => {}
            Err(SubmitError::Busy) => shed += 1,
            Err(SubmitError::ShuttingDown) => unreachable!("rig never shuts down mid-offer"),
        }
    }
    pool.shutdown();
    let elapsed = start.elapsed();
    let stats = pool.stats();
    SaturationResult {
        offered,
        completed: stats.completed,
        shed,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_balances() {
        let r = run_saturation(4);
        assert_eq!(r.offered, (SATURATION_WORKERS * 4) as u64);
        assert_eq!(
            r.completed + r.shed,
            r.offered,
            "every offered job is either completed or counted as shed"
        );
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn oversubscription_can_only_grow_shed() {
        // Not a timing assertion (single-CPU CI): just that heavier
        // offered load never *reduces* absolute sheds on this rig shape.
        let light = run_saturation(1);
        assert_eq!(light.shed_rate(), 0.0, "1× load fits the queue by construction");
        let heavy = run_saturation(64);
        assert!(heavy.completed >= light.completed);
    }
}
