//! Benchmark harness regenerating every table and figure of paper §7.
//!
//! The Criterion benches under `benches/` measure each configuration; the
//! `report` binary (`cargo run -p snowflake-bench --release --bin report`)
//! runs the same workloads with a lightweight timer and prints rows shaped
//! like the paper's figures, side by side with the paper's 2000-era
//! numbers.
//!
//! This library crate holds the shared *rigs*: pre-wired client/server
//! pairs for each measured configuration, so benches and the report binary
//! measure identical code paths.
//!
//! | Experiment | Paper | Rig |
//! |---|---|---|
//! | Figure 6 | basic RMI / RMI+ssh / RMI+Snowflake warm call | [`rigs::rmi_rig`] |
//! | §7.2 | connection setup; server proof verify | [`rigs::rmi_connection_setup`], [`rigs::rmi_proof_verify`] |
//! | Figure 7 | C HTTP / Java HTTP / Snowflake HTTP GET | [`rigs::http_rig`], [`minihttp::MiniHttp`] |
//! | Figure 8 | SSL vs Snowflake client auth vs document auth | [`rigs::ssl_rig`], [`rigs::http_rig`], [`rigs::doc_auth_rig`] |
//! | Table 1 | MAC protocol cost breakdown | [`breakdown`] |
//! | §7.4.1 | prover graph traversal costs | [`rigs::prover_rig`] |
//! | (post-paper) | prover search / MAC verify under thread contention | [`contention`] |
//! | (post-paper) | revocation push fan-out / staleness window / CRL refresh | [`revocation`] |
//! | (post-paper) | bounded-runtime throughput and shed rate under oversubscription | [`saturation`] |

pub mod breakdown;
pub mod contention;
pub mod minihttp;
pub mod report;
pub mod revocation;
pub mod rigs;
pub mod saturation;
pub mod scaling;

pub use minihttp::MiniHttp;

use std::time::{Duration, Instant};

/// Appends one benchmark's numbers to the JSON-lines report named by the
/// `SF_BENCH_JSON` env var (the `BENCH_<date>.json` file at the repo
/// root).  One line per bench, keyed by name: re-running a bench replaces
/// its own line and leaves the rest, so the file accumulates the whole
/// suite across separate `cargo bench` invocations.  Field values are
/// written verbatim — callers pass already-JSON-encoded numbers or
/// quoted strings.  No-op when the variable is unset.
pub fn report_json(bench: &str, fields: &[(&str, String)]) {
    let Some(path) = std::env::var_os("SF_BENCH_JSON") else {
        return;
    };
    let marker = format!("\"bench\": \"{bench}\"");
    let mut out = String::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            if !line.contains(&marker) && !line.trim().is_empty() {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out.push('{');
    out.push_str(&marker);
    for (k, v) in fields {
        out.push_str(&format!(", \"{k}\": {v}"));
    }
    out.push_str("}\n");
    std::fs::write(&path, out).expect("write SF_BENCH_JSON report");
    println!(
        "{bench}: updated {}",
        std::path::PathBuf::from(path).display()
    );
}

/// Times `iters` runs of `f` after `warmup` runs, returning the mean.
pub fn time_it(warmup: usize, iters: usize, mut f: impl FnMut()) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters.max(1) as u32
}

/// Like [`time_it`] but runs several batches and returns the *minimum*
/// batch mean — the standard cure for scheduler noise when measuring cheap
/// cross-thread operations.
pub fn time_it_stable(warmup: usize, iters: usize, mut f: impl FnMut()) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let batches = 5usize;
    let per_batch = (iters / batches).max(1);
    let mut best = Duration::MAX;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..per_batch {
            f();
        }
        best = best.min(start.elapsed() / per_batch as u32);
    }
    best
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:9.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_mean() {
        let d = time_it(1, 4, || std::thread::yield_now());
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn ms_formats() {
        assert!(ms(Duration::from_millis(5)).contains("5.000"));
    }
}
