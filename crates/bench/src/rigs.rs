//! Pre-wired client/server pairs for every measured configuration.
//!
//! Each rig runs the server on a background thread over in-memory
//! transports, so benchmarks measure protocol and computation cost (the
//! paper's single-machine experiments, "where computation time, the
//! dominant source of overhead, cannot hide under network latency").

use snowflake_apps::{ProtectedWebService, Vfs};
use snowflake_channel::{PipeTransport, PlainChannel, SecureChannel, SessionCache};
use snowflake_core::{Certificate, Delegation, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::server::DocumentAuthenticator;
use snowflake_http::{
    duplex, ChannelStream, HttpClient, HttpRequest, HttpServer, ProtectedServlet, SnowflakeProxy,
};
use snowflake_prover::Prover;
use snowflake_rmi::{FileObject, RmiClient, RmiServer};
use snowflake_sexpr::Sexp;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn fixed_clock() -> Time {
    Time(1_000_000)
}

fn det(seed: &str) -> impl FnMut(&mut [u8]) {
    let mut r = DetRng::new(seed.as_bytes());
    move |b: &mut [u8]| r.fill(b)
}

fn kp(seed: &str) -> KeyPair {
    let mut r = det(seed);
    KeyPair::generate(Group::test512(), &mut r)
}

/// The 1 KB document every HTTP/RMI rig serves (the paper's file-read
/// operation).
pub fn test_document() -> Vec<u8> {
    (0..1024u32).map(|i| (i % 251) as u8).collect()
}

// ======================================================================
// Figure 6: RMI rigs
// ======================================================================

/// Which RMI configuration a rig measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmiKind {
    /// Bare transport, no channel security, no authorization ("basic RMI").
    Plain,
    /// Secure (ssh-like) channel, no authorization ("RMI + ssh").
    Ssh,
    /// Secure channel plus Snowflake `check_auth` ("RMI + Sf").
    Snowflake,
}

/// A connected RMI client/server pair.
pub struct RmiRig {
    /// The connected client.
    pub client: RmiClient,
    /// The server (for cache statistics / forced forgetting).
    pub server: Arc<RmiServer>,
    _thread: JoinHandle<()>,
}

/// Shared fixtures: server key, client identity, and the owner's grant.
pub struct RmiEnv {
    server_key: KeyPair,
    identity: KeyPair,
    grant: Proof,
}

/// Builds the shared RMI fixtures.
pub fn rmi_env() -> RmiEnv {
    let server_key = kp("bench-rmi-server");
    let identity = kp("bench-rmi-identity");
    let mut rng = det("bench-rmi-grant");
    let grant = Proof::signed_cert(Certificate::issue(
        &server_key,
        Delegation {
            subject: Principal::key(&identity.public),
            issuer: Principal::key(&server_key.public),
            tag: Tag::named("rmi", vec![]),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rng,
    ));
    RmiEnv {
        server_key,
        identity,
        grant,
    }
}

fn rmi_server(env: &RmiEnv, protected: bool) -> Arc<RmiServer> {
    let server = RmiServer::with_clock(fixed_clock);
    let mut files = HashMap::new();
    files.insert("X".to_string(), test_document());
    let object = Arc::new(FileObject::new(
        Principal::key(&env.server_key.public),
        files,
    ));
    if protected {
        server.register("files", object);
    } else {
        server.register_open("files", object);
    }
    server
}

fn client_prover(env: &RmiEnv, seed: &str) -> Arc<Prover> {
    let mut rng = DetRng::new(seed.as_bytes());
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| rng.fill(b))));
    prover.add_proof(env.grant.clone());
    prover.add_key(env.identity.clone());
    prover
}

/// Builds a connected rig of the given kind; Snowflake rigs arrive *warm*
/// (the first authorized call has already happened).
pub fn rmi_rig(env: &RmiEnv, kind: RmiKind) -> RmiRig {
    let server = rmi_server(env, kind == RmiKind::Snowflake);
    let session_key = kp("bench-session");
    let prover = client_prover(env, "bench-prover");

    let (client, thread) = match kind {
        RmiKind::Plain => {
            let (ct, st) = PipeTransport::pair();
            let server2 = Arc::clone(&server);
            let thread = std::thread::spawn(move || {
                let mut ch = PlainChannel::new(st, "bench-server-end");
                let _ = server2.serve_connection(&mut ch);
            });
            let ch = PlainChannel::new(ct, "bench-client-end");
            (
                RmiClient::with_clock(Box::new(ch), session_key, prover, fixed_clock),
                thread,
            )
        }
        RmiKind::Ssh | RmiKind::Snowflake => {
            let (ct, st) = PipeTransport::pair();
            let server2 = Arc::clone(&server);
            let skey = env.server_key.clone();
            let thread = std::thread::spawn(move || {
                let mut rng = det("bench-srv-chan");
                let mut ch = SecureChannel::server(Box::new(st), &skey, None, &mut rng).unwrap();
                let _ = server2.serve_connection(&mut ch);
            });
            let mut rng = det("bench-cli-chan");
            let ch =
                SecureChannel::client(Box::new(ct), Some(&session_key), None, &mut rng).unwrap();
            (
                RmiClient::with_clock(Box::new(ch), session_key, prover, fixed_clock),
                thread,
            )
        }
    };

    let mut rig = RmiRig {
        client,
        server,
        _thread: thread,
    };
    // Warm the proof cache so steady-state calls measure the check_auth
    // fast path, as in Figure 6.
    rig.call();
    rig
}

impl RmiRig {
    /// One remote file-read call (the Figure 6 operation).
    pub fn call(&mut self) -> usize {
        self.client
            .invoke("files", "read", vec![Sexp::from("X")])
            .expect("bench call")
            .as_atom()
            .expect("file bytes")
            .len()
    }
}

/// §7.2 setup cost: a complete fresh connection — channel handshake,
/// `NeedAuthorization` fault, client-side delegation (public-key
/// signature), proof submission/verification, and the retried call.
pub fn rmi_connection_setup(env: &RmiEnv) -> Duration {
    let start = Instant::now();
    let rig = rmi_rig(env, RmiKind::Snowflake); // includes the warm call
    let elapsed = start.elapsed();
    drop(rig);
    elapsed
}

/// §7.2 server cost: parsing and verifying the client's proof when the
/// server has forgotten its copy (the client's delegation is cached).
pub fn rmi_proof_verify(_env: &RmiEnv, rig: &mut RmiRig) -> Duration {
    rig.server.forget_proofs();
    let start = Instant::now();
    rig.call(); // fault → cached proof resubmitted → verify → retry
    start.elapsed()
}

// ======================================================================
// Figure 7 / Figure 8: HTTP rigs
// ======================================================================

/// Which HTTP configuration a rig measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpKind {
    /// The minimal fast-path server ("trivial C client / Apache" tier).
    Mini,
    /// The full framework server ("convenient Java packages" tier).
    Framework,
    /// Snowflake signed requests, fresh signature per request ("sign").
    SnowflakeSign,
    /// Snowflake identical-request fast path ("ident").
    SnowflakeIdent,
    /// Snowflake MAC-amortized protocol ("MAC").
    SnowflakeMac,
}

/// A connected HTTP rig.
pub struct HttpRig {
    client: HttpClient,
    kind: HttpKind,
    proxy: Option<SnowflakeProxy>,
    issuer: Principal,
    min_tag: Tag,
    prepared: Option<HttpRequest>,
    counter: u64,
    _thread: JoinHandle<()>,
}

/// Builds a connected HTTP rig of the given kind.
pub fn http_rig(kind: HttpKind) -> HttpRig {
    let doc = test_document();
    let owner = kp("bench-web-owner");
    let identity = kp("bench-web-identity");
    let issuer = Principal::key(&owner.public);

    let (client_stream, mut server_stream) = duplex();
    let thread: JoinHandle<()>;

    match kind {
        HttpKind::Mini => {
            let mini = MiniOwned { doc };
            thread = std::thread::spawn(move || {
                let m = crate::MiniHttp::new(&[("/doc", &mini.doc)]);
                let _ = m.serve_stream(&mut server_stream);
            });
        }
        HttpKind::Framework => {
            let server = HttpServer::new();
            let body = doc.clone();
            server.route(
                "/",
                Arc::new(move |_req: &HttpRequest| {
                    snowflake_http::HttpResponse::ok("application/octet-stream", body.clone())
                }),
            );
            thread = std::thread::spawn(move || {
                let _ = server.serve_stream(&mut server_stream);
            });
        }
        HttpKind::SnowflakeSign | HttpKind::SnowflakeIdent | HttpKind::SnowflakeMac => {
            let vfs = Arc::new(Vfs::new());
            vfs.write("/doc", doc.clone());
            // Pre-populate distinct paths for per-request-unique workloads.
            for i in 0..100_000u64 {
                if i < 4096 {
                    vfs.write(&format!("/d/{i}"), doc.clone());
                }
            }
            let service = ProtectedWebService::new(issuer.clone(), "bench", vfs);
            let servlet =
                ProtectedServlet::with_clock(service, fixed_clock, Box::new(det("bench-servlet")));
            let server = HttpServer::new();
            server.route("/", servlet);
            thread = std::thread::spawn(move || {
                let _ = server.serve_stream(&mut server_stream);
            });
        }
    }

    // Grant + prover + proxy for the Snowflake kinds.  The grant covers the
    // whole web service (all methods) so MAC establishment (a POST) and the
    // GET workloads both chain from it.
    let mut grng = det("bench-web-grant");
    let web_all = Tag::named("web", vec![]);
    let grant = Proof::signed_cert(Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&identity.public),
            issuer: issuer.clone(),
            tag: web_all.clone(),
            validity: Validity::always(),
            delegable: true,
        },
        &mut grng,
    ));
    let mut prng = DetRng::new(b"bench-web-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_proof(grant);
    prover.add_key(identity);
    let proxy = SnowflakeProxy::with_clock(prover, fixed_clock, Box::new(det("bench-web-proxy")));

    let mut rig = HttpRig {
        client: HttpClient::new(Box::new(client_stream)),
        kind,
        proxy: Some(proxy),
        issuer,
        min_tag: web_all,
        prepared: None,
        counter: 0,
        _thread: thread,
    };

    match kind {
        HttpKind::SnowflakeIdent => {
            // Prepare one signed request and reuse it; warm the server's
            // identical-request cache.
            let mut req = HttpRequest::get("/doc");
            req.set_header("Connection", "keep-alive");
            let tag = snowflake_http::auth::web_tag("GET", "bench", "/doc");
            let signed = rig
                .proxy
                .as_ref()
                .expect("proxy")
                .sign_request(req, &rig.issuer.clone(), &tag)
                .expect("sign");
            rig.prepared = Some(signed);
            rig.get();
        }
        HttpKind::SnowflakeMac => {
            let issuer = rig.issuer.clone();
            let tag = rig.min_tag.clone();
            let proxy = rig.proxy.as_ref().expect("proxy");
            proxy
                .establish_mac_session(&mut rig.client, &issuer, &tag)
                .expect("mac establishment");
        }
        _ => {}
    }
    rig
}

struct MiniOwned {
    doc: Vec<u8>,
}

impl HttpRig {
    /// One GET of the 1 KB document under the rig's protocol.
    pub fn get(&mut self) -> usize {
        match self.kind {
            HttpKind::Mini | HttpKind::Framework => {
                let mut req = HttpRequest::get("/doc");
                req.set_header("Connection", "keep-alive");
                let resp = self.client.send(&req).expect("get");
                resp.body.len()
            }
            HttpKind::SnowflakeIdent => {
                let req = self.prepared.clone().expect("prepared request");
                let resp = self.client.send(&req).expect("get");
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                resp.body.len()
            }
            HttpKind::SnowflakeSign => {
                // A fresh path each call forces a fresh signature and a full
                // verification at the server.
                self.counter = (self.counter + 1) % 4096;
                let path = format!("/d/{}", self.counter);
                let mut req = HttpRequest::get(&path);
                req.set_header("Connection", "keep-alive");
                let tag = snowflake_http::auth::web_tag("GET", "bench", &path);
                let signed = self
                    .proxy
                    .as_ref()
                    .expect("proxy")
                    .sign_request(req, &self.issuer, &tag)
                    .expect("sign");
                let resp = self.client.send(&signed).expect("get");
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                resp.body.len()
            }
            HttpKind::SnowflakeMac => {
                self.counter = (self.counter + 1) % 4096;
                let path = format!("/d/{}", self.counter);
                let mut req = HttpRequest::get(&path);
                req.set_header("Connection", "keep-alive");
                let signed = self
                    .proxy
                    .as_ref()
                    .expect("proxy")
                    .mac_sign(req, &self.issuer)
                    .expect("mac session");
                let resp = self.client.send(&signed).expect("get");
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                resp.body.len()
            }
        }
    }
}

// ======================================================================
// Figure 8: SSL-like rigs and document authentication
// ======================================================================

/// Server tier for SSL rigs (the paper's Apache vs Jetty distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Minimal fast-path server.
    Mini,
    /// Framework server.
    Framework,
}

/// A warm HTTP-over-secure-channel connection.
pub struct SslRig {
    client: HttpClient,
    _thread: JoinHandle<()>,
}

fn spawn_ssl_server(tier: Tier, server_key: KeyPair, cache: Option<SessionCache>) -> PipeTransport {
    let (ct, st) = PipeTransport::pair();
    std::thread::spawn(move || {
        let mut rng = det("ssl-server");
        let Ok(ch) = SecureChannel::server(Box::new(st), &server_key, cache.as_ref(), &mut rng)
        else {
            return;
        };
        let mut stream = ChannelStream::new(Box::new(ch));
        match tier {
            Tier::Mini => {
                let doc = test_document();
                let m = crate::MiniHttp::new(&[("/doc", &doc)]);
                let _ = m.serve_stream(&mut stream);
            }
            Tier::Framework => {
                let server = HttpServer::new();
                let body = test_document();
                server.route(
                    "/",
                    Arc::new(move |_req: &HttpRequest| {
                        snowflake_http::HttpResponse::ok("application/octet-stream", body.clone())
                    }),
                );
                let _ = server.serve_stream(&mut stream);
            }
        }
    });
    ct
}

/// Builds a warm SSL-like connection (`client_auth` selects whether the
/// client presents a key — the paper's ignore/verify distinction).
pub fn ssl_rig(tier: Tier, client_auth: bool) -> SslRig {
    let server_key = kp("ssl-server-key");
    let client_key = kp("ssl-client-key");
    let ct = spawn_ssl_server(tier, server_key, None);
    let mut rng = det("ssl-client");
    let ch = SecureChannel::client(
        Box::new(ct),
        if client_auth { Some(&client_key) } else { None },
        None,
        &mut rng,
    )
    .expect("handshake");
    // Dummy thread handle: the real server thread is detached inside
    // `spawn_ssl_server`; the rig's lifetime owns only the client.
    let t = std::thread::spawn(|| {});
    SslRig {
        client: HttpClient::new(Box::new(ChannelStream::new(Box::new(ch)))),
        _thread: t,
    }
}

impl SslRig {
    /// One GET over the established channel.
    pub fn get(&mut self) -> usize {
        let mut req = HttpRequest::get("/doc");
        req.set_header("Connection", "keep-alive");
        let resp = self.client.send(&req).expect("ssl get");
        resp.body.len()
    }
}

/// One complete "new session" exchange: full handshake plus one GET.
pub fn ssl_new_session(tier: Tier, client_auth: bool) -> usize {
    let mut rig = ssl_rig(tier, client_auth);
    rig.get()
}

/// One "cached session" exchange: resumption handshake plus one GET.
///
/// Call once with `caches` empty to seed a full handshake; subsequent calls
/// resume without public-key operations.
pub fn ssl_resumed_session(
    tier: Tier,
    client_cache: &SessionCache,
    server_cache: &SessionCache,
) -> usize {
    let server_key = kp("ssl-server-key");
    let client_key = kp("ssl-client-key");
    let ct = spawn_ssl_server(tier, server_key, Some(server_cache.clone()));
    let mut rng = det("ssl-resume-client");
    let ch = SecureChannel::client(
        Box::new(ct),
        Some(&client_key),
        Some((client_cache, "bench-server")),
        &mut rng,
    )
    .expect("handshake");
    let mut client = HttpClient::new(Box::new(ChannelStream::new(Box::new(ch))));
    let mut req = HttpRequest::get("/doc");
    req.set_header("Connection", "keep-alive");
    client.send(&req).expect("get").body.len()
}

/// Document-authentication cost (Figure 8's white bars): one GET whose
/// response carries `Sf-Document-Proof`, verified by the client.
///
/// `cached` selects the per-document proof cache ("cache" vs "sign");
/// `new_session` tears down and rebuilds the connection per request.
pub struct DocAuthRig {
    server: Arc<HttpServer>,
    issuer: Principal,
    authenticator: Arc<DocumentAuthenticator>,
    cached: bool,
    connection: Option<(HttpClient, JoinHandle<()>)>,
}

/// Builds the document-authentication rig.
pub fn doc_auth_rig(cached: bool) -> DocAuthRig {
    let key = kp("doc-auth-key");
    let authenticator = Arc::new(DocumentAuthenticator::new(
        key,
        Box::new(det("doc-auth-rng")),
    ));
    let issuer = authenticator.issuer();
    let server = HttpServer::new();
    let auth2 = Arc::clone(&authenticator);
    let body = test_document();
    server.route(
        "/",
        Arc::new(move |_req: &HttpRequest| {
            let mut resp =
                snowflake_http::HttpResponse::ok("application/octet-stream", body.clone());
            auth2.attach(&mut resp, cached);
            resp
        }),
    );
    DocAuthRig {
        server,
        issuer,
        authenticator,
        cached,
        connection: None,
    }
}

impl DocAuthRig {
    /// One authenticated GET; `new_session` forces a fresh connection.
    pub fn get(&mut self, new_session: bool) -> usize {
        if !self.cached {
            // Force a fresh signature each time.
            self.authenticator.clear_cache();
        }
        if new_session || self.connection.is_none() {
            let (client_stream, mut server_stream) = duplex();
            let server = Arc::clone(&self.server);
            let t = std::thread::spawn(move || {
                let _ = server.serve_stream(&mut server_stream);
            });
            self.connection = Some((HttpClient::new(Box::new(client_stream)), t));
        }
        let (client, _) = self.connection.as_mut().expect("connection");
        let mut req = HttpRequest::get("/doc");
        req.set_header("Connection", "keep-alive");
        let resp = client.send(&req).expect("doc get");
        let ctx = snowflake_core::VerifyCtx::at(fixed_clock());
        snowflake_http::server::verify_document(&resp, &self.issuer, &ctx).expect("doc proof");
        resp.body.len()
    }
}

// ======================================================================
// §7.4.1: prover scaling
// ======================================================================

/// A prover holding a delegation chain of configurable depth.
pub struct ProverRig {
    /// The prover under test.
    pub prover: Prover,
    /// Chain endpoints: (subject, issuer).
    pub endpoints: (Principal, Principal),
    tag: Tag,
}

/// Builds a prover with a `depth`-edge delegation chain.
pub fn prover_rig(depth: usize) -> ProverRig {
    let prover = Prover::with_rng(Box::new(det("prover-rig")));
    let keys: Vec<KeyPair> = (0..=depth).map(|i| kp(&format!("chain-{i}"))).collect();
    let tag = Tag::named("web", vec![]);
    let mut rng = det("prover-rig-issue");
    for i in 0..depth {
        let cert = Certificate::issue(
            &keys[i],
            Delegation {
                subject: Principal::key(&keys[i + 1].public),
                issuer: Principal::key(&keys[i].public),
                tag: tag.clone(),
                validity: Validity::always(),
                delegable: true,
            },
            &mut rng,
        );
        prover.add_proof(Proof::signed_cert(cert));
    }
    let endpoints = (
        Principal::key(&keys[depth].public),
        Principal::key(&keys[0].public),
    );
    ProverRig {
        prover,
        endpoints,
        tag,
    }
}

impl ProverRig {
    /// One cold search (shortcut cache cleared first).
    pub fn search_cold(&self) -> usize {
        self.prover.clear_shortcuts();
        let p = self
            .prover
            .find_proof(&self.endpoints.0, &self.endpoints.1, &self.tag, Time(0))
            .expect("chain exists");
        p.size()
    }

    /// One warm search (shortcut available).
    pub fn search_warm(&self) -> usize {
        let p = self
            .prover
            .find_proof(&self.endpoints.0, &self.endpoints.1, &self.tag, Time(0))
            .expect("chain exists");
        p.size()
    }
}
