//! Audit emission on the hot path: what does the trail cost, and what
//! happens when it overflows?
//!
//! Three measurements:
//!
//! * `mac_request/{off,on}` — the MAC-authenticated request path (the
//!   cheapest authorization tier) with auditing detached vs. attached.
//!   The delta is the per-request emit overhead; it must be a bounded
//!   `try_push`, never an append.
//! * `emit_only` — the raw cost of one `emit` into a roomy sink.
//! * `saturation` — emits against a tiny queue with a deliberately slow
//!   drain: the hot path must keep its pace (non-blocking) while the
//!   overflow is *dropped and counted*, exactly like every other shed in
//!   the runtime.
//!
//! Set `SF_BENCH_SMOKE=1` to run each rig once (CI smoke mode: proves the
//! rigs build and hold their invariants, measures nothing).

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_apps::{ProtectedWebService, Vfs};
use snowflake_audit::{AuditLog, AuditQuery, AuditSink, DbBackend, MemoryBackend};
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent};
use snowflake_core::{Delegation, HashAlg, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::mac::ClientMacSession;
use snowflake_http::{HttpRequest, HttpServer, MacSessionStore, ProtectedServlet};
use std::sync::Arc;

fn fixed_clock() -> Time {
    Time(1_000_000)
}

struct MacRig {
    server: Arc<HttpServer>,
    servlet: Arc<ProtectedServlet<ProtectedWebService>>,
    request: HttpRequest,
}

/// A servlet with one established MAC session and a ready-to-replay
/// MAC-authenticated request.
fn mac_rig() -> MacRig {
    let server = HttpServer::new();
    let vfs = Arc::new(Vfs::new());
    vfs.write("/docs/a", b"a".to_vec());
    let mut mrng = DetRng::new(b"audit-bench-mount");
    let servlet = ProtectedWebService::new(Principal::message(b"owner"), "docs", vfs).mount(
        &server,
        "/docs",
        Arc::new(MacSessionStore::new()),
        fixed_clock,
        Box::new(move |b| mrng.fill(b)),
    );

    let mut crng = DetRng::new(b"audit-bench-client");
    let (body, dh) = ClientMacSession::request_body(&mut |b| crng.fill(b));
    let mut est = HttpRequest::post(snowflake_http::MAC_SESSION_PATH, body);
    let stmt = Delegation {
        subject: snowflake_http::request_principal(&est, HashAlg::Sha256),
        issuer: Principal::message(b"owner"),
        tag: Tag::Star,
        validity: Validity::until(Time(1_003_000)),
        delegable: false,
    };
    servlet.base_ctx().assume(&stmt);
    snowflake_http::auth::attach_proof(
        &mut est,
        &Proof::Assumption {
            stmt,
            authority: "bench".into(),
        },
    );
    let resp = server.respond(&est);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let session = ClientMacSession::from_grant(&resp.body, &dh, Validity::always()).unwrap();

    let mut request = HttpRequest::get("/docs/a");
    let hash = snowflake_http::request_hash(&request, HashAlg::Sha256);
    request.set_header(snowflake_http::auth::MAC_ID_HEADER, &session.id_header());
    request.set_header(snowflake_http::auth::MAC_HEADER, &session.authenticate(&hash));
    MacRig {
        server,
        servlet,
        request,
    }
}

fn bench_log(seed: &str, backend: Box<dyn snowflake_audit::AuditBackend>) -> Arc<AuditLog> {
    let mut kr = DetRng::new(format!("{seed}-key").as_bytes());
    let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
    let mut sr = DetRng::new(format!("{seed}-sign").as_bytes());
    AuditLog::with_rng(key, backend, 64, Box::new(move |b| sr.fill(b))).expect("fresh backend")
}

fn event(n: u64) -> DecisionEvent {
    DecisionEvent::new(
        Time(1_000_000 + n),
        "bench",
        Decision::Grant,
        "/docs/a",
        "GET",
        "saturation",
    )
}

/// Drives `n` MAC requests, asserting each is served.
fn run_mac_requests(rig: &MacRig, n: usize) -> std::time::Duration {
    let start = std::time::Instant::now();
    for _ in 0..n {
        let resp = rig.server.respond(&rig.request);
        assert_eq!(resp.status, 200);
    }
    start.elapsed()
}

/// Floods a tiny sink, returning (elapsed, final stats).  The invariant
/// checked everywhere: every emit is accounted for as accepted or
/// dropped, and the flood never blocks on the drain.
fn run_saturation(emits: u64) -> (std::time::Duration, snowflake_audit::SinkStats) {
    let sink = AuditSink::with_capacity(bench_log("sat", Box::new(MemoryBackend::new(4096))), 16);
    let start = std::time::Instant::now();
    for i in 0..emits {
        sink.emit(event(i));
    }
    let elapsed = start.elapsed();
    sink.flush();
    let stats = sink.stats();
    assert_eq!(stats.accepted + stats.dropped, emits);
    assert_eq!(stats.drained, stats.accepted);
    (elapsed, stats)
}

/// One `report_json` line carrying the saturation run's [`SinkStats`]:
/// the audit sink's health counters land in `BENCH_<date>.json` beside
/// the latency rows, so the recorded trajectory covers audit overflow
/// behavior too.
fn report_sink_stats(emits: u64, elapsed: std::time::Duration, s: snowflake_audit::SinkStats) {
    snowflake_bench::report_json(
        "audit_sink_saturation",
        &[
            ("emits", emits.to_string()),
            ("elapsed_us", (elapsed.as_micros() as u64).to_string()),
            ("accepted", s.accepted.to_string()),
            ("dropped", s.dropped.to_string()),
            ("drained", s.drained.to_string()),
            ("append_failures", s.append_failures.to_string()),
        ],
    );
}

fn audit_throughput(c: &mut Criterion) {
    let smoke = std::env::var_os("SF_BENCH_SMOKE").is_some();
    let rig = mac_rig();

    if smoke {
        // Hot path with auditing off, then on: same responses, bounded
        // extra cost, zero drops at this capacity.
        let off = run_mac_requests(&rig, 200);
        let sink = AuditSink::with_capacity(bench_log("smoke", Box::new(DbBackend::new())), 4096);
        rig.servlet
            .set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);
        let on = run_mac_requests(&rig, 200);
        sink.flush();
        let recorded = sink
            .log()
            .query(&AuditQuery::all().surface("http-mac"))
            .unwrap();
        assert_eq!(recorded.len(), 200, "every MAC grant recorded");
        assert_eq!(sink.stats().dropped, 0);
        sink.log().verify().unwrap();
        println!("audit_throughput/smoke/mac_off ok ({off:?} / 200 reqs)");
        println!("audit_throughput/smoke/mac_on  ok ({on:?} / 200 reqs)");

        let (elapsed, stats) = run_saturation(20_000);
        assert!(stats.dropped > 0, "a 16-slot queue must shed under a 20k flood");
        println!(
            "audit_throughput/smoke/saturation ok ({elapsed:?} for 20k emits, \
             {} accepted, {} dropped)",
            stats.accepted, stats.dropped
        );
        report_sink_stats(20_000, elapsed, stats);
        return;
    }

    let mut group = c.benchmark_group("audit_throughput");
    group.sample_size(10);
    group.bench_function("mac_request/off", |b| {
        b.iter(|| run_mac_requests(&rig, 50));
    });
    let sink = AuditSink::with_capacity(bench_log("bench", Box::new(MemoryBackend::new(65_536))), 8192);
    rig.servlet
        .set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);
    group.bench_function("mac_request/on", |b| {
        b.iter(|| run_mac_requests(&rig, 50));
    });
    group.bench_function("emit_only", |b| {
        let sink = AuditSink::with_capacity(
            bench_log("emit-only", Box::new(MemoryBackend::new(65_536))),
            65_536,
        );
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            sink.emit(event(n));
        });
    });
    group.bench_function("saturation/20k", |b| {
        b.iter(|| run_saturation(20_000));
    });
    group.finish();

    let (elapsed, stats) = run_saturation(20_000);
    report_sink_stats(20_000, elapsed, stats);
}

criterion_group!(benches, audit_throughput);
criterion_main!(benches);
