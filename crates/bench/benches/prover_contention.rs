//! Multi-threaded `find_proof` throughput on one shared Prover.
//!
//! The search path takes only the read side of the graph lock, so a fixed
//! batch of queries should finish *faster* as threads are added (up to the
//! core count).  Before the read-mostly layout, BFS took the write lock and
//! the thread counts all measured the same serialized time.
//!
//! Set `SF_BENCH_SMOKE=1` to run each configuration exactly once (CI smoke
//! mode: proves the rig still builds and answers, measures nothing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snowflake_bench::contention;

const TOTAL_QUERIES: usize = 2_000;
const THREADS: [usize; 3] = [1, 4, 8];

fn prover_contention(c: &mut Criterion) {
    let rig = contention::prover_contention_rig(8, 64);
    // Warm the shortcut cache so every thread measures the steady state.
    contention::run_prover_contention(&rig, 1, 16);

    if std::env::var_os("SF_BENCH_SMOKE").is_some() {
        for threads in THREADS {
            let d = contention::run_prover_contention(&rig, threads, threads);
            println!("prover_contention/smoke/{threads}threads ok ({d:?})");
        }
        return;
    }

    let mut group = c.benchmark_group("prover_contention");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new("warm_queries", threads),
            &threads,
            |b, &threads| {
                b.iter(|| contention::run_prover_contention(&rig, threads, TOTAL_QUERIES));
            },
        );
    }
    group.finish();

    // One measured pass per thread count for the JSON-lines report.
    let fields: Vec<(&str, String)> = THREADS
        .iter()
        .map(|&threads| {
            let d = contention::run_prover_contention(&rig, threads, TOTAL_QUERIES);
            let ns = (d.as_nanos() / TOTAL_QUERIES.max(1) as u128) as u64;
            let key: &str = match threads {
                1 => "threads_1_ns_per_query",
                4 => "threads_4_ns_per_query",
                _ => "threads_8_ns_per_query",
            };
            (key, ns.to_string())
        })
        .collect();
    snowflake_bench::report_json("prover_contention", &fields);
}

criterion_group!(benches, prover_contention);
criterion_main!(benches);
