//! Figure 8: standard SSL authentication (black bars) versus Snowflake
//! client authorization (gray) and server document authentication (white).
//!
//! Paper values (ms): SSL ignore 14/47, SSL verify cached-session 140/290,
//! SSL new session 250/420; Sf client auth ident 81, MAC 110, sign 380;
//! Sf document auth cache 99 / sign 430 (cached conn) and cache 160 /
//! sign 490 (new conn).
//!
//! Expected shapes: warm-channel requests ≪ cached-session handshakes ≪
//! full handshakes; ident < MAC ≪ per-request signatures; cached document
//! proofs < fresh signatures; cached connections < new connections.

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_bench::rigs::{self, HttpKind, Tier};
use snowflake_channel::SessionCache;

fn ssl_bars(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_ssl");
    for (tier, name) in [
        (Tier::Mini, "ignore_mini"),
        (Tier::Framework, "ignore_framework"),
    ] {
        let mut rig = rigs::ssl_rig(tier, false);
        group.bench_function(name, |b| {
            b.iter(|| rig.get());
        });
    }
    group.sample_size(10);
    for (tier, name) in [
        (Tier::Mini, "verify_cached_session_mini"),
        (Tier::Framework, "verify_cached_session_framework"),
    ] {
        let client_cache = SessionCache::new();
        let server_cache = SessionCache::new();
        rigs::ssl_resumed_session(tier, &client_cache, &server_cache);
        group.bench_function(name, |b| {
            b.iter(|| rigs::ssl_resumed_session(tier, &client_cache, &server_cache));
        });
    }
    for (tier, name) in [
        (Tier::Mini, "verify_new_session_mini"),
        (Tier::Framework, "verify_new_session_framework"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| rigs::ssl_new_session(tier, true));
        });
    }
    group.finish();
}

fn snowflake_client_auth(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_sf_client_auth");
    for (kind, name) in [
        (HttpKind::SnowflakeIdent, "identical_request"),
        (HttpKind::SnowflakeMac, "mac_amortized"),
        (HttpKind::SnowflakeSign, "signature_per_request"),
    ] {
        let mut rig = rigs::http_rig(kind);
        if kind == HttpKind::SnowflakeSign {
            group.sample_size(20);
        }
        group.bench_function(name, |b| {
            b.iter(|| rig.get());
        });
    }
    group.finish();
}

fn snowflake_doc_auth(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_sf_doc_auth");
    group.sample_size(20);
    for (cached, new_session, name) in [
        (true, false, "cached_proof_cached_conn"),
        (false, false, "fresh_sign_cached_conn"),
        (true, true, "cached_proof_new_conn"),
        (false, true, "fresh_sign_new_conn"),
    ] {
        let mut rig = rigs::doc_auth_rig(cached);
        rig.get(new_session);
        group.bench_function(name, |b| {
            b.iter(|| rig.get(new_session));
        });
    }
    group.finish();
}

criterion_group!(benches, ssl_bars, snowflake_client_auth, snowflake_doc_auth);
criterion_main!(benches);
