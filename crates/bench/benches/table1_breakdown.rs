//! Table 1: the per-phase cost breakdown of the MAC authorization protocol.
//!
//! Paper columns (ms): SSL request = 5 + 20 + 22 = 47; Snowflake MAC
//! request = 5 + 20 + ~20 + ~20 + 17 + 28 = 110.  Each phase below is one
//! paper row; the criterion IDs match the row labels.

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_bench::rigs::{self, HttpKind, Tier};
use snowflake_core::{Proof, Time, VerifyCtx};
use snowflake_crypto::hmac::hmac_sha256;
use snowflake_http::HttpRequest;
use snowflake_sexpr::Sexp;

fn phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");

    let mut mini = rigs::http_rig(HttpKind::Mini);
    group.bench_function("row1_minimum_http_get", |b| {
        b.iter(|| mini.get());
    });

    let mut framework = rigs::http_rig(HttpKind::Framework);
    group.bench_function("row2_framework_http_get", |b| {
        b.iter(|| framework.get());
    });

    let mut ssl = rigs::ssl_rig(Tier::Framework, false);
    group.bench_function("row3_ssl_http_get", |b| {
        b.iter(|| ssl.get());
    });

    // The proof-processing rows time a representative two-certificate
    // chain — the same shape a servlet parses and verifies per request.
    let proof_wire = representative_wire();

    group.bench_function("row4_sexp_parsing", |b| {
        b.iter(|| Sexp::parse(&proof_wire).expect("parse"));
    });

    let tree = Sexp::parse(&proof_wire).expect("parse");
    group.bench_function("row5_spki_unmarshalling", |b| {
        b.iter(|| Proof::from_sexp(&tree).expect("decode"));
    });

    let proof = Proof::from_sexp(&tree).expect("decode");
    let ctx = VerifyCtx::at(Time(1_000_000));
    group.bench_function("row6_other_snowflake_verify_marshal", |b| {
        b.iter(|| {
            proof.verify(&ctx).expect("verify");
            proof.to_sexp()
        });
    });

    let mut req = HttpRequest::get("/doc");
    req.set_header("Connection", "keep-alive");
    let secret = [7u8; 32];
    group.bench_function("row7_mac_costs", |b| {
        b.iter(|| {
            let h = snowflake_http::request_hash(&req, snowflake_core::HashAlg::Sha256);
            hmac_sha256(&secret, &h.bytes)
        });
    });

    group.finish();
}

/// A two-certificate chain like the one a server verifies per request.
fn representative_wire() -> Vec<u8> {
    use snowflake_core::{Certificate, Delegation, Principal, Tag, Validity};
    use snowflake_crypto::{DetRng, Group, KeyPair};
    let mut rng = DetRng::new(b"bench-wire");
    let mut rb = move |b: &mut [u8]| rng.fill(b);
    let owner = KeyPair::generate(Group::test512(), &mut rb);
    let alice = KeyPair::generate(Group::test512(), &mut rb);
    let tag = Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]);
    let c1 = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: Principal::key(&owner.public),
            tag: tag.clone(),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rb,
    );
    let c2 = Certificate::issue(
        &alice,
        Delegation {
            subject: Principal::message(b"the request"),
            issuer: Principal::key(&alice.public),
            tag,
            validity: Validity::until(Time(2_000_000)),
            delegable: false,
        },
        &mut rb,
    );
    Proof::signed_cert(c2)
        .then(Proof::signed_cert(c1))
        .to_sexp()
        .canonical()
}

criterion_group!(benches, phases);
criterion_main!(benches);
