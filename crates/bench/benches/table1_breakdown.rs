//! Table 1: the per-phase cost breakdown of the MAC authorization protocol.
//!
//! Paper columns (ms): SSL request = 5 + 20 + 22 = 47; Snowflake MAC
//! request = 5 + 20 + ~20 + ~20 + 17 + 28 = 110.  Each phase below is one
//! paper row; the criterion IDs match the row labels.
//!
//! Row 6 comes in two speeds: the cold verify (every request re-proves the
//! chain) and the memoized verify (the verified-chain memo answers a
//! re-presented proof without redoing the exponentiations) — the servlet
//! steady state once a client's chain has been seen.
//!
//! Set `SF_BENCH_SMOKE=1` to run each phase once (CI smoke mode: proves
//! the rigs still build and verify, measures nothing).

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_bench::rigs::{self, HttpKind, Tier};
use snowflake_bench::{report_json, time_it};
use snowflake_core::{ChainMemo, Proof, Time, VerifyCtx};
use snowflake_crypto::hmac::hmac_sha256;
use snowflake_http::HttpRequest;
use snowflake_sexpr::Sexp;
use std::sync::Arc;

fn phases(c: &mut Criterion) {
    let smoke = std::env::var_os("SF_BENCH_SMOKE").is_some();

    // The proof-processing rows time a representative two-certificate
    // chain — the same shape a servlet parses and verifies per request.
    let proof_wire = representative_wire();
    let tree = Sexp::parse(&proof_wire).expect("parse");
    let proof = Proof::from_sexp(&tree).expect("decode");
    let ctx = VerifyCtx::at(Time(1_000_000));
    // The memo row: the same proof re-presented to a context holding a
    // verified-chain memo.  The first call verifies and records; every
    // timed call is a hit that skips the exponentiations.
    let memo = Arc::new(ChainMemo::new(64));
    let memo_ctx = VerifyCtx::at(Time(1_000_000)).with_chain_memo(Arc::clone(&memo));
    memo_ctx.verify_cached(&proof).expect("warm the memo");

    if smoke {
        let mut mini = rigs::http_rig(HttpKind::Mini);
        mini.get();
        let mut framework = rigs::http_rig(HttpKind::Framework);
        framework.get();
        let mut ssl = rigs::ssl_rig(Tier::Framework, false);
        ssl.get();
        proof.verify(&ctx).expect("cold verify");
        memo_ctx.verify_cached(&proof).expect("memo hit");
        assert!(memo.stats().hits >= 1, "memo hit counter must move");
        println!("table1/smoke ok (rigs, cold verify, and memo hit all pass)");
        return;
    }

    let mut group = c.benchmark_group("table1");

    let mut mini = rigs::http_rig(HttpKind::Mini);
    group.bench_function("row1_minimum_http_get", |b| {
        b.iter(|| mini.get());
    });

    let mut framework = rigs::http_rig(HttpKind::Framework);
    group.bench_function("row2_framework_http_get", |b| {
        b.iter(|| framework.get());
    });

    let mut ssl = rigs::ssl_rig(Tier::Framework, false);
    group.bench_function("row3_ssl_http_get", |b| {
        b.iter(|| ssl.get());
    });

    group.bench_function("row4_sexp_parsing", |b| {
        b.iter(|| Sexp::parse(&proof_wire).expect("parse"));
    });

    group.bench_function("row5_spki_unmarshalling", |b| {
        b.iter(|| Proof::from_sexp(&tree).expect("decode"));
    });

    group.bench_function("row6_other_snowflake_verify_marshal", |b| {
        b.iter(|| {
            proof.verify(&ctx).expect("verify");
            proof.to_sexp()
        });
    });

    group.bench_function("row6b_memoized_verify", |b| {
        b.iter(|| memo_ctx.verify_cached(&proof).expect("memo hit"));
    });

    let mut req = HttpRequest::get("/doc");
    req.set_header("Connection", "keep-alive");
    let secret = [7u8; 32];
    group.bench_function("row7_mac_costs", |b| {
        b.iter(|| {
            let h = snowflake_http::request_hash(&req, snowflake_core::HashAlg::Sha256);
            hmac_sha256(&secret, &h.bytes)
        });
    });

    group.finish();

    // One measured pass per proof-path row for the JSON-lines report,
    // with the memo counters proving the hit path is what was timed.
    let ns = |d: std::time::Duration| d.as_nanos().to_string();
    let parse = time_it(10, 500, || {
        Sexp::parse(&proof_wire).expect("parse");
    });
    let unmarshal = time_it(10, 500, || {
        Proof::from_sexp(&tree).expect("decode");
    });
    let cold = time_it(3, 100, || proof.verify(&ctx).expect("verify"));
    let hit = time_it(10, 2000, || memo_ctx.verify_cached(&proof).expect("memo hit"));
    let stats = memo.stats();
    report_json(
        "table1_breakdown",
        &[
            ("sexp_parse_ns", ns(parse)),
            ("unmarshal_ns", ns(unmarshal)),
            ("cold_verify_ns", ns(cold)),
            ("memo_hit_verify_ns", ns(hit)),
            ("memo_hits", stats.hits.to_string()),
            ("memo_misses", stats.misses.to_string()),
        ],
    );
}

/// A two-certificate chain like the one a server verifies per request.
fn representative_wire() -> Vec<u8> {
    use snowflake_core::{Certificate, Delegation, Principal, Tag, Validity};
    use snowflake_crypto::{DetRng, Group, KeyPair};
    let mut rng = DetRng::new(b"bench-wire");
    let mut rb = move |b: &mut [u8]| rng.fill(b);
    let owner = KeyPair::generate(Group::test512(), &mut rb);
    let alice = KeyPair::generate(Group::test512(), &mut rb);
    let tag = Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]);
    let c1 = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: Principal::key(&owner.public),
            tag: tag.clone(),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rb,
    );
    let c2 = Certificate::issue(
        &alice,
        Delegation {
            subject: Principal::message(b"the request"),
            issuer: Principal::key(&alice.public),
            tag,
            validity: Validity::until(Time(2_000_000)),
            delegable: false,
        },
        &mut rb,
    );
    Proof::signed_cert(c2)
        .then(Proof::signed_cert(c1))
        .to_sexp()
        .canonical()
}

criterion_group!(benches, phases);
criterion_main!(benches);
