//! Revocation freshness: validator push throughput under N subscribers,
//! the staleness window (revoke → every subscribed verifier rejects), and
//! the pull-refresh cost that push amortizes away.
//!
//! Each revocation signs one CRL and every subscriber re-verifies it, so
//! fan-out cost is `sign + N × verify`; the staleness bars should stay
//! flat-ish in N while refresh cost grows linearly with the fleet.
//!
//! Set `SF_BENCH_SMOKE=1` to run each configuration exactly once (CI smoke
//! mode: proves the rig still builds and converges, measures nothing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snowflake_bench::revocation;

const SUBSCRIBERS: [usize; 3] = [1, 8, 32];
const REVOCATIONS: usize = 16;
const REFRESH_ROUNDS: usize = 8;

fn revocation_freshness(c: &mut Criterion) {
    if std::env::var_os("SF_BENCH_SMOKE").is_some() {
        for subs in SUBSCRIBERS {
            let rig = revocation::push_rig(subs);
            let fan = revocation::run_push_fanout(&rig, 2);
            let stale = revocation::run_staleness_window(&rig);
            println!("revocation_freshness/smoke/{subs}subs fanout={fan:?} staleness={stale:?}");
        }
        let rig = revocation::push_rig(4);
        let refresh = revocation::run_refresh(&rig, 1);
        println!("revocation_freshness/smoke/refresh ok ({refresh:?})");
        return;
    }

    let mut group = c.benchmark_group("revocation_freshness");
    group.sample_size(10);
    for subs in SUBSCRIBERS {
        let rig = revocation::push_rig(subs);
        group.bench_with_input(
            BenchmarkId::new("push_fanout", subs),
            &subs,
            |b, _| {
                b.iter(|| revocation::run_push_fanout(&rig, REVOCATIONS));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("staleness_window", subs),
            &subs,
            |b, _| {
                b.iter(|| {
                    // A fresh rig per measurement: staleness is one-shot
                    // (the certificate stays revoked once pushed).
                    let rig = revocation::push_rig(subs);
                    revocation::run_staleness_window(&rig)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("crl_refresh", subs),
            &subs,
            |b, _| {
                b.iter(|| revocation::run_refresh(&rig, REFRESH_ROUNDS));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, revocation_freshness);
criterion_main!(benches);
