//! What one metrics observation costs on the hot path.
//!
//! Every serving surface now records into a [`LatencyHistogram`] per
//! request, and the runtime's shed/queue counters sit on the same relaxed
//! atomics.  The budget: a `record` is three relaxed RMWs (bucket, sum,
//! max) and a counter `inc` is one — tens of nanoseconds, invisible next
//! to a microsecond of HMAC let alone a millisecond of Schnorr.  This
//! bench holds that budget (the `ns_per_record` row in the JSON report
//! must stay under 50ns) so observability never becomes the overhead it
//! is supposed to expose.
//!
//! Four measurements:
//!
//! * `record` — one `record_ns` into a shared histogram (the per-request
//!   surface cost).
//! * `timer` — `start_timer()` + drop (adds the two `Instant` reads the
//!   surfaces actually pay).
//! * `counter_inc` — one relaxed counter increment (the shed/hit path).
//! * `render` — one full registry render (the scrape, off the hot path).
//!
//! Set `SF_BENCH_SMOKE=1` to run each once (CI smoke: proves the rigs
//! build, measures nothing).

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_metrics::{Counter, LatencyHistogram, Registry};
use std::sync::Arc;

const RECORDS: u64 = 1_000_000;

/// Times `n` `record_ns` calls on one histogram, returning ns/record.
fn run_records(hist: &LatencyHistogram, n: u64) -> f64 {
    let start = std::time::Instant::now();
    for i in 0..n {
        hist.record_ns(i.wrapping_mul(2654435761) >> 16);
    }
    start.elapsed().as_nanos() as f64 / n as f64
}

/// Times `n` timer guard cycles (two clock reads + one record).
fn run_timers(hist: &Arc<LatencyHistogram>, n: u64) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..n {
        let _timer = hist.start_timer();
    }
    start.elapsed().as_nanos() as f64 / n as f64
}

/// Times `n` relaxed counter increments.
fn run_incs(counter: &Counter, n: u64) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..n {
        counter.inc();
    }
    start.elapsed().as_nanos() as f64 / n as f64
}

/// A private registry with a few populated families, rendered once.
fn run_render() -> (f64, usize) {
    let registry = Registry::new();
    for surface in ["http", "rmi", "gateway", "broker-sub"] {
        let h = registry.histogram("sf_request_duration_seconds", &[("surface", surface)]);
        for i in 0..1000u64 {
            h.record_ns(i * 977);
        }
        registry
            .counter("sf_sheds_total", &[("origin", "pool"), ("surface", surface)])
            .add(surface.len() as u64);
    }
    let start = std::time::Instant::now();
    let body = registry.render();
    (start.elapsed().as_nanos() as f64, body.len())
}

fn metrics_overhead(c: &mut Criterion) {
    let hist = Arc::new(LatencyHistogram::new());
    let counter = Counter::new();

    if std::env::var_os("SF_BENCH_SMOKE").is_some() {
        let rec = run_records(&hist, 10_000);
        let tim = run_timers(&hist, 10_000);
        let inc = run_incs(&counter, 10_000);
        let (render_ns, bytes) = run_render();
        println!("metrics_overhead/smoke/record ok ({rec:.1}ns)");
        println!("metrics_overhead/smoke/timer ok ({tim:.1}ns)");
        println!("metrics_overhead/smoke/counter_inc ok ({inc:.1}ns)");
        println!("metrics_overhead/smoke/render ok ({render_ns:.0}ns, {bytes} bytes)");
        report(rec, tim, inc, render_ns);
        return;
    }

    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);
    group.bench_function("record", |b| b.iter(|| run_records(&hist, 10_000)));
    group.bench_function("timer", |b| b.iter(|| run_timers(&hist, 10_000)));
    group.bench_function("counter_inc", |b| b.iter(|| run_incs(&counter, 10_000)));
    group.bench_function("render", |b| b.iter(run_render));
    group.finish();

    // One long measured pass for the JSON-lines report; the record cost
    // is the number the acceptance gate watches.
    let rec = run_records(&hist, RECORDS);
    let tim = run_timers(&hist, RECORDS / 10);
    let inc = run_incs(&counter, RECORDS);
    let (render_ns, _) = run_render();
    assert!(
        rec < 50.0,
        "histogram record must stay under 50ns/record, measured {rec:.1}ns"
    );
    report(rec, tim, inc, render_ns);
}

fn report(rec: f64, tim: f64, inc: f64, render_ns: f64) {
    snowflake_bench::report_json(
        "metrics_overhead",
        &[
            ("ns_per_record", format!("{rec:.1}")),
            ("ns_per_timer", format!("{tim:.1}")),
            ("ns_per_counter_inc", format!("{inc:.1}")),
            ("render_us", format!("{:.1}", render_ns / 1000.0)),
        ],
    );
}

criterion_group!(benches, metrics_overhead);
criterion_main!(benches);
