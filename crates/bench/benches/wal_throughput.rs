//! Durability on the hot path: what does append-before-apply cost, and
//! how fast does recovery replay?
//!
//! Three measurements:
//!
//! * `reldb_append` — one durable insert into the relational store: WAL
//!   frame encode + append + fsync, then the in-memory apply.  This is
//!   the incremental price every mailstore write pays for surviving a
//!   crash.
//! * `audit_append` — one decision appended to the file-backed audit
//!   log: chain + sign bookkeeping + line append + fsync.  This is the
//!   durable tail of every authorization decision.
//! * `replay` — reopening a 100k-record WAL from a cold start: the
//!   recovery time an operator actually waits after a crash.
//!
//! Set `SF_BENCH_SMOKE=1` to run each rig once at reduced sizes (CI
//! smoke mode: proves the rigs build and the recovery invariants hold,
//! measures nothing).  Set `SF_BENCH_JSON=<path>` (full mode only) to
//! append-structure the numbers into a JSON report — the file the perf
//! trajectory is recorded in (`BENCH_<date>.json` at the repo root).

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_audit::{AuditLog, FileBackend};
use snowflake_core::audit::{Decision, DecisionEvent};
use snowflake_core::durable::Durable;
use snowflake_core::Time;
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_reldb::{ColumnType, Database, DurableDatabase, Schema, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn schema(db: &mut Database) {
    db.create_table(
        "decisions",
        Schema::new(&[("k", ColumnType::Text), ("n", ColumnType::Int)]),
    );
    db.table_mut("decisions").unwrap().create_index("k").unwrap();
}

/// A fresh on-disk base path (removing any artifacts of a prior run).
fn fresh_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sf-wal-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for ext in ["wal", "snap", "snap.tmp"] {
        let _ = std::fs::remove_file(dir.join(name).with_extension(ext));
    }
    dir.join(name)
}

fn fresh_audit(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sf-wal-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn row(i: u64) -> Vec<Value> {
    Vec::from([
        Value::Text(format!("req-{}", i % 64)),
        Value::Int(i as i64),
    ])
}

fn event(n: u64) -> DecisionEvent {
    DecisionEvent::new(
        Time(1_000_000 + n),
        "bench",
        Decision::Grant,
        "/docs/a",
        "GET",
        "wal-throughput",
    )
}

fn audit_log(name: &str) -> AuditLog {
    let backend = FileBackend::open(fresh_audit(name)).expect("fresh audit file");
    let mut kr = DetRng::new(format!("{name}-key").as_bytes());
    let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
    let mut sr = DetRng::new(format!("{name}-sign").as_bytes());
    match AuditLog::with_rng(key, Box::new(backend), 64, Box::new(move |b| sr.fill(b))) {
        Ok(log) => match std::sync::Arc::try_unwrap(log) {
            Ok(log) => log,
            Err(_) => unreachable!("no other holders of a fresh log"),
        },
        Err(e) => panic!("fresh audit log: {e}"),
    }
}

/// Durably inserts `n` rows, returning the elapsed wall time.
fn run_reldb_appends(db: &mut DurableDatabase, n: u64) -> Duration {
    let start = Instant::now();
    for i in 0..n {
        db.insert("decisions", row(i)).expect("insert");
    }
    start.elapsed()
}

/// Appends `n` decisions to a file-backed audit log, returning elapsed.
fn run_audit_appends(log: &AuditLog, n: u64) -> Duration {
    let start = Instant::now();
    for i in 0..n {
        log.append(event(i)).1.expect("audit append");
    }
    start.elapsed()
}

/// Builds an `n`-record WAL (fsync off: build speed is not the subject)
/// and measures the cold reopen that replays it.
fn run_replay(name: &str, n: u64) -> (Duration, u64) {
    let base = fresh_base(name);
    {
        let mut db = DurableDatabase::open(&base, schema).expect("open");
        db.set_sync(false);
        for i in 0..n {
            db.insert("decisions", row(i)).expect("insert");
        }
        db.sync().expect("final sync");
    }
    let start = Instant::now();
    let db = DurableDatabase::open(&base, schema).expect("reopen");
    let elapsed = start.elapsed();
    assert_eq!(db.recovery().replayed, n, "replay covers every record");
    assert_eq!(db.recovery().truncated_bytes, 0, "clean build, clean tail");
    let recovered = db.database().table("decisions").unwrap().len() as u64;
    (elapsed, recovered)
}

fn ns_per_op(d: Duration, ops: u64) -> u64 {
    (d.as_nanos() / u128::from(ops.max(1))) as u64
}

fn wal_throughput(c: &mut Criterion) {
    let smoke = std::env::var_os("SF_BENCH_SMOKE").is_some();

    if smoke {
        let mut db = DurableDatabase::open(fresh_base("smoke"), schema).expect("open");
        let reldb = run_reldb_appends(&mut db, 200);
        assert_eq!(db.wal_records(), 200);
        let log = audit_log("smoke-audit.log");
        let audit = run_audit_appends(&log, 200);
        log.verify().expect("chain verifies");
        let (replay, recovered) = run_replay("smoke-replay", 5_000);
        assert_eq!(recovered, 5_000);
        println!("wal_throughput/smoke/reldb_append ok ({reldb:?} / 200 inserts, fsync on)");
        println!("wal_throughput/smoke/audit_append ok ({audit:?} / 200 decisions, fsync on)");
        println!("wal_throughput/smoke/replay ok ({replay:?} for a 5k-record log)");
        return;
    }

    let mut group = c.benchmark_group("wal_throughput");
    group.sample_size(10);
    let mut db = DurableDatabase::open(fresh_base("bench"), schema).expect("open");
    group.bench_function("reldb_append/100", |b| {
        b.iter(|| run_reldb_appends(&mut db, 100));
    });
    let log = audit_log("bench-audit.log");
    group.bench_function("audit_append/100", |b| {
        b.iter(|| run_audit_appends(&log, 100));
    });
    group.finish();

    // The headline recovery number: replaying a 100k-record WAL cold.
    let append = {
        let mut db = DurableDatabase::open(fresh_base("json-append"), schema).expect("open");
        run_reldb_appends(&mut db, 1_000)
    };
    let audit = {
        let log = audit_log("json-audit.log");
        run_audit_appends(&log, 1_000)
    };
    let (replay, recovered) = run_replay("replay-100k", 100_000);
    assert_eq!(recovered, 100_000);
    println!("wal_throughput/reldb_append: {} ns/op (fsync on)", ns_per_op(append, 1_000));
    println!("wal_throughput/audit_append: {} ns/decision (fsync on)", ns_per_op(audit, 1_000));
    println!("wal_throughput/replay_100k: {replay:?} ({} ns/record)", ns_per_op(replay, 100_000));

    snowflake_bench::report_json(
        "wal_throughput",
        &[
            ("reldb_append_ns_per_op", ns_per_op(append, 1_000).to_string()),
            (
                "audit_append_ns_per_decision",
                ns_per_op(audit, 1_000).to_string(),
            ),
            ("replay_records", "100000".into()),
            ("replay_ms", replay.as_millis().to_string()),
            (
                "replay_ns_per_record",
                ns_per_op(replay, 100_000).to_string(),
            ),
        ],
    );
}

criterion_group!(benches, wal_throughput);
criterion_main!(benches);
