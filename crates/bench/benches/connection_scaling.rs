//! Connection scaling through the reactor: 10k+ mostly-idle MAC
//! keep-alive sessions on a 4-worker pool.
//!
//! The gate for the event-driven connection layer.  Before it, a parked
//! connection cost a pooled worker (so the pool size bounded *open
//! sessions*); now it costs an epoll registration and a few buffers, and
//! the pool bounds *concurrent invocations*.  Reported: p50/p99 latency
//! for requests on the active 1% while the other 99% sit parked, and
//! resident memory per parked connection.
//!
//! Set `SF_BENCH_SMOKE=1` to run a 200-connection fleet once (CI smoke
//! mode).  Set `SF_BENCH_JSON=<path>` (full mode) to append the numbers
//! to the JSON-lines report.

use criterion::{criterion_group, Criterion};
use snowflake_bench::scaling::{run_connection_scaling, ScalingConfig};
use snowflake_bench::report_json;

fn connection_scaling(c: &mut Criterion) {
    if std::env::var_os("SF_BENCH_SMOKE").is_some() {
        let r = run_connection_scaling(&ScalingConfig {
            parked: 200,
            active: 8,
            requests_per_active: 5,
            sessions: 16,
            workers: 4,
        });
        assert_eq!(r.parked, 200);
        println!(
            "connection_scaling/smoke ok ({} parked, p50 {:?}, p99 {:?}, {} B/conn)",
            r.parked, r.p50, r.p99, r.rss_per_conn_bytes
        );
        return;
    }

    // The headline run: one fleet, measured once (opening 10k real
    // sockets is itself seconds of work; Criterion iteration would
    // re-pay it without adding information).
    let r = run_connection_scaling(&ScalingConfig {
        parked: 10_500,
        active: 105,
        requests_per_active: 20,
        sessions: 256,
        workers: 4,
    });
    assert!(
        r.parked >= 10_000,
        "the reactor must sustain 10k parked sessions, got {}",
        r.parked
    );
    println!(
        "connection_scaling: {} parked keep-alive MAC sessions on 4 workers",
        r.parked
    );
    println!(
        "connection_scaling: active-1% latency p50 {:?} p99 {:?} ({} samples)",
        r.p50, r.p99, r.samples
    );
    println!(
        "connection_scaling: {} bytes resident per parked connection (server process)",
        r.rss_per_conn_bytes
    );
    report_json(
        "connection_scaling",
        &[
            ("parked_sessions", r.parked.to_string()),
            ("workers", "4".into()),
            ("active_connections", "105".into()),
            ("active_p50_us", r.p50.as_micros().to_string()),
            ("active_p99_us", r.p99.as_micros().to_string()),
            ("rss_per_conn_bytes", r.rss_per_conn_bytes.to_string()),
        ],
    );

    // Keep Criterion's harness shape (and timing of the small case) so
    // `cargo bench connection_scaling` composes with the suite.
    let mut group = c.benchmark_group("connection_scaling");
    group.sample_size(10);
    group.bench_function("park_and_probe/256", |b| {
        b.iter(|| {
            let r = run_connection_scaling(&ScalingConfig {
                parked: 256,
                active: 8,
                requests_per_active: 4,
                sessions: 32,
                workers: 4,
            });
            assert_eq!(r.parked, 256);
        });
    });
    group.finish();
}

criterion_group!(benches, connection_scaling);

// Expanded `criterion_main!`, with a detour: when re-exec'd with the
// child marker set, this executable is a client fleet, not a bench.
fn main() {
    if std::env::var_os(snowflake_bench::scaling::CHILD_ENV).is_some() {
        snowflake_bench::scaling::client_child_main();
    }
    benches();
}
