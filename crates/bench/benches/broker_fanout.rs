//! Topic-broker scaling: subscribe-time authorization, publish fan-out,
//! and the cost of a revocation cut at presence scale.
//!
//! The broker checks the delegation chain once, at subscribe time, then
//! parks subscribers; the numbers that matter are therefore (1) how fast
//! authorized subscriptions register, (2) how long one publish takes to
//! reach every parked subscriber through the worker pool, and (3) how
//! long one certificate revocation takes to find and sever exactly the
//! streams built on the dead certificate.  The fleet is presence-shaped:
//! two teams, each a delegable team certificate fanned out to member
//! certificates, each member holding several device streams — so one
//! team-cert revocation must cut half the fleet and leave the other
//! half untouched.
//!
//! Set `SF_BENCH_SMOKE=1` to run a 200-stream fleet once with full
//! correctness assertions (CI smoke mode).  Set `SF_BENCH_JSON=<path>`
//! (full mode, 5 000 streams) to append the numbers to the JSON-lines
//! report.

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_bench::report_json;
use snowflake_broker::{SubscriberSink, TopicBroker};
use snowflake_core::{HashVal, Principal, Proof, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_prover::Prover;
use snowflake_revocation::RevocationBus;
use snowflake_runtime::{PoolConfig, ServerRuntime};
use snowflake_sexpr::Sexp;
use snowflake_tags::path_vector::{grant_tag, ActionTable, PathPattern};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NAMESPACE: &str = "conference.example.org";
const TOPIC: [&str; 3] = ["rooms", "all-hands", "events"];

fn fixed_clock() -> Time {
    Time(1_000_000)
}

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> Box<dyn FnMut(&mut [u8]) + Send> {
    let mut r = DetRng::new(seed.as_bytes());
    Box::new(move |b: &mut [u8]| r.fill(b))
}

fn member(team: &str, i: usize) -> Principal {
    Principal::message(
        &Sexp::tagged(
            "subject",
            vec![Sexp::atom(format!("{team}-member-{i}").into_bytes())],
        )
        .canonical(),
    )
}

/// An in-memory parked subscriber: counts deliveries, observes the cut.
struct MemSink {
    open: AtomicBool,
    delivered: AtomicU64,
}

impl MemSink {
    fn new() -> Arc<MemSink> {
        Arc::new(MemSink {
            open: AtomicBool::new(true),
            delivered: AtomicU64::new(0),
        })
    }
}

impl SubscriberSink for MemSink {
    fn deliver(&self, _frame: &[u8]) -> bool {
        if !self.open.load(Ordering::SeqCst) {
            return false;
        }
        self.delivered.fetch_add(1, Ordering::SeqCst);
        true
    }
    fn is_open(&self) -> bool {
        self.open.load(Ordering::SeqCst)
    }
    fn close(&self) {
        self.open.store(false, Ordering::SeqCst);
    }
}

struct Fleet {
    runtime: Arc<ServerRuntime>,
    broker: Arc<TopicBroker>,
    prover: Arc<Prover>,
    team_a_cert: HashVal,
    sinks_a: Vec<Arc<MemSink>>,
    sinks_b: Vec<Arc<MemSink>>,
    subscribe_time: Duration,
}

/// Two teams of `members` members with `devices` streams each: one
/// delegable team certificate per team, one member certificate per
/// member under it, every stream subscribed through the full
/// authorize-at-subscribe path.
fn build_fleet(members: usize, devices: usize) -> Fleet {
    let issuer_kp = kp("broker-bench-issuer");
    let issuer = Principal::key(&issuer_kp.public);
    let prover = Arc::new(Prover::with_rng(det("broker-bench-prover")));
    prover.add_key(issuer_kp);

    let grant = grant_tag(
        NAMESPACE,
        &PathPattern::parse(&["rooms", "*", "events"]),
        &["subscribe"],
    );
    let mut table = ActionTable::new();
    table.allow(&["rooms", "*", "events"], &["subscribe"]);

    let runtime = ServerRuntime::new(PoolConfig::new("broker-bench", 4, 64));
    let broker = TopicBroker::with_clock(
        Arc::clone(&runtime),
        Arc::clone(&prover),
        NAMESPACE,
        issuer.clone(),
        table,
        fixed_clock,
    );

    let mut team_certs = Vec::new();
    let mut proofs: Vec<(Vec<(Principal, Proof)>, HashVal)> = Vec::new();
    for team in ["a", "b"] {
        let team_kp = kp(&format!("broker-bench-team-{team}"));
        let team_key = Principal::key(&team_kp.public);
        let team_proof = prover
            .delegate(&team_key, &issuer, grant.clone(), Validity::always(), true)
            .expect("team delegation");
        let team_cert = team_proof.cert_hashes()[0].clone();
        prover.add_key(team_kp);
        let mut team_members = Vec::new();
        for i in 0..members {
            let m = member(team, i);
            prover
                .delegate(&m, &team_key, grant.clone(), Validity::always(), false)
                .expect("member delegation");
            let proof = prover
                .find_proof(&m, &issuer, &grant, fixed_clock())
                .expect("member chain");
            team_members.push((m, proof));
        }
        proofs.push((team_members, team_cert.clone()));
        team_certs.push(team_cert);
    }

    let mut sinks = Vec::new();
    let start = Instant::now();
    for (team_members, _) in &proofs {
        let mut team_sinks = Vec::new();
        for (m, proof) in team_members {
            for _ in 0..devices {
                let sink = MemSink::new();
                broker
                    .subscribe_with_proof(
                        m.clone(),
                        &TOPIC,
                        proof,
                        Arc::clone(&sink) as Arc<dyn SubscriberSink>,
                    )
                    .expect("authorized subscribe");
                team_sinks.push(sink);
            }
        }
        sinks.push(team_sinks);
    }
    let subscribe_time = start.elapsed();

    let sinks_b = sinks.pop().unwrap();
    let sinks_a = sinks.pop().unwrap();
    Fleet {
        runtime,
        broker,
        prover,
        team_a_cert: team_certs.remove(0),
        sinks_a,
        sinks_b,
        subscribe_time,
    }
}

fn total_delivered(sinks: &[Arc<MemSink>]) -> u64 {
    sinks
        .iter()
        .map(|s| s.delivered.load(Ordering::SeqCst))
        .sum()
}

fn wait_until(deadline: Duration, cond: impl Fn() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "fan-out never completed");
        std::thread::sleep(Duration::from_micros(200));
    }
}

struct RunResult {
    streams: usize,
    subscribe_time: Duration,
    fanout: Duration,
    cut: Duration,
    cut_count: usize,
}

/// Builds a fleet, measures one full publish fan-out, then revokes team
/// A's certificate and verifies the cut severed exactly team A.
fn run_fleet(members: usize, devices: usize) -> RunResult {
    let fleet = build_fleet(members, devices);
    let streams = fleet.sinks_a.len() + fleet.sinks_b.len();
    assert_eq!(fleet.broker.stats().subscribers as usize, streams);

    let before = total_delivered(&fleet.sinks_a) + total_delivered(&fleet.sinks_b);
    let start = Instant::now();
    fleet.broker.publish(&TOPIC, b"presence ping").unwrap();
    wait_until(Duration::from_secs(30), || {
        total_delivered(&fleet.sinks_a) + total_delivered(&fleet.sinks_b)
            == before + streams as u64
    });
    let fanout = start.elapsed();

    let invalidations_before = fleet.prover.stats().cert_invalidations;
    let start = Instant::now();
    let cut_count = fleet.broker.certificate_revoked(&fleet.team_a_cert);
    let cut = start.elapsed();

    // Exactly team A died; the prover never saw this bus (broker only).
    assert_eq!(cut_count, fleet.sinks_a.len());
    assert!(fleet.sinks_a.iter().all(|s| !s.is_open()));
    assert!(fleet.sinks_b.iter().all(|s| s.is_open()));
    assert_eq!(fleet.broker.stats().subscribers as usize, fleet.sinks_b.len());
    assert_eq!(fleet.broker.stats().cut_streams as usize, cut_count);
    assert_eq!(fleet.prover.stats().cert_invalidations, invalidations_before);

    // Team B still receives after the cut.
    let before_b = total_delivered(&fleet.sinks_b);
    fleet.broker.publish(&TOPIC, b"survivors").unwrap();
    wait_until(Duration::from_secs(30), || {
        total_delivered(&fleet.sinks_b) == before_b + fleet.sinks_b.len() as u64
    });

    fleet.runtime.shutdown();
    RunResult {
        streams,
        subscribe_time: fleet.subscribe_time,
        fanout,
        cut,
        cut_count,
    }
}

fn broker_fanout(c: &mut Criterion) {
    if std::env::var_os("SF_BENCH_SMOKE").is_some() {
        // 2 teams × 10 members × 10 devices = 200 streams.
        let r = run_fleet(10, 10);
        assert_eq!(r.streams, 200);
        assert_eq!(r.cut_count, 100);
        println!(
            "broker_fanout/smoke ok ({} streams, fan-out {:?}, cut {} in {:?})",
            r.streams, r.fanout, r.cut_count, r.cut
        );
        return;
    }

    // The headline run: 2 teams × 50 members × 50 devices = 5 000
    // parked streams, measured once (the fleet build dominates; Criterion
    // iteration would re-pay it without adding information).
    let r = run_fleet(50, 50);
    assert_eq!(r.streams, 5_000);
    assert_eq!(r.cut_count, 2_500);
    let sub_rate = r.streams as f64 / r.subscribe_time.as_secs_f64();
    println!(
        "broker_fanout: {} authorized subscribes in {:?} ({:.0}/s)",
        r.streams, r.subscribe_time, sub_rate
    );
    println!(
        "broker_fanout: one publish reached {} subscribers in {:?}",
        r.streams, r.fanout
    );
    println!(
        "broker_fanout: one revocation cut {} of {} streams in {:?}",
        r.cut_count, r.streams, r.cut
    );
    report_json(
        "broker_fanout",
        &[
            ("streams", r.streams.to_string()),
            ("subscribe_per_sec", format!("{sub_rate:.0}")),
            ("fanout_us", r.fanout.as_micros().to_string()),
            ("revocation_cut_streams", r.cut_count.to_string()),
            ("revocation_cut_us", r.cut.as_micros().to_string()),
        ],
    );

    // Keep Criterion's harness shape (and timing of a small fleet) so
    // `cargo bench broker_fanout` composes with the suite.
    let mut group = c.benchmark_group("broker_fanout");
    group.sample_size(10);
    group.bench_function("publish_and_cut/200", |b| {
        b.iter(|| {
            let r = run_fleet(10, 10);
            assert_eq!(r.cut_count, 100);
        });
    });
    group.finish();
}

criterion_group!(benches, broker_fanout);
criterion_main!(benches);
