//! Ablations for the design choices the core library makes.
//!
//! * **Proof caching** (the server caches *verified* proofs): verification
//!   cost grows linearly with chain length, while a cache hit is a map
//!   probe — `verify_chain` vs the `check_auth` fast path of Figure 6.
//! * **Restriction-tag complexity**: intersection cost vs tag width, the
//!   price paid at every transitivity step (motivates canonicalization
//!   with absorption).
//! * **Wire encodings**: canonical vs transport encode/decode of large
//!   proofs (the "robust and efficient wire transfer encodings" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snowflake_core::{Certificate, Delegation, Principal, Proof, Tag, Time, Validity, VerifyCtx};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_sexpr::Sexp;

/// Builds a `len`-certificate transitivity chain: `k_len ⇒ … ⇒ k_0`.
fn chain(len: usize) -> Proof {
    let mut rng = DetRng::new(b"ablation-chain");
    let mut rb = move |b: &mut [u8]| rng.fill(b);
    let keys: Vec<KeyPair> = (0..=len)
        .map(|_| KeyPair::generate(Group::test512(), &mut rb))
        .collect();
    let mut proof: Option<Proof> = None;
    for i in 0..len {
        // Link i: k_{i+1} speaks for k_i.
        let cert = Certificate::issue(
            &keys[i],
            Delegation {
                subject: Principal::key(&keys[i + 1].public),
                issuer: Principal::key(&keys[i].public),
                tag: Tag::named("web", vec![]),
                validity: Validity::always(),
                delegable: true,
            },
            &mut rb,
        );
        let link = Proof::signed_cert(cert);
        proof = Some(match proof {
            None => link,
            // Accumulated proof shows k_{i} ⇒ k_0; the new link is the
            // subject side: Transitivity(link, acc) gives k_{i+1} ⇒ k_0.
            Some(acc) => link.then(acc),
        });
    }
    proof.expect("len >= 1")
}

fn verify_scaling(c: &mut Criterion) {
    let ctx = VerifyCtx::at(Time(0));
    let mut group = c.benchmark_group("ablation_verify_vs_chain_length");
    group.sample_size(20);
    for len in [1usize, 2, 4, 8] {
        let proof = chain(len);
        proof.verify(&ctx).expect("valid chain");
        group.bench_with_input(BenchmarkId::new("verify", len), &len, |b, _| {
            b.iter(|| proof.verify(&ctx).expect("valid"));
        });
    }
    group.finish();
}

fn wide_tag(width: usize) -> Tag {
    Tag::named(
        "web",
        (0..width)
            .map(|i| {
                Tag::List(vec![
                    Tag::atom(format!("field{i}")),
                    Tag::Set(vec![
                        Tag::atom(format!("a{i}")),
                        Tag::atom(format!("b{i}")),
                        Tag::Prefix(format!("p{i}").into_bytes()),
                    ]),
                ])
            })
            .collect(),
    )
}

fn tag_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tag_intersection");
    for width in [1usize, 4, 16] {
        let a = wide_tag(width);
        let b = wide_tag(width);
        group.bench_with_input(BenchmarkId::new("intersect", width), &width, |bch, _| {
            bch.iter(|| a.intersect(&b).expect("overlapping"));
        });
    }
    group.finish();
}

fn encoding_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wire_encodings");
    group.sample_size(30);
    let proof = chain(8);
    let canonical = proof.to_sexp().canonical();
    let transport = proof.to_sexp().transport();
    group.bench_function("encode_canonical", |b| {
        b.iter(|| proof.to_sexp().canonical())
    });
    group.bench_function("encode_transport", |b| {
        b.iter(|| proof.to_sexp().transport())
    });
    group.bench_function("decode_canonical", |b| {
        b.iter(|| Proof::from_sexp(&Sexp::parse(&canonical).expect("parse")).expect("decode"))
    });
    group.bench_function("decode_transport", |b| {
        b.iter(|| {
            Proof::from_sexp(&Sexp::parse(transport.as_bytes()).expect("parse")).expect("decode")
        })
    });
    group.finish();
}

criterion_group!(benches, verify_scaling, tag_scaling, encoding_scaling);
criterion_main!(benches);
