//! §7.4.1: prover graph-traversal cost.
//!
//! "Proofs are usually constructed incrementally while walking the name
//! graph … shortcuts form a cache that eliminates most deep traversals."
//! Expected shape: cold search cost grows with chain depth; warm (shortcut
//! cached) search cost is flat — effectively constant-depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snowflake_bench::rigs;

fn prover_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("prover_search");
    for depth in [1usize, 2, 4, 8, 16] {
        let rig = rigs::prover_rig(depth);
        group.bench_with_input(BenchmarkId::new("cold", depth), &depth, |b, _| {
            b.iter(|| rig.search_cold());
        });
        rig.search_warm();
        group.bench_with_input(BenchmarkId::new("warm", depth), &depth, |b, _| {
            b.iter(|| rig.search_warm());
        });
    }
    group.finish();
}

criterion_group!(benches, prover_scaling);
criterion_main!(benches);
