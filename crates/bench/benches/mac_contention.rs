//! Multi-threaded MAC `verify` throughput on one shared session store.
//!
//! Sessions live in N independently locked shards and the HMAC runs
//! outside any lock, so verifies on disjoint sessions proceed in parallel:
//! a fixed batch of verifies should finish faster as threads are added.
//! The old single-`Mutex` store held its lock across the HMAC, so thread
//! counts measured the same serialized time.
//!
//! Set `SF_BENCH_SMOKE=1` to run each configuration exactly once (CI smoke
//! mode: proves the rig still builds and verifies, measures nothing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snowflake_bench::contention;

const TOTAL_VERIFIES: usize = 8_000;
const SESSIONS: usize = 64;
const THREADS: [usize; 3] = [1, 4, 8];

fn mac_contention(c: &mut Criterion) {
    let rig = contention::mac_contention_rig(SESSIONS);

    if std::env::var_os("SF_BENCH_SMOKE").is_some() {
        for threads in THREADS {
            let d = contention::run_mac_contention(&rig, threads, threads);
            println!("mac_contention/smoke/{threads}threads ok ({d:?})");
        }
        return;
    }

    let mut group = c.benchmark_group("mac_contention");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new("disjoint_verifies", threads),
            &threads,
            |b, &threads| {
                b.iter(|| contention::run_mac_contention(&rig, threads, TOTAL_VERIFIES));
            },
        );
    }
    group.finish();

    // One measured pass per thread count for the JSON-lines report.
    let fields: Vec<(&str, String)> = THREADS
        .iter()
        .map(|&threads| {
            let d = contention::run_mac_contention(&rig, threads, TOTAL_VERIFIES);
            let ns = (d.as_nanos() / TOTAL_VERIFIES.max(1) as u128) as u64;
            let key: &str = match threads {
                1 => "threads_1_ns_per_verify",
                4 => "threads_4_ns_per_verify",
                _ => "threads_8_ns_per_verify",
            };
            (key, ns.to_string())
        })
        .collect();
    snowflake_bench::report_json("mac_contention", &fields);
}

criterion_group!(benches, mac_contention);
criterion_main!(benches);
