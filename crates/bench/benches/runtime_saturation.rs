//! Throughput and shed rate of the bounded server runtime under
//! oversubscription (1×, 4×, 16× offered load vs. pool capacity).
//!
//! The interesting output is the *shape*: at 1× nothing is shed and
//! throughput tracks the job cost; past saturation the admission path
//! refuses the overflow instead of queueing it forever, so completed
//! throughput stays flat while the shed rate absorbs the excess — the
//! explicit-overload behavior every Snowflake server now inherits.
//!
//! Set `SF_BENCH_SMOKE=1` to run each configuration exactly once (CI
//! smoke mode: proves the rig still builds and balances, measures
//! nothing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snowflake_bench::saturation;

const OVERSUBSCRIPTION: [usize; 3] = [1, 4, 16];

fn runtime_saturation(c: &mut Criterion) {
    if std::env::var_os("SF_BENCH_SMOKE").is_some() {
        for factor in OVERSUBSCRIPTION {
            let r = saturation::run_saturation(factor);
            assert_eq!(r.completed + r.shed, r.offered, "accounting must balance");
            println!(
                "runtime_saturation/smoke/{factor}x ok ({} offered, {} completed, shed rate {:.2})",
                r.offered,
                r.completed,
                r.shed_rate()
            );
        }
        return;
    }

    let mut group = c.benchmark_group("runtime_saturation");
    group.sample_size(10);
    for factor in OVERSUBSCRIPTION {
        group.bench_with_input(
            BenchmarkId::new("offered_load", factor),
            &factor,
            |b, &factor| {
                b.iter(|| {
                    let r = saturation::run_saturation(factor);
                    assert_eq!(r.completed + r.shed, r.offered);
                    r.throughput()
                });
            },
        );
    }
    group.finish();

    // One measured pass per factor for the JSON-lines report.
    let mut fields: Vec<(&str, String)> = Vec::new();
    for factor in OVERSUBSCRIPTION {
        let r = saturation::run_saturation(factor);
        assert_eq!(r.completed + r.shed, r.offered);
        let (tp_key, shed_key): (&str, &str) = match factor {
            1 => ("factor_1x_jobs_per_sec", "factor_1x_shed_rate"),
            4 => ("factor_4x_jobs_per_sec", "factor_4x_shed_rate"),
            _ => ("factor_16x_jobs_per_sec", "factor_16x_shed_rate"),
        };
        fields.push((tp_key, format!("{:.0}", r.throughput())));
        fields.push((shed_key, format!("{:.3}", r.shed_rate())));
    }
    snowflake_bench::report_json("runtime_saturation", &fields);
}

criterion_group!(benches, runtime_saturation);
criterion_main!(benches);
