//! Figure 6: the cost of introducing Snowflake authorization to RMI.
//!
//! Paper values (270 MHz Ultra 5): basic RMI 4.8 ms, RMI+ssh 13 ms,
//! RMI+Snowflake 18 ms.  Expected shape: basic < ssh < Snowflake, with the
//! ssh layer contributing most of the overhead and `check_auth` a modest
//! increment.  Also covers §7.2: connection setup and forced proof
//! re-verification.

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_bench::rigs::{self, RmiKind};

fn fig6(c: &mut Criterion) {
    let env = rigs::rmi_env();
    let mut group = c.benchmark_group("fig6_rmi_warm_call");
    for (kind, name) in [
        (RmiKind::Plain, "basic_rmi"),
        (RmiKind::Ssh, "rmi_ssh"),
        (RmiKind::Snowflake, "rmi_ssh_snowflake"),
    ] {
        let mut rig = rigs::rmi_rig(&env, kind);
        group.bench_function(name, |b| {
            b.iter(|| rig.call());
        });
    }
    group.finish();

    let mut setup = c.benchmark_group("sec7_2_setup");
    setup.sample_size(10);
    setup.bench_function("new_authorized_connection", |b| {
        b.iter(|| rigs::rmi_connection_setup(&env));
    });
    let mut rig = rigs::rmi_rig(&env, RmiKind::Snowflake);
    setup.bench_function("server_proof_parse_verify", |b| {
        b.iter(|| rigs::rmi_proof_verify(&env, &mut rig));
    });
    setup.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
