//! Ablation: the primitive operations underlying every figure.
//!
//! The paper's cost analysis (§7.4.1) argues that Snowflake and SSL "engage
//! in similar operations"; this bench exposes the primitive costs so the
//! composite figures can be sanity-checked against their parts: public-key
//! sign/verify dominate everything else by orders of magnitude, which is
//! exactly why the MAC amortization and the proof cache exist.

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_crypto::chacha20::ChaCha20;
use snowflake_crypto::hmac::hmac_sha256;
use snowflake_crypto::{md5, sha256, DetRng, DhSecret, Group, KeyPair};

fn primitives(c: &mut Criterion) {
    let mut rng = DetRng::new(b"crypto-bench");
    let mut rb = move |b: &mut [u8]| rng.fill(b);
    let kp = KeyPair::generate(Group::test512(), &mut rb);
    let kp1024 = KeyPair::generate(Group::group1024(), &mut rb);
    let msg = vec![0xabu8; 1024];
    let sig = kp.sign(&msg, &mut rb);
    let sig1024 = kp1024.sign(&msg, &mut rb);

    let mut group = c.benchmark_group("crypto");
    group.bench_function("sha256_1k", |b| b.iter(|| sha256(&msg)));
    group.bench_function("md5_1k", |b| b.iter(|| md5(&msg)));
    group.bench_function("hmac_sha256_1k", |b| b.iter(|| hmac_sha256(b"key", &msg)));
    group.bench_function("chacha20_1k", |b| {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        b.iter(|| {
            let mut data = msg.clone();
            ChaCha20::new(&key, &nonce).apply(&mut data);
            data
        })
    });

    group.sample_size(20);
    group.bench_function("schnorr_sign_512", |b| {
        let mut rng = DetRng::new(b"sign-bench");
        let mut rb = move |buf: &mut [u8]| rng.fill(buf);
        b.iter(|| kp.sign(&msg, &mut rb));
    });
    group.bench_function("schnorr_verify_512", |b| {
        b.iter(|| kp.public.verify(&msg, &sig))
    });
    group.bench_function("schnorr_sign_1024", |b| {
        let mut rng = DetRng::new(b"sign-bench-1024");
        let mut rb = move |buf: &mut [u8]| rng.fill(buf);
        b.iter(|| kp1024.sign(&msg, &mut rb));
    });
    group.bench_function("schnorr_verify_1024", |b| {
        b.iter(|| kp1024.public.verify(&msg, &sig1024))
    });
    group.bench_function("dh_agreement_512", |b| {
        let mut rng = DetRng::new(b"dh-bench");
        let mut rb = move |buf: &mut [u8]| rng.fill(buf);
        let peer = DhSecret::generate(Group::test512(), &mut rb);
        b.iter_batched(
            || DhSecret::generate(Group::test512(), &mut rb),
            |mine| mine.agree(&peer.public).expect("valid share"),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
