//! Ablation: the primitive operations underlying every figure.
//!
//! The paper's cost analysis (§7.4.1) argues that Snowflake and SSL "engage
//! in similar operations"; this bench exposes the primitive costs so the
//! composite figures can be sanity-checked against their parts: public-key
//! sign/verify dominate everything else by orders of magnitude, which is
//! exactly why the MAC amortization and the proof cache exist.
//!
//! The verify rows come in three speeds: `*_generic` runs every
//! exponentiation through plain square-and-multiply (the pre-table
//! baseline), the unsuffixed rows run the production path (sliding-window
//! exponentiation plus fixed-base tables for the group generator and for
//! issuer keys seen often enough to be promoted into the key-table cache),
//! and `batch16_*` verifies sixteen signatures as one random-linear-
//! combination multi-exponentiation, reported per signature.
//!
//! Set `SF_BENCH_SMOKE=1` to run each primitive once (CI smoke mode:
//! proves the rigs still build and the fast paths agree with the
//! baseline, measures nothing).

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_bench::{report_json, time_it};
use snowflake_crypto::chacha20::ChaCha20;
use snowflake_crypto::hmac::hmac_sha256;
use snowflake_crypto::{
    md5, sha256, verify_batch, BatchEntry, BatchOutcome, DetRng, DhSecret, Group, KeyPair,
    Signature,
};

/// How many signatures ride one batched verification — a deep delegation
/// chain, or one burst of CRL deltas.
const BATCH: usize = 16;

/// Sixteen distinct issuers each signing a distinct message (the shape a
/// multi-cert chain or a delta burst presents).
fn batch_fleet(group: &'static Group, seed: &[u8]) -> (Vec<KeyPair>, Vec<Vec<u8>>, Vec<Signature>) {
    let mut rng = DetRng::new(seed);
    let mut rb = move |b: &mut [u8]| rng.fill(b);
    let keys: Vec<KeyPair> = (0..BATCH)
        .map(|_| KeyPair::generate(group, &mut rb))
        .collect();
    let msgs: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| format!("batched message {i}").into_bytes())
        .collect();
    let sigs: Vec<Signature> = keys
        .iter()
        .zip(&msgs)
        .map(|(k, m)| k.sign(m, &mut rb))
        .collect();
    (keys, msgs, sigs)
}

fn entries<'a>(
    keys: &'a [KeyPair],
    msgs: &'a [Vec<u8>],
    sigs: &'a [Signature],
) -> Vec<BatchEntry<'a>> {
    keys.iter()
        .zip(msgs)
        .zip(sigs)
        .map(|((k, m), s)| BatchEntry {
            key: &k.public,
            message: m,
            sig: s,
        })
        .collect()
}

fn primitives(c: &mut Criterion) {
    let mut rng = DetRng::new(b"crypto-bench");
    let mut rb = move |b: &mut [u8]| rng.fill(b);
    let kp = KeyPair::generate(Group::test512(), &mut rb);
    let kp1024 = KeyPair::generate(Group::group1024(), &mut rb);
    let msg = vec![0xabu8; 1024];
    let sig = kp.sign(&msg, &mut rb);
    let sig1024 = kp1024.sign(&msg, &mut rb);
    // Warm both keys past the key-table cache's promotion threshold so
    // the unsuffixed verify rows time the steady state — an issuer key
    // the server has seen before, served from its fixed-base table.
    for _ in 0..3 {
        assert!(kp.public.verify(&msg, &sig));
        assert!(kp1024.public.verify(&msg, &sig1024));
    }

    let (keys512, msgs512, sigs512) = batch_fleet(Group::test512(), b"batch-512");
    let (keys1024, msgs1024, sigs1024) = batch_fleet(Group::group1024(), b"batch-1024");
    let batch512 = entries(&keys512, &msgs512, &sigs512);
    let batch1024 = entries(&keys1024, &msgs1024, &sigs1024);

    if std::env::var_os("SF_BENCH_SMOKE").is_some() {
        assert!(kp.public.verify_uncached(&msg, &sig));
        assert!(kp1024.public.verify_uncached(&msg, &sig1024));
        assert!(matches!(verify_batch(&batch512), BatchOutcome::AllValid));
        assert!(matches!(verify_batch(&batch1024), BatchOutcome::AllValid));
        println!("crypto/smoke ok (generic, fixed-base, and batch paths agree)");
        return;
    }

    let mut group = c.benchmark_group("crypto");
    group.bench_function("sha256_1k", |b| b.iter(|| sha256(&msg)));
    group.bench_function("md5_1k", |b| b.iter(|| md5(&msg)));
    group.bench_function("hmac_sha256_1k", |b| b.iter(|| hmac_sha256(b"key", &msg)));
    group.bench_function("chacha20_1k", |b| {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        b.iter(|| {
            let mut data = msg.clone();
            ChaCha20::new(&key, &nonce).apply(&mut data);
            data
        })
    });

    group.sample_size(20);
    group.bench_function("schnorr_sign_512", |b| {
        let mut rng = DetRng::new(b"sign-bench");
        let mut rb = move |buf: &mut [u8]| rng.fill(buf);
        b.iter(|| kp.sign(&msg, &mut rb));
    });
    group.bench_function("schnorr_verify_512", |b| {
        b.iter(|| kp.public.verify(&msg, &sig))
    });
    group.bench_function("schnorr_verify_512_generic", |b| {
        b.iter(|| kp.public.verify_uncached(&msg, &sig))
    });
    group.bench_function("schnorr_batch16_512", |b| b.iter(|| verify_batch(&batch512)));
    group.bench_function("schnorr_sign_1024", |b| {
        let mut rng = DetRng::new(b"sign-bench-1024");
        let mut rb = move |buf: &mut [u8]| rng.fill(buf);
        b.iter(|| kp1024.sign(&msg, &mut rb));
    });
    group.bench_function("schnorr_verify_1024", |b| {
        b.iter(|| kp1024.public.verify(&msg, &sig1024))
    });
    group.bench_function("schnorr_verify_1024_generic", |b| {
        b.iter(|| kp1024.public.verify_uncached(&msg, &sig1024))
    });
    group.bench_function("schnorr_batch16_1024", |b| {
        b.iter(|| verify_batch(&batch1024))
    });
    group.bench_function("dh_agreement_512", |b| {
        let mut rng = DetRng::new(b"dh-bench");
        let mut rb = move |buf: &mut [u8]| rng.fill(buf);
        let peer = DhSecret::generate(Group::test512(), &mut rb);
        b.iter_batched(
            || DhSecret::generate(Group::test512(), &mut rb),
            |mine| mine.agree(&peer.public).expect("valid share"),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();

    // One measured pass per verify path for the JSON-lines report.
    let ns = |d: std::time::Duration| d.as_nanos().to_string();
    let v512_generic = time_it(3, 100, || assert!(kp.public.verify_uncached(&msg, &sig)));
    let v512_fast = time_it(3, 200, || assert!(kp.public.verify(&msg, &sig)));
    let v512_batch = time_it(2, 20, || {
        assert!(matches!(verify_batch(&batch512), BatchOutcome::AllValid))
    });
    let v1024_generic = time_it(2, 20, || {
        assert!(kp1024.public.verify_uncached(&msg, &sig1024))
    });
    let v1024_fast = time_it(2, 40, || assert!(kp1024.public.verify(&msg, &sig1024)));
    let v1024_batch = time_it(1, 8, || {
        assert!(matches!(verify_batch(&batch1024), BatchOutcome::AllValid))
    });
    report_json(
        "crypto_primitives",
        &[
            ("verify_512_generic_ns", ns(v512_generic)),
            ("verify_512_fixed_base_ns", ns(v512_fast)),
            ("verify_512_batch16_ns_per_sig", ns(v512_batch / BATCH as u32)),
            ("verify_1024_generic_ns", ns(v1024_generic)),
            ("verify_1024_fixed_base_ns", ns(v1024_fast)),
            (
                "verify_1024_batch16_ns_per_sig",
                ns(v1024_batch / BATCH as u32),
            ),
        ],
    );
}

criterion_group!(benches, primitives);
criterion_main!(benches);
