//! Figure 7: the cost of introducing Snowflake authorization to HTTP.
//!
//! Paper values: trivial C client + Apache 4.6 ms; Java + Jetty 25 ms;
//! Snowflake 81 ms (≈40 ms of which was slow SPKI parsing).  Expected
//! shape: minimal < framework < Snowflake-signed, with the signature and
//! proof verification dominating the last bar.

use criterion::{criterion_group, criterion_main, Criterion};
use snowflake_bench::rigs::{self, HttpKind};

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_http_get");
    for (kind, name) in [
        (HttpKind::Mini, "minimal_server"),
        (HttpKind::Framework, "framework_server"),
        (HttpKind::SnowflakeSign, "snowflake_signed"),
    ] {
        let mut rig = rigs::http_rig(kind);
        if kind == HttpKind::SnowflakeSign {
            group.sample_size(20);
        }
        group.bench_function(name, |b| {
            b.iter(|| rig.get());
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
