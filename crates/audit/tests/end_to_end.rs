//! End-to-end: every decision surface — gateway, RMI dispatch, the email
//! database's app checks, the HTTP servlet (signed and MAC paths), the
//! accept-loop sheds, and revocation pushes — emits into one bounded sink,
//! and the resulting chained log answers "why was this historical request
//! granted?" with the full speaks-for provenance, verifiably.

use snowflake_apps::emaildb::{EmailDb, EMAIL_DB_OBJECT};
use snowflake_apps::{ProtectedWebService, QuotingGateway, Vfs};
use snowflake_audit::{
    records_from_reply, verify_chain, AuditLog, AuditQuery, AuditService, AuditSink, DbBackend,
    Decision, MemoryBackend, AUDIT_OBJECT,
};
use snowflake_channel::{PipeTransport, SecureChannel};
use snowflake_core::{
    AuditEmitter, Certificate, Delegation, HashAlg, Principal, Proof, Tag, Time, Validity,
};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::mac::ClientMacSession;
use snowflake_http::{duplex, HttpClient, HttpRequest, HttpServer, MacSessionStore, SnowflakeProxy};
use snowflake_prover::Prover;
use snowflake_rmi::{RmiClient, RmiServer};
use snowflake_sexpr::Sexp;
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

fn tag(src: &str) -> Tag {
    Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
}

fn fresh_sink(seed: &str, backend: Box<dyn snowflake_audit::AuditBackend>) -> Arc<AuditSink> {
    let key = kp(&format!("{seed}-log-key"));
    let mut sr = DetRng::new(format!("{seed}-log-sign").as_bytes());
    let log = AuditLog::with_rng(key, backend, 4, Box::new(move |b| sr.fill(b))).expect("fresh backend");
    AuditSink::with_capacity(log, 256)
}

/// The four-boundary gateway scenario of `snowflake-apps`, instrumented:
/// one sink hears the RMI server, the email database, and the gateway.
#[test]
fn gateway_email_flow_is_fully_audited() {
    let sink = fresh_sink("gw", Box::new(DbBackend::new()));
    let emitter: Arc<dyn AuditEmitter> = Arc::clone(&sink) as Arc<dyn AuditEmitter>;

    let db_key = kp("db-server");
    let alice = kp("alice-identity");
    let db_issuer = Principal::key(&db_key.public);

    // Database server + seeded mail (seeding happens before the emitter is
    // attached, so the trail holds only externally driven decisions).
    let db_server = RmiServer::with_clock(fixed_clock);
    let email = Arc::new(EmailDb::with_clock(db_issuer.clone(), fixed_clock));
    {
        use snowflake_rmi::{CallerInfo, Invocation, RemoteObject};
        let caller = CallerInfo {
            speaker: Principal::message(b"setup"),
            channel: snowflake_core::ChannelId {
                kind: "setup".into(),
                id: snowflake_core::HashVal::of(b"setup"),
            },
        };
        for (owner, sender, subject, body) in [
            ("alice", "bob", "lunch", "noon at the green?"),
            ("bob", "alice", "re: lunch", "sounds good"),
        ] {
            email
                .invoke(
                    &Invocation {
                        object: EMAIL_DB_OBJECT.into(),
                        method: "insert".into(),
                        args: vec![
                            Sexp::from(owner),
                            Sexp::from(sender),
                            Sexp::from(subject),
                            Sexp::from(body),
                            Sexp::from("inbox"),
                        ],
                        quoting: None,
                    },
                    &caller,
                )
                .unwrap();
        }
    }
    db_server.set_audit_emitter(Arc::clone(&emitter));
    email.set_audit_emitter(Arc::clone(&emitter));
    db_server.register(EMAIL_DB_OBJECT, email);

    // Gateway connected over the secure channel.
    let gateway_session = kp("gateway-session");
    let mut grng = DetRng::new(b"gw-prover");
    let gateway_prover = Arc::new(Prover::with_rng(Box::new(move |b| grng.fill(b))));
    let (ct, st) = PipeTransport::pair();
    // Serves until the gateway's client channel drops with the HTTP
    // server at the end of the test; not joined (same shape as the apps
    // four-boundaries tests).
    let _db_thread = {
        let server = Arc::clone(&db_server);
        let db_key2 = db_key.clone();
        std::thread::spawn(move || {
            let mut rng = DetRng::new(b"db-chan");
            let mut channel =
                SecureChannel::server(Box::new(st), &db_key2, None, &mut |b| rng.fill(b)).unwrap();
            let _ = server.serve_connection(&mut channel);
        })
    };
    let gateway_rmi = {
        let mut rng = DetRng::new(b"gw-chan");
        let channel = SecureChannel::client(Box::new(ct), Some(&gateway_session), None, &mut |b| {
            rng.fill(b)
        })
        .unwrap();
        RmiClient::with_clock(
            Box::new(channel),
            gateway_session.clone(),
            gateway_prover,
            fixed_clock,
        )
    };
    let gateway = QuotingGateway::new(gateway_rmi, fixed_clock);
    gateway.set_audit_emitter(Arc::clone(&emitter));
    let http_server = HttpServer::new();
    http_server.route("/mail", Arc::new(gateway));

    // Alice's proxy, holding the owner's delegable grant.
    let mut rng = DetRng::new(b"grant");
    let grant_cert = Certificate::issue(
        &db_key,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: db_issuer,
            tag: EmailDb::owner_tag("alice"),
            validity: Validity::always(),
            delegable: true,
        },
        &mut |b| rng.fill(b),
    );
    let grant_hash = grant_cert.hash();
    let mut prng = DetRng::new(b"alice-prover");
    let alice_prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    alice_prover.add_proof(Proof::signed_cert(grant_cert));
    alice_prover.add_key(alice.clone());
    let mut xrng = DetRng::new(b"alice-proxy");
    let alice_proxy =
        SnowflakeProxy::with_clock(alice_prover, fixed_clock, Box::new(move |b| xrng.fill(b)));
    alice_proxy.set_identity(Principal::key(&alice.public));

    // Alice reads her inbox (challenge → proof → grant), then fails to
    // read Bob's.
    let (client_stream, mut server_stream) = duplex();
    let http2 = Arc::clone(&http_server);
    let http_thread = std::thread::spawn(move || {
        let _ = http2.serve_stream(&mut server_stream);
    });
    let mut client = HttpClient::new(Box::new(client_stream));
    let resp = alice_proxy
        .execute(&mut client, HttpRequest::get("/mail/alice/inbox"))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert!(alice_proxy
        .execute(&mut client, HttpRequest::get("/mail/bob/inbox"))
        .is_err());
    drop(client);
    http_thread.join().unwrap();

    sink.flush();
    let log = sink.log();
    assert_eq!(sink.stats().dropped, 0);

    // Every surface spoke: the gateway challenged then granted, the RMI
    // layer denied (no proof), digested the proof, and granted from its
    // cache, and the email app recorded the row-scoped operation.
    let by = |surface: &str, decision: Decision| {
        log.query(&AuditQuery::all().surface(surface))
            .unwrap()
            .into_iter()
            .filter(|r| r.event.decision == decision)
            .collect::<Vec<_>>()
    };
    assert!(!by("gateway", Decision::Deny).is_empty(), "gateway challenge recorded");
    let gateway_grants = by("gateway", Decision::Grant);
    assert_eq!(gateway_grants.len(), 1, "one granted gateway transaction");
    assert_eq!(
        gateway_grants[0].event.subject,
        Some(Principal::key(&alice.public)),
        "the gateway's grant names the quoted client"
    );
    assert!(!by("rmi", Decision::Deny).is_empty(), "database fault recorded");
    assert!(!by("emaildb", Decision::Grant).is_empty(), "app outcome recorded");

    // The RMI grant carries the full speaks-for provenance: the owner's
    // grant to Alice is among the certificates the decision rested on.
    let rmi_grants = by("rmi", Decision::Grant);
    assert!(
        rmi_grants
            .iter()
            .any(|r| r.event.cert_hashes.contains(&grant_hash)),
        "some rmi grant depends on the owner→alice certificate"
    );

    // Bob's inbox attempt produced no grant for that object anywhere.
    let bob_reads = log
        .query(&AuditQuery::all().object_prefix("/mail/bob"))
        .unwrap();
    assert!(!bob_reads.is_empty());
    assert!(bob_reads.iter().all(|r| r.event.decision == Decision::Deny));

    // And the captured stream is tamper-evidently intact.
    let entries = log.entries().unwrap();
    let head = log.head().unwrap();
    verify_chain(&entries, log.public_key(), log.checkpoint_interval(), Some(&head)).unwrap();
}

/// The HTTP servlet's surfaces: challenge and signed-proof decisions
/// (`http`), MAC establishment and per-request MACs (`http-mac`), and the
/// accept loop's sheds (`http`, over real TCP).
#[test]
fn http_servlet_mac_and_shed_surfaces_audited() {
    let sink = fresh_sink("http", Box::new(MemoryBackend::new(0)));
    let emitter: Arc<dyn AuditEmitter> = Arc::clone(&sink) as Arc<dyn AuditEmitter>;

    let server = HttpServer::new();
    server.set_audit_emitter(Arc::clone(&emitter));
    let macs = Arc::new(MacSessionStore::new());
    let vfs = Arc::new(Vfs::new());
    vfs.write("/docs/a", b"a".to_vec());
    let mut mrng = DetRng::new(b"mount");
    let servlet = ProtectedWebService::new(Principal::message(b"owner"), "docs", vfs).mount(
        &server,
        "/docs",
        macs,
        fixed_clock,
        Box::new(move |b| mrng.fill(b)),
    );
    servlet.set_audit_emitter(Arc::clone(&emitter));

    // 1. Challenge (no proof) → deny on the signed surface.
    assert_eq!(server.respond(&HttpRequest::get("/docs/a")).status, 401);

    // 2. Signed-proof grant.
    let signed_get = |path: &str| {
        let mut req = HttpRequest::get(path);
        let stmt = Delegation {
            subject: snowflake_http::request_principal(&req, HashAlg::Sha256),
            issuer: Principal::message(b"owner"),
            tag: Tag::Star,
            validity: Validity::until(Time(2_000_000)),
            delegable: false,
        };
        servlet.base_ctx().assume(&stmt);
        snowflake_http::auth::attach_proof(
            &mut req,
            &Proof::Assumption {
                stmt,
                authority: "test".into(),
            },
        );
        req
    };
    assert_eq!(server.respond(&signed_get("/docs/a")).status, 200);

    // 3. MAC establishment (grant) and a MAC-authenticated request.
    let mut crng = DetRng::new(b"mac-client");
    let (body, dh) = ClientMacSession::request_body(&mut |b| crng.fill(b));
    let mut est = HttpRequest::post(snowflake_http::MAC_SESSION_PATH, body);
    let stmt = Delegation {
        subject: snowflake_http::request_principal(&est, HashAlg::Sha256),
        issuer: Principal::message(b"owner"),
        tag: Tag::Star,
        validity: Validity::until(Time(1_003_000)),
        delegable: false,
    };
    servlet.base_ctx().assume(&stmt);
    snowflake_http::auth::attach_proof(
        &mut est,
        &Proof::Assumption {
            stmt,
            authority: "test".into(),
        },
    );
    let resp = server.respond(&est);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let session = ClientMacSession::from_grant(&resp.body, &dh, Validity::always()).unwrap();
    let mut mac_req = HttpRequest::get("/docs/a");
    let hash = snowflake_http::request_hash(&mac_req, HashAlg::Sha256);
    mac_req.set_header(snowflake_http::auth::MAC_ID_HEADER, &session.id_header());
    mac_req.set_header(snowflake_http::auth::MAC_HEADER, &session.authenticate(&hash));
    assert_eq!(server.respond(&mac_req).status, 200);

    // 4. A garbage MAC → deny on the MAC surface.
    let mut bad = HttpRequest::get("/docs/a");
    bad.set_header(snowflake_http::auth::MAC_ID_HEADER, &session.id_header());
    bad.set_header(snowflake_http::auth::MAC_HEADER, "AAAA");
    assert_eq!(server.respond(&bad).status, 403);

    // 5. Sheds over real TCP: a saturated pool, then a shutting-down one.
    let runtime = snowflake_runtime::ServerRuntime::new(PoolConfig::new("audit-http", 1, 1));
    let gate = Gate::closed();
    let g = Arc::clone(&gate);
    runtime.pool().submit(move || g.wait()).unwrap();
    wait_for(|| runtime.stats().in_flight == 1);
    let g = Arc::clone(&gate);
    runtime.pool().submit(move || g.wait()).unwrap(); // fills the queue
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accept_thread = {
        let server = Arc::clone(&server);
        let runtime = Arc::clone(&runtime);
        std::thread::spawn(move || {
            let _ = server.serve_tcp(listener, &runtime);
        })
    };
    let shed_resp = {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let mut req = HttpRequest::get("/docs/a");
        req.set_header("Connection", "close");
        req.write_to(&mut stream).unwrap();
        snowflake_http::HttpResponse::read_from(&mut std::io::BufReader::new(stream))
            .unwrap()
            .expect("shed connections still hear a reply")
    };
    assert_eq!(shed_resp.status, 503);
    gate.open();
    runtime.shutdown();
    // The next connection lands on the shutting-down runtime, which also
    // ends the accept loop.
    let _ = std::net::TcpStream::connect(addr).map(|mut s| {
        let mut req = HttpRequest::get("/docs/a");
        req.set_header("Connection", "close");
        let _ = req.write_to(&mut s);
    });
    accept_thread.join().unwrap();

    sink.flush();
    let log = sink.log();
    let count = |surface: &str, decision: Decision| {
        log.query(&AuditQuery::all().surface(surface))
            .unwrap()
            .into_iter()
            .filter(|r| r.event.decision == decision)
            .count()
    };
    assert!(count("http", Decision::Deny) >= 1, "challenge recorded");
    assert!(count("http", Decision::Grant) >= 1, "signed grant recorded");
    assert!(count("http-mac", Decision::Grant) >= 2, "establishment + MAC hit");
    assert!(count("http-mac", Decision::Deny) >= 1, "bad MAC recorded");
    assert!(count("http", Decision::Shed) >= 1, "TCP shed recorded");
    log.verify().unwrap();
}

use snowflake_runtime::PoolConfig;
use std::sync::{Condvar, Mutex};

struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn closed() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

fn wait_for(mut cond: impl FnMut() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(start.elapsed().as_secs() < 10, "condition not reached in time");
        std::thread::yield_now();
    }
}

/// Revocation pushes are first-class audit events: the bus records the
/// dead certificate and the eviction fan-out.
#[test]
fn revocation_push_is_first_class_audit_event() {
    use snowflake_revocation::{AuditedBus, RevocationBus};

    let sink = fresh_sink("revoke", Box::new(MemoryBackend::new(0)));
    let emitter: Arc<dyn AuditEmitter> = Arc::clone(&sink) as Arc<dyn AuditEmitter>;

    // A prover warm with a certificate-backed proof is one of the caches
    // the push must reach.
    let issuer_kp = kp("revoke-issuer");
    let subject_kp = kp("revoke-subject");
    let mut rng = DetRng::new(b"revoke-cert");
    let cert = Certificate::issue(
        &issuer_kp,
        Delegation {
            subject: Principal::key(&subject_kp.public),
            issuer: Principal::key(&issuer_kp.public),
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: true,
        },
        &mut |b| rng.fill(b),
    );
    let cert_hash = cert.hash();
    let mut prng = DetRng::new(b"revoke-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_proof(Proof::signed_cert(cert));

    let bus = AuditedBus::with_clock(
        prover as Arc<dyn RevocationBus>,
        Arc::clone(&emitter),
        fixed_clock,
    );
    bus.certificate_revoked(&cert_hash);

    sink.flush();
    let log = sink.log();
    let revokes = log
        .query(&AuditQuery::all().surface("revocation"))
        .unwrap();
    assert_eq!(revokes.len(), 1);
    let ev = &revokes[0].event;
    assert_eq!(ev.decision, Decision::Revoke);
    assert!(ev.object.starts_with("cert:"));
    assert_eq!(ev.cert_hashes, vec![cert_hash]);
    assert!(ev.detail.contains("evicted"));
    log.verify().unwrap();
}

/// The query API over RMI: a delegated auditor reads the trail through the
/// protected `AuditService`, exports the entries, and re-verifies the
/// chain offline — and the read itself lands in the trail.
#[test]
fn audit_service_queries_over_rmi() {
    let sink = fresh_sink("svc", Box::new(DbBackend::new()));
    let emitter: Arc<dyn AuditEmitter> = Arc::clone(&sink) as Arc<dyn AuditEmitter>;
    let log = Arc::clone(sink.log());

    // Pre-populate the trail with a few decisions.
    for i in 0..5u64 {
        emitter.emit(
            snowflake_core::DecisionEvent::new(
                Time(1_000_000 + i),
                "rmi",
                if i == 2 { Decision::Deny } else { Decision::Grant },
                "email-db",
                "select",
                "seeded",
            )
            .with_subject(Principal::message(b"alice")),
        );
    }
    sink.flush();

    // The audit server: a protected AuditService whose own decisions feed
    // the same sink.
    let auditor_key = kp("auditor");
    let server = RmiServer::with_clock(fixed_clock);
    server.set_audit_emitter(Arc::clone(&emitter));
    server.register(
        AUDIT_OBJECT,
        AuditService::new(Arc::clone(&log), Principal::key(&auditor_key.public)),
    );

    // The auditor delegates read access to the client's identity.
    let client_identity = kp("audit-client");
    let mut rng = DetRng::new(b"audit-grant");
    let cert = Certificate::issue(
        &auditor_key,
        Delegation {
            subject: Principal::key(&client_identity.public),
            issuer: Principal::key(&auditor_key.public),
            tag: tag("(rmi (object audit-log))"),
            validity: Validity::always(),
            delegable: true,
        },
        &mut |b| rng.fill(b),
    );
    let mut prng = DetRng::new(b"audit-client-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_proof(Proof::signed_cert(cert));
    prover.add_key(client_identity.clone());

    let session = kp("audit-session");
    let (ct, st) = PipeTransport::pair();
    let serve_thread = {
        let server = Arc::clone(&server);
        let auditor_key = auditor_key.clone();
        std::thread::spawn(move || {
            let mut rng = DetRng::new(b"audit-srv-chan");
            let mut channel =
                SecureChannel::server(Box::new(st), &auditor_key, None, &mut |b| rng.fill(b))
                    .unwrap();
            let _ = server.serve_connection(&mut channel);
        })
    };
    let mut client = {
        let mut rng = DetRng::new(b"audit-cli-chan");
        let channel =
            SecureChannel::client(Box::new(ct), Some(&session), None, &mut |b| rng.fill(b))
                .unwrap();
        RmiClient::with_clock(Box::new(channel), session.clone(), prover, fixed_clock)
    };

    // Query: alice's denials only.
    let q = AuditQuery::all()
        .subject(&Principal::message(b"alice").describe())
        .surface("rmi")
        .newest(10);
    let reply = client
        .invoke(AUDIT_OBJECT, "query", vec![q.to_sexp()])
        .unwrap();
    let records = records_from_reply(&reply).unwrap();
    assert_eq!(records.len(), 5);
    assert_eq!(
        records.iter().filter(|r| r.event.decision == Decision::Deny).count(),
        1
    );

    // Export and offline-verify against the served head.  The log is
    // *live* — the audit server's own decisions about these reads keep
    // appending — so the export is a superset of the fetched head; the
    // auditor verifies the stream up to the head it trusts.
    let head_reply = client.invoke(AUDIT_OBJECT, "head", vec![]).unwrap();
    let head = snowflake_audit::head_from_reply(&head_reply).unwrap().unwrap();
    let entries_reply = client.invoke(AUDIT_OBJECT, "entries", vec![]).unwrap();
    let entries = snowflake_audit::entries_from_reply(&entries_reply).unwrap();
    assert!(entries.len() as u64 > head.0, "the export covers the head");
    let cut = entries
        .iter()
        .position(|e| matches!(e, snowflake_audit::LogEntry::Record(r) if r.seq > head.0))
        .unwrap_or(entries.len());
    verify_chain(&entries[..cut], log.public_key(), log.checkpoint_interval(), Some(&head))
        .unwrap();

    // The reads themselves were authorization decisions on the rmi
    // surface, now visible in the trail (receive-proof + cache grants on
    // the audit-log object).
    sink.flush();
    let audit_reads = log
        .query(&AuditQuery::all().object_prefix(AUDIT_OBJECT))
        .unwrap();
    assert!(
        audit_reads
            .iter()
            .any(|r| r.event.decision == Decision::Grant),
        "the audit read is itself audited"
    );

    drop(client);
    drop(server);
    serve_thread.join().unwrap();
}
