//! The tamper classes `verify_chain` must detect — truncation, record
//! reordering, in-place bit-flips, and stripped signatures — plus the
//! prefix property: every prefix of a valid entry stream verifies (the
//! chain rules hold at every point; only a trusted head decides
//! truncation).

use proptest::prelude::*;
use snowflake_audit::{
    strip_checkpoints, verify_chain, AuditLog, ChainError, Decision, DecisionEvent, LogEntry,
    MemoryBackend,
};
use snowflake_core::{Principal, Time};
use snowflake_crypto::{DetRng, Group, HashVal, KeyPair};
use std::sync::Arc;

const INTERVAL: u64 = 4;

fn build_log(records: u64) -> (Arc<AuditLog>, Vec<LogEntry>) {
    let mut kr = DetRng::new(b"chain-test-key");
    let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
    let mut sr = DetRng::new(b"chain-test-sign");
    let log = AuditLog::with_rng(
        key,
        Box::new(MemoryBackend::new(0)),
        INTERVAL,
        Box::new(move |b| sr.fill(b)),
    )
    .expect("fresh backend");
    for i in 0..records {
        let event = DecisionEvent::new(
            Time(i),
            if i % 3 == 0 { "http" } else { "rmi" },
            if i % 5 == 0 { Decision::Deny } else { Decision::Grant },
            &format!("/resource/{i}"),
            "GET",
            "test",
        )
        .with_subject(Principal::message(format!("client-{}", i % 4).as_bytes()))
        .with_certs(vec![HashVal::of(format!("cert-{i}").as_bytes())])
        .with_epoch(i / 7);
        log.append(event).1.unwrap();
    }
    let entries = log.entries().unwrap();
    (log, entries)
}

#[test]
fn intact_log_verifies_with_and_without_head() {
    let (log, entries) = build_log(19);
    let head = log.head().unwrap();
    let summary = verify_chain(&entries, log.public_key(), INTERVAL, Some(&head)).unwrap();
    assert_eq!(summary.records, 19);
    assert_eq!(summary.checkpoints, 4); // sealed at 3, 7, 11, 15
    let summary = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap();
    assert_eq!(summary.head, Some(head));
}

#[test]
fn truncation_detected_against_trusted_head() {
    let (log, entries) = build_log(19);
    let head = log.head().unwrap();
    // Drop the tail: the chain itself stays internally consistent…
    let truncated = &entries[..entries.len() - 3];
    verify_chain(truncated, log.public_key(), INTERVAL, None).unwrap();
    // …but not against the trusted head.
    let err = verify_chain(truncated, log.public_key(), INTERVAL, Some(&head)).unwrap_err();
    assert!(matches!(err, ChainError::Truncated { expected_seq: 18, .. }), "{err}");
    // An emptied log is the degenerate truncation.
    let err = verify_chain(&[], log.public_key(), INTERVAL, Some(&head)).unwrap_err();
    assert!(matches!(
        err,
        ChainError::Truncated {
            found_seq: None,
            ..
        }
    ));
}

#[test]
fn record_reorder_detected() {
    let (log, mut entries) = build_log(10);
    // Swap two records (positions 1 and 2 are both records: no checkpoint
    // lands between seq 1 and seq 2 with interval 4).
    entries.swap(1, 2);
    let err = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::BadSeq { expected: 1, found: 2 }), "{err}");

    // A deleted record is the same class: the stream skips a seq.
    let (log, mut entries) = build_log(10);
    entries.remove(1);
    let err = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::BadSeq { expected: 1, found: 2 }), "{err}");
}

#[test]
fn bit_flip_detected() {
    // Tamper with a record's *content* (detail string): its stored hash
    // no longer matches.
    let (log, mut entries) = build_log(10);
    if let LogEntry::Record(r) = &mut entries[5] {
        r.event.detail = "rewritten by attacker".into();
    } else {
        panic!("entry 5 is a record at interval 4 (checkpoint sits after seq 3)");
    }
    let err = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::BadHash { .. }), "{err}");

    // Tamper with the hash *and* contents consistently: the next link
    // breaks instead — rewriting history requires rewriting every
    // successor, and then the checkpoint signature fails.
    let (log, mut entries) = build_log(10);
    if let LogEntry::Record(r) = &mut entries[1] {
        r.event.detail = "rewritten".into();
        r.hash = r.recompute_hash();
    }
    let err = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::BrokenLink { seq: 2 }), "{err}");

    // Flip a bit in a *subject* — the speaks-for provenance is covered too.
    let (log, mut entries) = build_log(10);
    if let LogEntry::Record(r) = &mut entries[6] {
        r.event.subject = Some(Principal::message(b"someone-else"));
    }
    let err = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::BadHash { .. }), "{err}");
}

#[test]
fn missing_and_forged_signatures_detected() {
    // Strip every checkpoint: the first interval boundary notices.
    let (log, entries) = build_log(10);
    let stripped = strip_checkpoints(&entries);
    let err = verify_chain(&stripped, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::MissingCheckpoint { upto: 3 }), "{err}");

    // Remove just one mid-stream checkpoint (after seq 7).
    let (log, mut entries) = build_log(12);
    let idx = entries
        .iter()
        .position(|e| matches!(e, LogEntry::Checkpoint(c) if c.upto_seq == 7))
        .unwrap();
    entries.remove(idx);
    let err = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::MissingCheckpoint { upto: 7 }), "{err}");

    // A checkpoint re-signed by a different key is a forgery, not a seal.
    let (log, mut entries) = build_log(10);
    let mut ar = DetRng::new(b"attacker-key");
    let attacker = KeyPair::generate(Group::test512(), &mut |b| ar.fill(b));
    let idx = entries
        .iter()
        .position(|e| matches!(e, LogEntry::Checkpoint(_)))
        .unwrap();
    if let LogEntry::Checkpoint(c) = &entries[idx] {
        let mut sr = DetRng::new(b"attacker-sign");
        let forged = snowflake_audit::Checkpoint::issue(
            &attacker,
            c.upto_seq,
            c.head.clone(),
            &mut |b| sr.fill(b),
        );
        entries[idx] = LogEntry::Checkpoint(forged);
    }
    let err = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::BadSignature { upto: 3, .. }), "{err}");

    // A checkpoint claiming a head that is not the chain's is rejected
    // even with a valid signature over its own claim.
    let (log, mut entries) = build_log(10);
    let idx = entries
        .iter()
        .position(|e| matches!(e, LogEntry::Checkpoint(_)))
        .unwrap();
    if let LogEntry::Checkpoint(c) = &mut entries[idx] {
        c.head = HashVal::of(b"not-the-head");
    }
    let err = verify_chain(&entries, log.public_key(), INTERVAL, None).unwrap_err();
    assert!(matches!(err, ChainError::CheckpointMismatch { upto: 3 }), "{err}");
}

proptest! {
    /// Replaying any prefix of a valid entry stream verifies: an auditor
    /// who stopped reading early holds a verifiable (if shorter) history.
    #[test]
    fn any_prefix_of_a_valid_log_verifies(records in 0u64..40, cut in 0usize..60) {
        let (log, entries) = build_log(records);
        let cut = cut.min(entries.len());
        let prefix = &entries[..cut];
        let summary = verify_chain(prefix, log.public_key(), INTERVAL, None).unwrap();
        prop_assert!(summary.records <= records);
        // And the full stream still verifies against the live head.
        let head = log.head();
        let summary = verify_chain(&entries, log.public_key(), INTERVAL, head.as_ref()).unwrap();
        prop_assert_eq!(summary.records, records);
    }
}
