//! The chained, periodically signed audit log.

use crate::backend::AuditBackend;
use crate::chain::{verify_chain, ChainError, ChainSummary};
use crate::query::AuditQuery;
use crate::record::{genesis_hash, ChainedRecord, Checkpoint, LogEntry};
use snowflake_core::sync::LockExt;
use snowflake_core::DecisionEvent;
use snowflake_crypto::{HashVal, KeyPair, PublicKey};
use std::sync::{Arc, Mutex};

/// How often the chain head is signed when unspecified.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 64;

struct LogInner {
    next_seq: u64,
    prev: HashVal,
    backend: Box<dyn AuditBackend>,
}

/// An append-only log of [`ChainedRecord`]s with signed checkpoints.
///
/// Appends are serialized (the chain is inherently sequential); decision
/// points therefore never call the log directly — they hand events to the
/// bounded [`crate::AuditSink`], whose single drain worker owns the
/// append path.
pub struct AuditLog {
    inner: Mutex<LogInner>,
    signer: KeyPair,
    interval: u64,
    rng: Mutex<Box<dyn FnMut(&mut [u8]) + Send>>,
}

impl AuditLog {
    /// Opens a log over `backend`, signing every
    /// [`DEFAULT_CHECKPOINT_INTERVAL`] records with `signer` and OS
    /// entropy.  If the backend already holds entries (a reopened file),
    /// the log resumes from its head.
    ///
    /// # Errors
    ///
    /// Fails when the backend's existing stream cannot be read (an
    /// unreadable or corrupted file).  The failure must surface: silently
    /// rebasing to genesis would append a second seq-0 chain into the
    /// same durable stream, leaving it permanently unverifiable and
    /// indistinguishable from tampering.
    pub fn new(signer: KeyPair, backend: Box<dyn AuditBackend>) -> Result<Arc<AuditLog>, String> {
        Self::with_rng(
            signer,
            backend,
            DEFAULT_CHECKPOINT_INTERVAL,
            Box::new(snowflake_crypto::rand_bytes),
        )
    }

    /// Opens a log with an explicit checkpoint interval and entropy source
    /// (tests and benches inject deterministic ones).
    ///
    /// Resumption trusts the backend's tail; when the stored stream comes
    /// from an untrusted medium, run [`AuditLog::verify`] (or
    /// [`verify_chain`] offline) before serving queries from it.
    ///
    /// # Errors
    ///
    /// Fails when the backend's existing stream cannot be read (see
    /// [`AuditLog::new`]).
    pub fn with_rng(
        signer: KeyPair,
        mut backend: Box<dyn AuditBackend>,
        interval: u64,
        mut rng: Box<dyn FnMut(&mut [u8]) + Send>,
    ) -> Result<Arc<AuditLog>, String> {
        let interval = interval.max(1);
        let entries = backend
            .entries()
            .map_err(|e| format!("cannot resume audit log: {e}"))?;
        let (next_seq, prev) = entries
            .iter()
            .rev()
            .find_map(|e| match e {
                LogEntry::Record(r) => Some((r.seq + 1, r.hash.clone())),
                LogEntry::Checkpoint(_) => None,
            })
            .unwrap_or((0, genesis_hash()));
        // A crash (or write failure) between a boundary record and its
        // checkpoint leaves the stream unsealed; re-issue the missing
        // seal now, or the resumed log would fail verification forever —
        // a clean crash must stay distinguishable from checkpoint
        // stripping.
        if next_seq > 0 && next_seq % interval == 0 {
            let sealed = entries
                .iter()
                .rev()
                .any(|e| matches!(e, LogEntry::Checkpoint(c) if c.upto_seq == next_seq - 1));
            if !sealed {
                let checkpoint =
                    Checkpoint::issue(&signer, next_seq - 1, prev.clone(), &mut *rng);
                backend
                    .append(&LogEntry::Checkpoint(checkpoint))
                    .map_err(|e| format!("cannot re-seal resumed audit log: {e}"))?;
            }
        }
        Ok(Arc::new(AuditLog {
            inner: Mutex::new(LogInner {
                next_seq,
                prev,
                backend,
            }),
            signer,
            interval,
            rng: Mutex::new(rng),
        }))
    }

    /// The key whose signatures seal this log.
    pub fn public_key(&self) -> &PublicKey {
        &self.signer.public
    }

    /// Records per signed checkpoint.
    pub fn checkpoint_interval(&self) -> u64 {
        self.interval
    }

    /// Appends one decision, returning the chained record.
    ///
    /// Backend failures are reported but do not panic the caller: the
    /// record is still chained (so the in-memory head stays consistent)
    /// and the error is returned alongside it.
    pub fn append(&self, event: DecisionEvent) -> (ChainedRecord, Result<(), String>) {
        let mut inner = self.inner.plock();
        let record = ChainedRecord::chain(inner.next_seq, inner.prev.clone(), event);
        inner.next_seq += 1;
        inner.prev = record.hash.clone();
        let mut result = inner.backend.append(&LogEntry::Record(record.clone()));
        if inner.next_seq % self.interval == 0 {
            let checkpoint = {
                let mut rng = self.rng.plock();
                Checkpoint::issue(&self.signer, record.seq, record.hash.clone(), &mut **rng)
            };
            result = result.and(inner.backend.append(&LogEntry::Checkpoint(checkpoint)));
        }
        (record, result)
    }

    /// The live chain head: the last record's `(seq, hash)`.
    ///
    /// Comparing a captured stream against this (or against the latest
    /// [`Checkpoint`] held off-box) is what makes truncation detectable.
    pub fn head(&self) -> Option<(u64, HashVal)> {
        let inner = self.inner.plock();
        inner
            .next_seq
            .checked_sub(1)
            .map(|seq| (seq, inner.prev.clone()))
    }

    /// Records appended over this log's lifetime.
    pub fn records_appended(&self) -> u64 {
        self.inner.plock().next_seq
    }

    /// Exports the retained entry stream (for offline verification).
    ///
    /// The lock is held only to *capture* a stream snapshot (O(1) for
    /// file backends); reading and decoding happen outside it, so a large
    /// export can never stall the sink's drain worker into drops.
    pub fn entries(&self) -> Result<Vec<LogEntry>, String> {
        let snapshot = self.inner.plock().backend.snapshot()?;
        snapshot.load()
    }

    /// Answers a query from the backend.
    pub fn query(&self, q: &AuditQuery) -> Result<Vec<ChainedRecord>, String> {
        self.inner.plock().backend.query(q)
    }

    /// Entries the backend evicted to honor its retention bound.
    pub fn evicted(&self) -> u64 {
        self.inner.plock().backend.evicted()
    }

    /// Self-check: verifies the retained stream against this log's own
    /// key and live head.
    ///
    /// A backend that has evicted (a bounded memory ring) retains only a
    /// suffix, so the check switches to [`crate::verify_suffix`]: the
    /// window is proven internally consistent and current; provenance to
    /// genesis needs an unevicted backend.
    pub fn verify(&self) -> Result<ChainSummary, ChainError> {
        // Capture (snapshot + head + eviction count) under one lock hold
        // so they describe a single consistent instant; the full-stream
        // read and decode run with no lock held.
        let (snapshot, head, evicted) = {
            let inner = self.inner.plock();
            let snapshot = inner.backend.snapshot().map_err(ChainError::Backend)?;
            let head = inner.next_seq.checked_sub(1).map(|s| (s, inner.prev.clone()));
            (snapshot, head, inner.backend.evicted())
        };
        let entries = snapshot.load().map_err(ChainError::Backend)?;
        if evicted > 0 {
            crate::verify_suffix(&entries, &self.signer.public, self.interval, head.as_ref())
        } else {
            verify_chain(&entries, &self.signer.public, self.interval, head.as_ref())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FileBackend, MemoryBackend};
    use snowflake_core::{Decision, Time};
    use snowflake_crypto::{DetRng, Group};

    fn key(seed: &[u8]) -> KeyPair {
        let mut r = DetRng::new(seed);
        KeyPair::generate(Group::test512(), &mut |b| r.fill(b))
    }

    fn log_with(backend: Box<dyn AuditBackend>, interval: u64) -> Arc<AuditLog> {
        let mut r = DetRng::new(b"log-sign");
        AuditLog::with_rng(key(b"log-key"), backend, interval, Box::new(move |b| r.fill(b)))
            .expect("backend readable")
    }

    fn event(n: u64) -> DecisionEvent {
        DecisionEvent::new(Time(n), "rmi", Decision::Grant, "o", "m", "")
    }

    #[test]
    fn appends_chain_checkpoint_and_self_verify() {
        let log = log_with(Box::new(MemoryBackend::new(0)), 4);
        for i in 0..10 {
            let (r, io) = log.append(event(i));
            assert_eq!(r.seq, i);
            io.unwrap();
        }
        let entries = log.entries().unwrap();
        // 10 records + checkpoints after records 3 and 7.
        assert_eq!(entries.len(), 12);
        let summary = log.verify().unwrap();
        assert_eq!(summary.records, 10);
        assert_eq!(summary.checkpoints, 2);
        assert_eq!(log.head().unwrap().0, 9);
    }

    #[test]
    fn file_log_resumes_across_reopen() {
        let dir = std::env::temp_dir().join(format!("sf-audit-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = log_with(Box::new(FileBackend::open(&path).unwrap()), 4);
            for i in 0..6 {
                log.append(event(i)).1.unwrap();
            }
        }
        // Reopen: the log resumes at seq 6 and the combined stream still
        // verifies (including a checkpoint straddling the reopen).
        let log = log_with(Box::new(FileBackend::open(&path).unwrap()), 4);
        for i in 6..10 {
            let (r, io) = log.append(event(i));
            assert_eq!(r.seq, i);
            io.unwrap();
        }
        let summary = log.verify().unwrap();
        assert_eq!(summary.records, 10);
        assert_eq!(summary.checkpoints, 2);
        let _ = std::fs::remove_file(&path);
    }

    /// Regression: a crash between a boundary record and its checkpoint
    /// must not leave the resumed log permanently "tampered" — resumption
    /// re-issues the missing seal.
    #[test]
    fn resume_reseals_unsealed_boundary() {
        let dir = std::env::temp_dir().join(format!("sf-audit-reseal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reseal.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = log_with(Box::new(FileBackend::open(&path).unwrap()), 4);
            for i in 0..4 {
                log.append(event(i)).1.unwrap();
            }
        }
        // Simulate the crash: drop the trailing checkpoint line.
        let data = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = data.lines().collect();
        assert_eq!(lines.len(), 5, "4 records + 1 checkpoint");
        lines.pop();
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let log = log_with(Box::new(FileBackend::open(&path).unwrap()), 4);
        for i in 4..6 {
            log.append(event(i)).1.unwrap();
        }
        let summary = log.verify().unwrap();
        assert_eq!(summary.records, 6);
        assert_eq!(summary.checkpoints, 1, "the stripped seal was re-issued");
        let _ = std::fs::remove_file(&path);
    }

    /// Regression: a bounded ring that has evicted still self-verifies —
    /// the retained suffix is checked with a first-record anchor instead
    /// of being misreported as tampered-from-genesis.
    #[test]
    fn ring_backend_self_verifies_after_eviction() {
        let log = log_with(Box::new(MemoryBackend::new(6)), 4);
        for i in 0..20 {
            log.append(event(i)).1.unwrap();
        }
        assert!(log.evicted() > 0);
        let summary = log.verify().unwrap();
        assert!(summary.records <= 6);
        assert_eq!(summary.head, log.head());
        // And the suffix rules still bite: a tampered retained record
        // fails even in suffix mode.
        let entries = log.entries().unwrap();
        let mut tampered = entries.clone();
        let last_record = tampered
            .iter()
            .rposition(|e| matches!(e, crate::record::LogEntry::Record(_)))
            .unwrap();
        if let crate::record::LogEntry::Record(r) = &mut tampered[last_record] {
            r.event.detail = "edited".into();
        }
        assert!(crate::verify_suffix(
            &tampered,
            log.public_key(),
            log.checkpoint_interval(),
            None
        )
        .is_err());
    }

    #[test]
    fn empty_log_verifies_with_no_head() {
        let log = log_with(Box::new(MemoryBackend::new(0)), 4);
        assert!(log.head().is_none());
        let summary = log.verify().unwrap();
        assert_eq!(summary.records, 0);
        assert!(summary.head.is_none());
    }
}
