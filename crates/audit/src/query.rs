//! The audit query: by subject, object, surface, and time window.

use crate::record::ChainedRecord;
use snowflake_core::Time;
use snowflake_sexpr::{ParseError, Sexp};

/// A filter over decision records.
///
/// All set fields must match; an empty query matches everything.  Results
/// come back in sequence order; `limit` keeps the **newest** `n` matches
/// (an auditor's "last 50 denials for alice"), still presented oldest
/// first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditQuery {
    /// Match records whose subject's [`snowflake_core::Principal::describe`]
    /// equals this string exactly.
    pub subject: Option<String>,
    /// Match records whose object starts with this prefix.
    pub object_prefix: Option<String>,
    /// Match records from this surface.
    pub surface: Option<String>,
    /// Match records at or after this time.
    pub from: Option<Time>,
    /// Match records at or before this time.
    pub until: Option<Time>,
    /// Keep only the newest `n` matches.
    pub limit: Option<usize>,
}

impl AuditQuery {
    /// The match-everything query.
    pub fn all() -> AuditQuery {
        AuditQuery::default()
    }

    /// Builder: filters by subject description.
    pub fn subject(mut self, described: &str) -> AuditQuery {
        self.subject = Some(described.to_string());
        self
    }

    /// Builder: filters by object prefix.
    pub fn object_prefix(mut self, prefix: &str) -> AuditQuery {
        self.object_prefix = Some(prefix.to_string());
        self
    }

    /// Builder: filters by surface.
    pub fn surface(mut self, surface: &str) -> AuditQuery {
        self.surface = Some(surface.to_string());
        self
    }

    /// Builder: sets the inclusive time window.
    pub fn window(mut self, from: Time, until: Time) -> AuditQuery {
        self.from = Some(from);
        self.until = Some(until);
        self
    }

    /// Builder: keeps the newest `n` matches.
    pub fn newest(mut self, n: usize) -> AuditQuery {
        self.limit = Some(n);
        self
    }

    /// Does `record` satisfy every set filter (ignoring `limit`)?
    pub fn matches(&self, record: &ChainedRecord) -> bool {
        let ev = &record.event;
        if let Some(subject) = &self.subject {
            match &ev.subject {
                Some(p) if &p.describe() == subject => {}
                _ => return false,
            }
        }
        if let Some(prefix) = &self.object_prefix {
            if !ev.object.starts_with(prefix.as_str()) {
                return false;
            }
        }
        if let Some(surface) = &self.surface {
            if &ev.surface != surface {
                return false;
            }
        }
        if let Some(from) = self.from {
            if ev.time < from {
                return false;
            }
        }
        if let Some(until) = self.until {
            if ev.time > until {
                return false;
            }
        }
        true
    }

    /// Applies the query to a record stream: filter, then keep the newest
    /// `limit` (result stays oldest-first).
    pub fn apply<'a, I: IntoIterator<Item = &'a ChainedRecord>>(
        &self,
        records: I,
    ) -> Vec<ChainedRecord> {
        let mut out: Vec<ChainedRecord> = records
            .into_iter()
            .filter(|r| self.matches(r))
            .cloned()
            .collect();
        if let Some(n) = self.limit {
            if out.len() > n {
                out.drain(..out.len() - n);
            }
        }
        out
    }

    /// Serializes to `(audit-query (subject s)? (object o)? (surface s)?
    /// (from n)? (until n)? (newest n)?)` — every clause optional.
    pub fn to_sexp(&self) -> Sexp {
        let mut body = Vec::new();
        if let Some(s) = &self.subject {
            body.push(Sexp::tagged("subject", vec![Sexp::from(s.as_str())]));
        }
        if let Some(o) = &self.object_prefix {
            body.push(Sexp::tagged("object", vec![Sexp::from(o.as_str())]));
        }
        if let Some(s) = &self.surface {
            body.push(Sexp::tagged("surface", vec![Sexp::from(s.as_str())]));
        }
        if let Some(t) = self.from {
            body.push(Sexp::tagged("from", vec![Sexp::int(t.0)]));
        }
        if let Some(t) = self.until {
            body.push(Sexp::tagged("until", vec![Sexp::int(t.0)]));
        }
        if let Some(n) = self.limit {
            body.push(Sexp::tagged("newest", vec![Sexp::int(n as u64)]));
        }
        Sexp::tagged("audit-query", body)
    }

    /// Parses the form produced by [`AuditQuery::to_sexp`].
    ///
    /// A *present but malformed* clause is rejected, never ignored: a
    /// typo in a filter must not silently widen the answer to the whole
    /// log.
    pub fn from_sexp(e: &Sexp) -> Result<AuditQuery, ParseError> {
        let bad = |m: String| ParseError {
            offset: 0,
            message: m,
        };
        if e.tag_name() != Some("audit-query") {
            return Err(bad("expected (audit-query …)".into()));
        }
        let text = |name: &str| -> Result<Option<String>, ParseError> {
            match e.find(name) {
                None => Ok(None),
                Some(_) => e
                    .find_value(name)
                    .and_then(Sexp::as_str)
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| bad(format!("bad ({name} <text>) clause"))),
            }
        };
        let int = |name: &str| -> Result<Option<u64>, ParseError> {
            match e.find(name) {
                None => Ok(None),
                Some(_) => e
                    .find_value(name)
                    .and_then(Sexp::as_u64)
                    .map(Some)
                    .ok_or_else(|| bad(format!("bad ({name} <int>) clause"))),
            }
        };
        Ok(AuditQuery {
            subject: text("subject")?,
            object_prefix: text("object")?,
            surface: text("surface")?,
            from: int("from")?.map(Time),
            until: int("until")?.map(Time),
            limit: int("newest")?.map(|n| n as usize),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{genesis_hash, ChainedRecord};
    use snowflake_core::{Decision, DecisionEvent, Principal};

    fn records() -> Vec<ChainedRecord> {
        let mut prev = genesis_hash();
        let mut out = Vec::new();
        for i in 0..10u64 {
            let ev = DecisionEvent::new(
                Time(i),
                if i % 2 == 0 { "rmi" } else { "http" },
                Decision::Grant,
                &format!("/mail/{}", if i < 5 { "alice" } else { "bob" }),
                "GET",
                "",
            )
            .with_subject(Principal::message(if i % 3 == 0 { b"a" } else { b"b" }));
            let r = ChainedRecord::chain(i, prev.clone(), ev);
            prev = r.hash.clone();
            out.push(r);
        }
        out
    }

    #[test]
    fn filters_compose() {
        let rs = records();
        assert_eq!(AuditQuery::all().apply(&rs).len(), 10);
        assert_eq!(AuditQuery::all().surface("rmi").apply(&rs).len(), 5);
        assert_eq!(AuditQuery::all().object_prefix("/mail/alice").apply(&rs).len(), 5);
        assert_eq!(AuditQuery::all().window(Time(3), Time(6)).apply(&rs).len(), 4);
        let subject = Principal::message(b"a").describe();
        assert_eq!(AuditQuery::all().subject(&subject).apply(&rs).len(), 4);
        let combined = AuditQuery::all()
            .surface("rmi")
            .window(Time(0), Time(4))
            .apply(&rs);
        assert_eq!(combined.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn newest_keeps_tail_oldest_first() {
        let rs = records();
        let out = AuditQuery::all().newest(3).apply(&rs);
        assert_eq!(out.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn malformed_clauses_rejected_not_ignored() {
        // A typo in a filter must error, never silently widen the answer
        // to the whole log.
        for src in [
            "(audit-query (newest fifty))",
            "(audit-query (from tomorrow))",
            "(audit-query (subject (a b)))",
            "(not-a-query)",
        ] {
            let e = snowflake_sexpr::Sexp::parse(src.as_bytes()).unwrap();
            assert!(AuditQuery::from_sexp(&e).is_err(), "{src}");
        }
    }

    #[test]
    fn wire_roundtrip() {
        let q = AuditQuery::all()
            .subject("msg:a")
            .object_prefix("/mail/")
            .surface("gateway")
            .window(Time(5), Time(99))
            .newest(20);
        assert_eq!(AuditQuery::from_sexp(&q.to_sexp()).unwrap(), q);
        let empty = AuditQuery::all();
        assert_eq!(AuditQuery::from_sexp(&empty.to_sexp()).unwrap(), empty);
    }
}
