//! The bounded, never-blocking emission path.
//!
//! Decision points sit on request hot paths; the contract of
//! [`snowflake_core::AuditEmitter`] is fire-and-forget.  The sink is the
//! production implementation: a bounded queue (same
//! [`snowflake_runtime::BoundedQueue`] every serving path stands on, with
//! the same counted drops) in front of a single drain worker that owns
//! the log's sequential append path.  When the queue is full the event is
//! **dropped and counted** — an overloaded server loses audit *coverage*,
//! visibly, never throughput.

use crate::log::AuditLog;
use crate::record::LogEntry;
use snowflake_core::sync::LockExt;
use snowflake_core::{AuditEmitter, DecisionEvent};
use snowflake_runtime::BoundedQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default queue capacity between decision points and the drain worker.
pub const DEFAULT_SINK_CAPACITY: usize = 1024;

/// Counters describing a sink's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkStats {
    /// Events accepted into the queue.
    pub accepted: u64,
    /// Events refused because the queue was full — audit coverage lost to
    /// overload, measurable like every other shed in the runtime.
    pub dropped: u64,
    /// Events the drain worker has appended to the log.
    pub drained: u64,
    /// Drained events whose backend write failed (the record still
    /// chained in memory; the durable copy is missing it).  Non-zero
    /// means the persisted stream will show a seq gap — investigate the
    /// backend, do not read the gap as tampering.
    pub append_failures: u64,
}

/// A bounded, non-blocking [`AuditEmitter`] draining into an [`AuditLog`].
pub struct AuditSink {
    queue: Arc<BoundedQueue<DecisionEvent>>,
    log: Arc<AuditLog>,
    drained: Arc<AtomicU64>,
    append_failures: Arc<AtomicU64>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl AuditSink {
    /// Starts a sink with [`DEFAULT_SINK_CAPACITY`].
    pub fn start(log: Arc<AuditLog>) -> Arc<AuditSink> {
        Self::with_capacity(log, DEFAULT_SINK_CAPACITY)
    }

    /// Starts a sink with an explicit queue capacity.
    ///
    /// The drain worker is a dedicated runtime thread
    /// ([`snowflake_runtime::spawn_thread`]) parked in `pop()` — the
    /// sanctioned shape for a long-lived blocking loop; request handling
    /// never runs here.
    pub fn with_capacity(log: Arc<AuditLog>, capacity: usize) -> Arc<AuditSink> {
        let queue = Arc::new(BoundedQueue::new(capacity));
        let drained = Arc::new(AtomicU64::new(0));
        let append_failures = Arc::new(AtomicU64::new(0));
        let worker = {
            let queue = Arc::clone(&queue);
            let log = Arc::clone(&log);
            let drained = Arc::clone(&drained);
            let append_failures = Arc::clone(&append_failures);
            snowflake_runtime::spawn_thread("audit-sink", move || {
                while let Some(event) = queue.pop() {
                    // A backend write error must not kill the drain (the
                    // chain head stays consistent and later appends keep
                    // recording) — but it must be counted, or a full
                    // disk would silently eat the durable trail.
                    let (_, io) = log.append(event);
                    if io.is_err() {
                        append_failures.fetch_add(1, Ordering::SeqCst);
                    }
                    drained.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        Arc::new(AuditSink {
            queue,
            log,
            drained,
            append_failures,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// The log this sink drains into.
    pub fn log(&self) -> &Arc<AuditLog> {
        &self.log
    }

    /// Current counters.
    pub fn stats(&self) -> SinkStats {
        SinkStats {
            accepted: self.queue.pushed(),
            dropped: self.queue.dropped(),
            drained: self.drained.load(Ordering::SeqCst),
            append_failures: self.append_failures.load(Ordering::SeqCst),
        }
    }

    /// Events currently queued ahead of the drain worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Registers a scrape-time callback exposing [`SinkStats`] (plus the
    /// live queue depth) under `sf_audit_*` — the same atomics
    /// [`stats`](Self::stats) reads (collector id `"audit-sink"`).
    pub fn register_metrics(self: &Arc<Self>, registry: &snowflake_metrics::Registry) {
        use snowflake_metrics::Sample;
        registry.set_help(
            "sf_audit_dropped_total",
            "Audit events refused because the sink queue was full (coverage lost to overload)",
        );
        let sink = Arc::downgrade(self);
        registry.register_collector(
            "audit-sink",
            Arc::new(move |out: &mut Vec<Sample>| {
                let Some(sink) = sink.upgrade() else { return };
                let s = sink.stats();
                out.push(Sample::gauge("sf_audit_queue_depth", &[], sink.queue_depth() as f64));
                out.push(Sample::counter("sf_audit_accepted_total", &[], s.accepted));
                out.push(Sample::counter("sf_audit_dropped_total", &[], s.dropped));
                out.push(Sample::counter("sf_audit_drained_total", &[], s.drained));
                out.push(Sample::counter(
                    "sf_audit_append_failures_total",
                    &[],
                    s.append_failures,
                ));
            }),
        );
    }

    /// Waits until every event accepted *before this call* has been
    /// appended to the log (tests and orderly reporting; the hot path
    /// never calls this).
    pub fn flush(&self) {
        let target = self.queue.pushed();
        while self.drained.load(Ordering::SeqCst) < target {
            std::thread::yield_now();
        }
    }

    /// Stops the sink: no new events are accepted, everything already
    /// accepted is drained into the log (flush-on-drain), and the worker
    /// is joined.  Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        if let Some(worker) = self.worker.plock().take() {
            let _ = worker.join();
        }
    }
}

impl AuditEmitter for AuditSink {
    fn emit(&self, event: DecisionEvent) {
        // Never blocks: a full queue counts a drop and the caller moves on.
        let _ = self.queue.try_push(event);
    }
}

impl Drop for AuditSink {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drops checkpoints from an entry stream (test helper for the
/// missing-signature tamper class; lives here so integration tests and
/// benches share it).
pub fn strip_checkpoints(entries: &[LogEntry]) -> Vec<LogEntry> {
    entries
        .iter()
        .filter(|e| matches!(e, LogEntry::Record(_)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use snowflake_core::{Decision, Time};
    use snowflake_crypto::{DetRng, Group, KeyPair};

    fn log() -> Arc<AuditLog> {
        let mut kr = DetRng::new(b"sink-key");
        let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
        let mut sr = DetRng::new(b"sink-sign");
        AuditLog::with_rng(key, Box::new(MemoryBackend::new(0)), 8, Box::new(move |b| sr.fill(b)))
            .expect("fresh backend")
    }

    fn event(n: u64) -> DecisionEvent {
        DecisionEvent::new(Time(n), "http", Decision::Grant, "/x", "GET", "")
    }

    #[test]
    fn emits_drain_into_the_log_in_order() {
        let sink = AuditSink::with_capacity(log(), 64);
        for i in 0..32 {
            sink.emit(event(i));
        }
        sink.flush();
        let stats = sink.stats();
        assert_eq!(stats.accepted, 32);
        assert_eq!(stats.drained, 32);
        assert_eq!(stats.dropped, 0);
        assert_eq!(sink.log().records_appended(), 32);
        sink.log().verify().unwrap();
    }

    #[test]
    fn shutdown_flushes_accepted_events() {
        let sink = AuditSink::with_capacity(log(), 64);
        for i in 0..16 {
            sink.emit(event(i));
        }
        sink.shutdown();
        assert_eq!(sink.log().records_appended(), 16);
        // Post-shutdown emits are refused, not queued.
        sink.emit(event(99));
        assert_eq!(sink.log().records_appended(), 16);
        // Shutdown again is a no-op.
        sink.shutdown();
    }

    #[test]
    fn overflow_is_dropped_and_counted_never_blocking() {
        // Capacity 1 with a slow consumer: most emits drop, none block.
        let sink = AuditSink::with_capacity(log(), 1);
        let start = std::time::Instant::now();
        for i in 0..10_000 {
            sink.emit(event(i));
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "emit must never block"
        );
        sink.flush();
        let stats = sink.stats();
        assert_eq!(stats.accepted + stats.dropped, 10_000);
        assert!(stats.dropped > 0, "capacity 1 must have dropped under this load");
        assert_eq!(stats.drained, stats.accepted);
        // What was recorded still verifies.
        sink.log().verify().unwrap();
    }
}
