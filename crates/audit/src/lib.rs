//! Tamper-evident auditing of authorization decisions.
//!
//! The paper's end-to-end argument — the resource server sees and verifies
//! the *entire* delegation chain behind every request — is what makes
//! decisions reviewable after the fact: not just *that* a request was
//! granted, but exactly *which* certificates justified it.  This crate
//! records that review trail and makes it trustworthy:
//!
//! * Every grant, deny, shed, and revocation becomes a
//!   [`snowflake_core::DecisionEvent`] carrying subject, object, action,
//!   verdict, the proof's certificate provenance
//!   ([`snowflake_core::Proof::cert_hashes`]), and the decider's
//!   revocation epoch.
//! * The [`AuditLog`] hash-chains events into [`ChainedRecord`]s and signs
//!   the chain head every [`AuditLog::checkpoint_interval`] records
//!   ([`Checkpoint`]) — in-place edits, reordering, and (against a trusted
//!   head) truncation are all detectable by the offline [`verify_chain`].
//! * The [`AuditSink`] is the emission path: a bounded queue with counted
//!   drops in front of one drain worker, so the request hot path never
//!   blocks on auditing (the same discipline as every other queue in the
//!   serving runtime).
//! * Backends: an in-memory ring ([`MemoryBackend`]), an append-only
//!   S-expression file ([`FileBackend`]), and a relational table over the
//!   email-database substrate ([`DbBackend`]) whose query API is an
//!   indexed `select … ORDER BY seq DESC LIMIT n`.
//! * The [`AuditService`] serves queries over RMI — itself a protected
//!   object, so reads of the trail appear in the trail.
//!
//! The decision points themselves live in the server crates (HTTP servlet
//! and accept loop, RMI dispatch, the gateway and applications, the
//! revocation bus); they emit through the narrow
//! [`snowflake_core::AuditEmitter`] trait and never see this crate.

#![deny(missing_docs)]

mod backend;
mod chain;
mod log;
mod query;
mod record;
mod sink;
mod service;

pub use backend::{
    audit_schema, AuditBackend, DbBackend, EntrySnapshot, FileBackend, MemoryBackend,
};
pub use chain::{verify_chain, verify_suffix, ChainError, ChainSummary};
pub use log::{AuditLog, DEFAULT_CHECKPOINT_INTERVAL};
pub use query::AuditQuery;
pub use record::{genesis_hash, ChainedRecord, Checkpoint, LogEntry};
pub use service::{
    entries_from_reply, head_from_reply, records_from_reply, AuditService, AUDIT_OBJECT,
};
pub use sink::{strip_checkpoints, AuditSink, SinkStats, DEFAULT_SINK_CAPACITY};

// Re-exported so audit consumers need not name snowflake-core for the
// event types they construct.
pub use snowflake_core::{AuditEmitter, Decision, DecisionEvent};
