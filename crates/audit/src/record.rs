//! Chained records, signed checkpoints, and the log-entry stream.
//!
//! A captured log is a sequence of [`LogEntry`]s: every decision becomes a
//! [`ChainedRecord`] whose hash covers its sequence number, the previous
//! record's hash, and the decision itself; every
//! [checkpoint interval](crate::AuditLog::checkpoint_interval) records the
//! log also emits a [`Checkpoint`] — the chain head signed by the log's
//! key.  The chain makes reordering and in-place edits detectable from the
//! entries alone; the signatures pin the chain to a key, so a tamperer
//! would have to forge a signature to re-seal an altered history; and a
//! trusted head (the live log's, or the latest checkpoint's) makes
//! truncation detectable too.

use snowflake_core::DecisionEvent;
use snowflake_crypto::{HashVal, KeyPair, PublicKey, Signature};
use snowflake_sexpr::{ParseError, Sexp};

/// The chain value before the first record (`prev` of record 0).
pub fn genesis_hash() -> HashVal {
    HashVal::of(b"snowflake-audit-genesis")
}

/// One decision, chained to its predecessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainedRecord {
    /// Position in the log (0-based, contiguous).
    pub seq: u64,
    /// The decision recorded.
    pub event: DecisionEvent,
    /// The previous record's hash ([`genesis_hash`] for record 0).
    pub prev: HashVal,
    /// `H(seq ‖ prev ‖ event)` — what the next record chains to.
    pub hash: HashVal,
}

impl ChainedRecord {
    fn hashed_form(seq: u64, prev: &HashVal, event: &DecisionEvent) -> Sexp {
        Sexp::tagged(
            "audit-record",
            vec![
                Sexp::tagged("seq", vec![Sexp::int(seq)]),
                Sexp::tagged("prev", vec![prev.to_sexp()]),
                event.to_sexp(),
            ],
        )
    }

    /// Chains `event` onto the record whose hash is `prev`.
    pub fn chain(seq: u64, prev: HashVal, event: DecisionEvent) -> ChainedRecord {
        let hash = HashVal::of_sexp(&Self::hashed_form(seq, &prev, &event));
        ChainedRecord {
            seq,
            event,
            prev,
            hash,
        }
    }

    /// Recomputes the hash from the carried fields (what verification
    /// compares against the stored [`ChainedRecord::hash`]).
    pub fn recompute_hash(&self) -> HashVal {
        HashVal::of_sexp(&Self::hashed_form(self.seq, &self.prev, &self.event))
    }

    /// Serializes to the hashed form plus the stored hash (so readers
    /// can follow the chain without recomputing).
    pub fn to_sexp(&self) -> Sexp {
        let Sexp::List(mut items) = Self::hashed_form(self.seq, &self.prev, &self.event) else {
            unreachable!("hashed form is a list");
        };
        items.push(Sexp::tagged("hash", vec![self.hash.to_sexp()]));
        Sexp::List(items)
    }

    /// Parses the form produced by [`ChainedRecord::to_sexp`].
    ///
    /// The stored hash is **not** trusted; [`crate::verify_chain`]
    /// recomputes it.
    pub fn from_sexp(e: &Sexp) -> Result<ChainedRecord, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("audit-record") {
            return Err(bad("expected (audit-record …)"));
        }
        let seq = e
            .find_value("seq")
            .and_then(Sexp::as_u64)
            .ok_or_else(|| bad("seq"))?;
        let prev = HashVal::from_sexp(e.find_value("prev").ok_or_else(|| bad("prev"))?)?;
        let event =
            DecisionEvent::from_sexp(e.find("decision").ok_or_else(|| bad("decision"))?)?;
        let hash = HashVal::from_sexp(e.find_value("hash").ok_or_else(|| bad("hash"))?)?;
        Ok(ChainedRecord {
            seq,
            event,
            prev,
            hash,
        })
    }
}

/// The chain head at one moment, signed by the log's key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The sequence number of the last record the signature covers.
    pub upto_seq: u64,
    /// That record's hash — and, through the chain, every record before it.
    pub head: HashVal,
    /// The signing key (checked against the expected log key on verify).
    pub signer: PublicKey,
    /// Schnorr signature over the to-be-signed form.
    pub signature: Signature,
}

impl Checkpoint {
    fn tbs(upto_seq: u64, head: &HashVal) -> Sexp {
        Sexp::tagged(
            "audit-checkpoint-tbs",
            vec![
                Sexp::tagged("upto", vec![Sexp::int(upto_seq)]),
                Sexp::tagged("head", vec![head.to_sexp()]),
            ],
        )
    }

    /// Signs the chain head `(upto_seq, head)` with `key`.
    pub fn issue(
        key: &KeyPair,
        upto_seq: u64,
        head: HashVal,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Checkpoint {
        let signature = key.sign(&Self::tbs(upto_seq, &head).canonical(), rand_bytes);
        Checkpoint {
            upto_seq,
            head,
            signer: key.public.clone(),
            signature,
        }
    }

    /// Checks the signature and that it was made by `expected_signer`.
    pub fn check(&self, expected_signer: &PublicKey) -> Result<(), String> {
        self.check_signer(expected_signer)?;
        if !self.signer.verify(&self.signed_bytes(), &self.signature) {
            return Err("checkpoint signature verification failed".into());
        }
        Ok(())
    }

    /// The identity half of [`Checkpoint::check`]: the signer must be the
    /// expected log key.  Kept separate so chain verification can run all
    /// identity checks in stream order and then verify every checkpoint
    /// signature as one batch.
    pub fn check_signer(&self, expected_signer: &PublicKey) -> Result<(), String> {
        if &self.signer != expected_signer {
            return Err("checkpoint signed by the wrong key".into());
        }
        Ok(())
    }

    /// The canonical to-be-signed bytes [`Checkpoint::signature`] covers.
    pub fn signed_bytes(&self) -> Vec<u8> {
        Self::tbs(self.upto_seq, &self.head).canonical()
    }

    /// Serializes to `(audit-checkpoint (upto n) (head …) <key> <sig>)`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "audit-checkpoint",
            vec![
                Sexp::tagged("upto", vec![Sexp::int(self.upto_seq)]),
                Sexp::tagged("head", vec![self.head.to_sexp()]),
                self.signer.to_sexp(),
                self.signature.to_sexp(),
            ],
        )
    }

    /// Parses the form produced by [`Checkpoint::to_sexp`].  Parsing does
    /// not verify; call [`Checkpoint::check`].
    pub fn from_sexp(e: &Sexp) -> Result<Checkpoint, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("audit-checkpoint") {
            return Err(bad("expected (audit-checkpoint …)"));
        }
        let body = e.tag_body().unwrap_or(&[]);
        if body.len() != 4 {
            return Err(bad("audit-checkpoint takes upto + head + key + sig"));
        }
        let upto_seq = e
            .find_value("upto")
            .and_then(Sexp::as_u64)
            .ok_or_else(|| bad("upto"))?;
        let head = HashVal::from_sexp(e.find_value("head").ok_or_else(|| bad("head"))?)?;
        let signer = PublicKey::from_sexp(&body[2])?;
        let signature = Signature::from_sexp(&body[3])?;
        Ok(Checkpoint {
            upto_seq,
            head,
            signer,
            signature,
        })
    }
}

/// One entry in a captured log: a record or a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// A chained decision record.
    Record(ChainedRecord),
    /// A signed chain head.
    Checkpoint(Checkpoint),
}

impl LogEntry {
    /// Serializes the entry.
    pub fn to_sexp(&self) -> Sexp {
        match self {
            LogEntry::Record(r) => r.to_sexp(),
            LogEntry::Checkpoint(c) => c.to_sexp(),
        }
    }

    /// Parses either entry form.
    pub fn from_sexp(e: &Sexp) -> Result<LogEntry, ParseError> {
        match e.tag_name() {
            Some("audit-record") => Ok(LogEntry::Record(ChainedRecord::from_sexp(e)?)),
            Some("audit-checkpoint") => Ok(LogEntry::Checkpoint(Checkpoint::from_sexp(e)?)),
            _ => Err(ParseError {
                offset: 0,
                message: "unknown audit log entry form".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_core::{Decision, Time};
    use snowflake_crypto::{DetRng, Group};

    fn event(n: u64) -> DecisionEvent {
        DecisionEvent::new(Time(n), "rmi", Decision::Grant, "obj", "m", "d")
    }

    #[test]
    fn record_roundtrip_and_hash() {
        let r = ChainedRecord::chain(3, HashVal::of(b"prev"), event(9));
        assert_eq!(r.recompute_hash(), r.hash);
        let back = ChainedRecord::from_sexp(&r.to_sexp()).unwrap();
        assert_eq!(back, r);
        // Any field change breaks the hash.
        let mut tampered = r.clone();
        tampered.event.detail = "forged".into();
        assert_ne!(tampered.recompute_hash(), tampered.hash);
    }

    #[test]
    fn checkpoint_roundtrip_and_check() {
        let mut kr = DetRng::new(b"ckpt-key");
        let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
        let mut sr = DetRng::new(b"ckpt-sign");
        let c = Checkpoint::issue(&key, 7, HashVal::of(b"head"), &mut |b| sr.fill(b));
        c.check(&key.public).unwrap();
        let back = Checkpoint::from_sexp(&c.to_sexp()).unwrap();
        assert_eq!(back, c);
        // Wrong expected key and tampered head both fail.
        let mut or = DetRng::new(b"other-key");
        let other = KeyPair::generate(Group::test512(), &mut |b| or.fill(b));
        assert!(c.check(&other.public).is_err());
        let mut forged = c.clone();
        forged.head = HashVal::of(b"other-head");
        assert!(forged.check(&key.public).is_err());
    }

    #[test]
    fn entry_stream_roundtrip() {
        let mut kr = DetRng::new(b"entry-key");
        let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
        let r = ChainedRecord::chain(0, genesis_hash(), event(1));
        let mut sr = DetRng::new(b"entry-sign");
        let c = Checkpoint::issue(&key, 0, r.hash.clone(), &mut |b| sr.fill(b));
        for entry in [LogEntry::Record(r), LogEntry::Checkpoint(c)] {
            let framed = entry.to_sexp().canonical();
            let back =
                LogEntry::from_sexp(&snowflake_sexpr::Sexp::parse(&framed).unwrap()).unwrap();
            assert_eq!(back, entry);
        }
        assert!(LogEntry::from_sexp(&Sexp::parse(b"(mystery)").unwrap()).is_err());
    }
}
