//! The audit log served over RMI.
//!
//! Audit data is itself a protected resource: the service registers as a
//! normal (authorized) remote object, so reading the trail requires a
//! speaks-for proof for the auditor principal — and those reads are
//! authorization decisions like any other, logged by the RMI layer into
//! the very trail being read.

use crate::chain::ChainSummary;
use crate::log::AuditLog;
use crate::query::AuditQuery;
use crate::record::{ChainedRecord, LogEntry};
use snowflake_core::Principal;
use snowflake_crypto::HashVal;
use snowflake_rmi::{CallerInfo, Invocation, RemoteObject, RmiFault};
use snowflake_sexpr::{ParseError, Sexp};
use std::sync::Arc;

/// The registry name the audit service is bound to.
pub const AUDIT_OBJECT: &str = "audit-log";

/// [`AuditLog`] as a remote object.
///
/// Methods:
///
/// * `query <audit-query>` → `(records <audit-record>…)`
/// * `head` → `(head (seq n) (hash …))`, or `(head)` for an empty log
/// * `entries` → `(entries <entry>…)` — the full retained stream, for
///   off-box verification
/// * `verify` → `(verified (records n) (checkpoints n))` — on-box
///   self-check against the live head
pub struct AuditService {
    log: Arc<AuditLog>,
    issuer: Principal,
}

impl AuditService {
    /// Serves `log`, controlled by `issuer` (the auditor's principal).
    pub fn new(log: Arc<AuditLog>, issuer: Principal) -> Arc<AuditService> {
        Arc::new(AuditService { log, issuer })
    }
}

impl RemoteObject for AuditService {
    fn issuer(&self) -> Principal {
        self.issuer.clone()
    }

    fn invoke(&self, invocation: &Invocation, _caller: &CallerInfo) -> Result<Sexp, RmiFault> {
        match invocation.method.as_str() {
            "query" => {
                let q = match invocation.args.first() {
                    Some(arg) => AuditQuery::from_sexp(arg)
                        .map_err(|e| RmiFault::Application(format!("bad query: {e}")))?,
                    None => AuditQuery::all(),
                };
                let records = self
                    .log
                    .query(&q)
                    .map_err(|e| RmiFault::Application(format!("query failed: {e}")))?;
                Ok(Sexp::tagged(
                    "records",
                    records.iter().map(ChainedRecord::to_sexp).collect(),
                ))
            }
            "head" => Ok(match self.log.head() {
                Some((seq, hash)) => Sexp::tagged(
                    "head",
                    vec![
                        Sexp::tagged("seq", vec![Sexp::int(seq)]),
                        Sexp::tagged("hash", vec![hash.to_sexp()]),
                    ],
                ),
                None => Sexp::tagged("head", vec![]),
            }),
            "entries" => {
                let entries = self
                    .log
                    .entries()
                    .map_err(|e| RmiFault::Application(format!("export failed: {e}")))?;
                Ok(Sexp::tagged(
                    "entries",
                    entries.iter().map(LogEntry::to_sexp).collect(),
                ))
            }
            "verify" => {
                let ChainSummary {
                    records,
                    checkpoints,
                    ..
                } = self
                    .log
                    .verify()
                    .map_err(|e| RmiFault::Application(format!("verification failed: {e}")))?;
                Ok(Sexp::tagged(
                    "verified",
                    vec![
                        Sexp::tagged("records", vec![Sexp::int(records)]),
                        Sexp::tagged("checkpoints", vec![Sexp::int(checkpoints)]),
                    ],
                ))
            }
            other => Err(RmiFault::NoSuchMethod(other.into())),
        }
    }
}

/// Decodes a `query` reply.
pub fn records_from_reply(e: &Sexp) -> Result<Vec<ChainedRecord>, ParseError> {
    if e.tag_name() != Some("records") {
        return Err(ParseError {
            offset: 0,
            message: "expected (records …)".into(),
        });
    }
    e.tag_body()
        .unwrap_or(&[])
        .iter()
        .map(ChainedRecord::from_sexp)
        .collect()
}

/// Decodes an `entries` reply.
pub fn entries_from_reply(e: &Sexp) -> Result<Vec<LogEntry>, ParseError> {
    if e.tag_name() != Some("entries") {
        return Err(ParseError {
            offset: 0,
            message: "expected (entries …)".into(),
        });
    }
    e.tag_body()
        .unwrap_or(&[])
        .iter()
        .map(LogEntry::from_sexp)
        .collect()
}

/// Decodes a `head` reply (`None` for an empty log).
pub fn head_from_reply(e: &Sexp) -> Result<Option<(u64, HashVal)>, ParseError> {
    let bad = |m: &str| ParseError {
        offset: 0,
        message: m.into(),
    };
    if e.tag_name() != Some("head") {
        return Err(bad("expected (head …)"));
    }
    if e.tag_body().is_some_and(<[Sexp]>::is_empty) {
        return Ok(None);
    }
    let seq = e.find_value("seq").and_then(Sexp::as_u64).ok_or_else(|| bad("seq"))?;
    let hash = HashVal::from_sexp(e.find_value("hash").ok_or_else(|| bad("hash"))?)?;
    Ok(Some((seq, hash)))
}
