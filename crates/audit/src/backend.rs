//! Storage backends for the audit log.
//!
//! The log core is backend-agnostic: a backend persists the entry stream
//! and answers queries.  Three are provided:
//!
//! * [`MemoryBackend`] — a bounded in-memory ring for live operations
//!   (tail queries, tests, benches).  Once the ring evicts, the retained
//!   stream is a *suffix* and can no longer be chain-verified from
//!   genesis; eviction is counted so that is visible.
//! * [`FileBackend`] — an append-only file of transport-encoded
//!   S-expressions, one entry per line: the durable form an auditor
//!   copies off the box and verifies offline with
//!   [`crate::verify_chain`].
//! * [`DbBackend`] — an indexed relational table over the same
//!   `snowflake-reldb` substrate the email application uses, where the
//!   query API becomes an indexed `select … ORDER BY seq DESC LIMIT n`.

use crate::query::AuditQuery;
use crate::record::{ChainedRecord, LogEntry};
use snowflake_reldb::{
    ColumnType, Database, Predicate, Schema, SelectQuery, SortOrder, Value,
};
use snowflake_sexpr::Sexp;
use std::collections::VecDeque;
use std::io::Write;

/// Where an [`crate::AuditLog`] keeps its entries.
pub trait AuditBackend: Send {
    /// Persists one entry at the end of the stream.
    fn append(&mut self, entry: &LogEntry) -> Result<(), String>;

    /// The retained entry stream, oldest first (for verification, export,
    /// and log resumption).
    fn entries(&self) -> Result<Vec<LogEntry>, String>;

    /// Answers a query over the retained records.  The default filters
    /// [`AuditBackend::entries`]; indexed backends override it.
    fn query(&self, q: &AuditQuery) -> Result<Vec<ChainedRecord>, String> {
        let records: Vec<ChainedRecord> = self
            .entries()?
            .into_iter()
            .filter_map(|e| match e {
                LogEntry::Record(r) => Some(r),
                LogEntry::Checkpoint(_) => None,
            })
            .collect();
        Ok(q.apply(&records))
    }

    /// Entries evicted to honor a retention bound (0 for unbounded
    /// backends).  A non-zero count means [`AuditBackend::entries`] is a
    /// suffix of the true stream.
    fn evicted(&self) -> u64 {
        0
    }
}

/// A bounded in-memory ring of the newest entries.
pub struct MemoryBackend {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    evicted: u64,
}

impl MemoryBackend {
    /// A ring retaining at most `capacity` entries (`0` = unbounded).
    pub fn new(capacity: usize) -> MemoryBackend {
        MemoryBackend {
            entries: VecDeque::new(),
            capacity,
            evicted: 0,
        }
    }
}

impl AuditBackend for MemoryBackend {
    fn append(&mut self, entry: &LogEntry) -> Result<(), String> {
        self.entries.push_back(entry.clone());
        while self.capacity > 0 && self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        Ok(())
    }

    fn entries(&self) -> Result<Vec<LogEntry>, String> {
        Ok(self.entries.iter().cloned().collect())
    }

    fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// An append-only file of transport-encoded entries, one per line.
pub struct FileBackend {
    path: std::path::PathBuf,
    file: std::fs::File,
}

impl FileBackend {
    /// Opens (creating if absent) an append-only log file.  Existing
    /// entries are preserved; the owning log resumes from them.
    pub fn open(path: impl Into<std::path::PathBuf>) -> Result<FileBackend, String> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        Ok(FileBackend { path, file })
    }

    /// The file this backend appends to.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl AuditBackend for FileBackend {
    fn append(&mut self, entry: &LogEntry) -> Result<(), String> {
        let mut line = entry.to_sexp().transport().into_bytes();
        line.push(b'\n');
        self.file
            .write_all(&line)
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("append {}: {e}", self.path.display()))
    }

    fn entries(&self) -> Result<Vec<LogEntry>, String> {
        let data = std::fs::read_to_string(&self.path)
            .map_err(|e| format!("read {}: {e}", self.path.display()))?;
        data.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|line| {
                Sexp::parse(line.as_bytes())
                    .map_err(|e| format!("bad entry line: {e}"))
                    .and_then(|s| {
                        LogEntry::from_sexp(&s).map_err(|e| format!("bad entry: {e}"))
                    })
            })
            .collect()
    }
}

/// The audit table schema shared by [`DbBackend`] and external importers.
pub fn audit_schema(db: &mut Database) {
    db.create_table(
        "audit_records",
        Schema::new(&[
            ("seq", ColumnType::Int),
            ("time", ColumnType::Int),
            ("surface", ColumnType::Text),
            ("subject", ColumnType::Text),
            ("object", ColumnType::Text),
            ("action", ColumnType::Text),
            ("verdict", ColumnType::Text),
            ("epoch", ColumnType::Int),
            ("entry", ColumnType::Bytes),
        ]),
    );
    db.table_mut("audit_records")
        .expect("just created")
        .create_index("subject")
        .expect("column exists");
    db.create_table(
        "audit_checkpoints",
        Schema::new(&[("upto", ColumnType::Int), ("entry", ColumnType::Bytes)]),
    );
}

/// Records in a relational table (the email-database substrate), with a
/// subject index and `ORDER BY seq` / `LIMIT` queries.
pub struct DbBackend {
    db: Database,
}

impl DbBackend {
    /// An empty relational backend.
    pub fn new() -> DbBackend {
        let mut db = Database::new();
        audit_schema(&mut db);
        DbBackend { db }
    }

    /// The underlying database (read access for reporting tools).
    pub fn database(&self) -> &Database {
        &self.db
    }

    fn decode_entry_rows(rows: Vec<Vec<Value>>) -> Result<Vec<LogEntry>, String> {
        rows.into_iter()
            .map(|row| match row.last() {
                Some(Value::Bytes(bytes)) => Sexp::parse(bytes)
                    .map_err(|e| format!("bad stored entry: {e}"))
                    .and_then(|s| {
                        LogEntry::from_sexp(&s).map_err(|e| format!("bad stored entry: {e}"))
                    }),
                _ => Err("entry column missing".into()),
            })
            .collect()
    }
}

impl Default for DbBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl AuditBackend for DbBackend {
    fn append(&mut self, entry: &LogEntry) -> Result<(), String> {
        let encoded = Value::bytes(entry.to_sexp().canonical());
        match entry {
            LogEntry::Record(r) => {
                let ev = &r.event;
                self.db
                    .table_mut("audit_records")
                    .and_then(|t| {
                        t.insert(vec![
                            Value::Int(r.seq as i64),
                            Value::Int(ev.time.0 as i64),
                            Value::text(ev.surface.as_str()),
                            // Subject-less events store NULL, not "": an
                            // equality predicate must never match them,
                            // exactly as `AuditQuery::matches` never does.
                            match &ev.subject {
                                Some(p) => Value::text(p.describe()),
                                None => Value::Null,
                            },
                            Value::text(ev.object.as_str()),
                            Value::text(ev.action.as_str()),
                            Value::text(ev.decision.name()),
                            Value::Int(ev.revocation_epoch as i64),
                            encoded,
                        ])
                    })
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            LogEntry::Checkpoint(c) => self
                .db
                .table_mut("audit_checkpoints")
                .and_then(|t| t.insert(vec![Value::Int(c.upto_seq as i64), encoded]))
                .map(|_| ())
                .map_err(|e| e.to_string()),
        }
    }

    fn entries(&self) -> Result<Vec<LogEntry>, String> {
        let record_q = SelectQuery::all("audit_records", Predicate::True)
            .order_by("seq", SortOrder::Asc);
        let records =
            Self::decode_entry_rows(self.db.run_select(&record_q).map_err(|e| e.to_string())?)?;
        let ckpt_q = SelectQuery::all("audit_checkpoints", Predicate::True)
            .order_by("upto", SortOrder::Asc);
        let mut checkpoints =
            Self::decode_entry_rows(self.db.run_select(&ckpt_q).map_err(|e| e.to_string())?)?
                .into_iter()
                .peekable();
        // Re-interleave: a checkpoint sits immediately after the record it
        // seals.
        let mut out = Vec::new();
        for entry in records {
            let seq = match &entry {
                LogEntry::Record(r) => r.seq,
                LogEntry::Checkpoint(_) => unreachable!("records table holds records"),
            };
            out.push(entry);
            while matches!(
                checkpoints.peek(),
                Some(LogEntry::Checkpoint(c)) if c.upto_seq == seq
            ) {
                out.push(checkpoints.next().expect("peeked"));
            }
        }
        out.extend(checkpoints);
        Ok(out)
    }

    fn query(&self, q: &AuditQuery) -> Result<Vec<ChainedRecord>, String> {
        // Compile the filter to a relational predicate so the subject
        // index and the ordered, limited select do the work.
        let mut pred = Predicate::True;
        let and = |p: Predicate, q: Predicate| {
            if matches!(p, Predicate::True) {
                q
            } else {
                Predicate::and(p, q)
            }
        };
        if let Some(s) = &q.subject {
            pred = and(pred, Predicate::eq("subject", Value::text(s.as_str())));
        }
        if let Some(o) = &q.object_prefix {
            pred = and(pred, Predicate::prefix("object", o));
        }
        if let Some(s) = &q.surface {
            pred = and(pred, Predicate::eq("surface", Value::text(s.as_str())));
        }
        if let Some(t) = q.from {
            pred = and(
                pred,
                Predicate::not(Predicate::lt("time", Value::Int(t.0 as i64))),
            );
        }
        if let Some(t) = q.until {
            pred = and(
                pred,
                Predicate::not(Predicate::gt("time", Value::Int(t.0 as i64))),
            );
        }
        // Newest-first with the limit applied by the database, then flip
        // back to chain order for the caller.
        let mut select = SelectQuery::all("audit_records", pred)
            .order_by("seq", SortOrder::Desc);
        select.columns = vec!["entry".to_string()];
        if let Some(n) = q.limit {
            select = select.limit(n);
        }
        let rows = self.db.run_select(&select).map_err(|e| e.to_string())?;
        let mut records: Vec<ChainedRecord> = Self::decode_entry_rows(rows)?
            .into_iter()
            .filter_map(|e| match e {
                LogEntry::Record(r) => Some(r),
                LogEntry::Checkpoint(_) => None,
            })
            .collect();
        records.reverse();
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::genesis_hash;
    use snowflake_core::{Decision, DecisionEvent, Principal, Time};

    fn chain(n: u64) -> Vec<LogEntry> {
        let mut prev = genesis_hash();
        (0..n)
            .map(|i| {
                let ev = DecisionEvent::new(
                    Time(i),
                    "rmi",
                    Decision::Grant,
                    &format!("/obj/{i}"),
                    "read",
                    "",
                )
                .with_subject(Principal::message(b"alice"));
                let r = ChainedRecord::chain(i, prev.clone(), ev);
                prev = r.hash.clone();
                LogEntry::Record(r)
            })
            .collect()
    }

    #[test]
    fn memory_ring_bounds_and_counts() {
        let mut b = MemoryBackend::new(4);
        for e in chain(10) {
            b.append(&e).unwrap();
        }
        assert_eq!(b.entries().unwrap().len(), 4);
        assert_eq!(b.evicted(), 6);
        let unbounded = MemoryBackend::new(0);
        assert_eq!(unbounded.evicted(), 0);
    }

    #[test]
    fn db_backend_round_trips_and_queries() {
        let mut b = DbBackend::new();
        for e in chain(20) {
            b.append(&e).unwrap();
        }
        assert_eq!(b.entries().unwrap().len(), 20);
        // Subject + limit goes through the indexed ordered select.
        let q = AuditQuery::all()
            .subject(&Principal::message(b"alice").describe())
            .newest(5);
        let out = b.query(&q).unwrap();
        assert_eq!(out.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![15, 16, 17, 18, 19]);
        // Time window composes.
        let q = AuditQuery::all().window(Time(3), Time(5));
        assert_eq!(b.query(&q).unwrap().len(), 3);
        // No match → empty.
        let q = AuditQuery::all().subject("nobody");
        assert!(b.query(&q).unwrap().is_empty());
    }

    /// Subject-less events (sheds, challenge denials) must behave the
    /// same on the indexed backend as on the scan path: no subject
    /// equality ever matches them.
    #[test]
    fn db_backend_subjectless_events_never_match_subject_queries() {
        let mut db = DbBackend::new();
        let mut mem = MemoryBackend::new(0);
        let mut prev = genesis_hash();
        for i in 0..4u64 {
            let mut ev = DecisionEvent::new(Time(i), "http", Decision::Shed, "tcp", "connect", "");
            if i % 2 == 0 {
                ev = ev.with_subject(Principal::message(b"alice"));
            }
            let r = ChainedRecord::chain(i, prev.clone(), ev);
            prev = r.hash.clone();
            db.append(&LogEntry::Record(r.clone())).unwrap();
            mem.append(&LogEntry::Record(r)).unwrap();
        }
        for q in [
            AuditQuery::all().subject(&Principal::message(b"alice").describe()),
            AuditQuery::all().subject(""),
        ] {
            assert_eq!(db.query(&q).unwrap(), mem.query(&q).unwrap(), "{q:?}");
        }
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("sf-audit-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file-backend.log");
        let _ = std::fs::remove_file(&path);
        let entries = chain(6);
        {
            let mut b = FileBackend::open(&path).unwrap();
            for e in &entries {
                b.append(e).unwrap();
            }
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.entries().unwrap(), entries);
        let _ = std::fs::remove_file(&path);
    }
}
