//! Storage backends for the audit log.
//!
//! The log core is backend-agnostic: a backend persists the entry stream
//! and answers queries.  Three are provided:
//!
//! * [`MemoryBackend`] — a bounded in-memory ring for live operations
//!   (tail queries, tests, benches).  Once the ring evicts, the retained
//!   stream is a *suffix* and can no longer be chain-verified from
//!   genesis; eviction is counted so that is visible.
//! * [`FileBackend`] — append-only files of transport-encoded
//!   S-expressions, one entry per line, fsynced per append and recovered
//!   (torn tail truncated) on reopen: the durable form an auditor copies
//!   off the box and verifies offline with [`crate::verify_chain`].
//!   Rotation caps segment size without renames: `path` is segment 1 and
//!   later segments live at `path.2`, `path.3`, …, each opening with an
//!   anchor line that seals it to its predecessor's last record, so chain
//!   verification spans the seams.
//! * [`DbBackend`] — an indexed relational table over the same
//!   `snowflake-reldb` substrate the email application uses, where the
//!   query API becomes an indexed `select … ORDER BY seq DESC LIMIT n`.

use crate::query::AuditQuery;
use crate::record::{ChainedRecord, LogEntry};
use snowflake_core::durable::{CrashPoint, Durable, RecoveryReport};
use snowflake_crypto::HashVal;
use snowflake_reldb::{
    ColumnType, Database, Predicate, Schema, SelectQuery, SortOrder, Value,
};
use snowflake_sexpr::Sexp;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// A capture of a backend's retained stream, taken under the log lock in
/// O(1) for file-backed streams, decoded *outside* it.
///
/// Full-stream exports ([`crate::AuditLog::entries`],
/// [`crate::AuditLog::verify`]) used to hold the log's mutex while the
/// backend read and parsed its whole stream, stalling the audit sink's
/// drain worker into counted drops on big logs.  A snapshot pins only
/// *what* to read — for [`FileBackend`], segment paths plus the clean
/// byte length of the active segment (appends and rotations are strictly
/// additive, so those bytes never change after capture) — and
/// [`EntrySnapshot::load`] does the I/O and parsing with no lock held.
pub enum EntrySnapshot {
    /// The entries themselves (in-memory backends clone their ring).
    Entries(Vec<LogEntry>),
    /// Byte ranges of on-disk segments: `(path, Some(clean_len))` reads a
    /// prefix, `(path, None)` the whole (sealed, immutable) file.
    Files(Vec<(PathBuf, Option<u64>)>),
}

impl EntrySnapshot {
    /// Decodes the captured stream, oldest first.
    pub fn load(self) -> Result<Vec<LogEntry>, String> {
        match self {
            EntrySnapshot::Entries(entries) => Ok(entries),
            EntrySnapshot::Files(parts) => {
                let mut out = Vec::new();
                for (path, len) in parts {
                    let mut data = std::fs::read(&path)
                        .map_err(|e| format!("read {}: {e}", path.display()))?;
                    if let Some(len) = len {
                        data.truncate(len as usize);
                    }
                    for line in segment_lines(&data) {
                        if let SegmentLine::Entry(e) = parse_segment_line(line)? {
                            out.push(e);
                        }
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Where an [`crate::AuditLog`] keeps its entries.
pub trait AuditBackend: Send {
    /// Persists one entry at the end of the stream.
    fn append(&mut self, entry: &LogEntry) -> Result<(), String>;

    /// The retained entry stream, oldest first (for verification, export,
    /// and log resumption).
    fn entries(&self) -> Result<Vec<LogEntry>, String>;

    /// Captures the retained stream for decoding outside the log lock.
    /// The default clones via [`AuditBackend::entries`]; file-backed
    /// streams override it with an O(1) byte-range capture.
    fn snapshot(&self) -> Result<EntrySnapshot, String> {
        Ok(EntrySnapshot::Entries(self.entries()?))
    }

    /// Answers a query over the retained records.  The default filters
    /// [`AuditBackend::entries`]; indexed backends override it.
    fn query(&self, q: &AuditQuery) -> Result<Vec<ChainedRecord>, String> {
        let records: Vec<ChainedRecord> = self
            .entries()?
            .into_iter()
            .filter_map(|e| match e {
                LogEntry::Record(r) => Some(r),
                LogEntry::Checkpoint(_) => None,
            })
            .collect();
        Ok(q.apply(&records))
    }

    /// Entries evicted to honor a retention bound (0 for unbounded
    /// backends).  A non-zero count means [`AuditBackend::entries`] is a
    /// suffix of the true stream.
    fn evicted(&self) -> u64 {
        0
    }
}

/// A bounded in-memory ring of the newest entries.
pub struct MemoryBackend {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    evicted: u64,
}

impl MemoryBackend {
    /// A ring retaining at most `capacity` entries (`0` = unbounded).
    pub fn new(capacity: usize) -> MemoryBackend {
        MemoryBackend {
            entries: VecDeque::new(),
            capacity,
            evicted: 0,
        }
    }
}

impl AuditBackend for MemoryBackend {
    fn append(&mut self, entry: &LogEntry) -> Result<(), String> {
        self.entries.push_back(entry.clone());
        while self.capacity > 0 && self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        Ok(())
    }

    fn entries(&self) -> Result<Vec<LogEntry>, String> {
        Ok(self.entries.iter().cloned().collect())
    }

    fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// One decoded line of a file segment.
enum SegmentLine {
    /// A log entry.
    Entry(LogEntry),
    /// A rotation anchor: the previous segment's last record `(seq, hash)`.
    Anchor(u64, HashVal),
}

/// Splits segment bytes into complete (newline-terminated) non-blank
/// lines.  Bytes after the last newline are a torn tail and are not
/// yielded.
fn segment_lines(data: &[u8]) -> impl Iterator<Item = &[u8]> {
    let clean = data.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    data[..clean]
        .split(|&b| b == b'\n')
        .filter(|l| !l.iter().all(u8::is_ascii_whitespace))
}

fn parse_segment_line(line: &[u8]) -> Result<SegmentLine, String> {
    let s = Sexp::parse(line).map_err(|e| format!("bad entry line: {e}"))?;
    if s.tag_name() == Some("audit-anchor") {
        let upto = s
            .find_value("upto")
            .and_then(Sexp::as_u64)
            .ok_or("anchor needs (upto n)")?;
        let head = HashVal::from_sexp(
            s.find_value("head").ok_or("anchor needs (head h)")?,
        )
        .map_err(|e| format!("bad anchor head: {e}"))?;
        return Ok(SegmentLine::Anchor(upto, head));
    }
    LogEntry::from_sexp(&s)
        .map(SegmentLine::Entry)
        .map_err(|e| format!("bad entry: {e}"))
}

fn anchor_line(upto: u64, head: &HashVal) -> Vec<u8> {
    let mut line = Sexp::tagged(
        "audit-anchor",
        vec![
            Sexp::tagged("upto", vec![Sexp::int(upto)]),
            Sexp::tagged("head", vec![head.to_sexp()]),
        ],
    )
    .transport()
    .into_bytes();
    line.push(b'\n');
    line
}

/// Append-only segment files of transport-encoded entries, one per line,
/// fsynced per append and recovered on reopen.
///
/// Segment 1 is `path`; when a segment reaches the rotation bound the
/// backend starts `path.2`, `path.3`, … — never renaming, so captured
/// [`EntrySnapshot`]s stay valid while the log keeps running.  Every
/// segment after the first opens with the anchor line
/// `(audit-anchor (upto n) (head h))` naming its predecessor's last
/// record: the seam is sealed, and a sealed segment plus its successor's
/// anchor is independently verifiable off the box.
///
/// On reopen the sealed segments must parse completely and each anchor
/// must match its predecessor's last record (anything else is corruption
/// or tampering and fails the open); only the *active* segment may end in
/// a torn line, which is truncated away exactly as the reldb WAL does.
pub struct FileBackend {
    path: PathBuf,
    file: std::fs::File,
    /// All segment paths, oldest first; the last one is active.
    segments: Vec<PathBuf>,
    /// Clean (fully fsynced, line-terminated) bytes of the active segment.
    active_len: u64,
    /// Entry lines (anchors excluded) in the active segment.
    active_entries: u64,
    /// Rotate once the active segment holds this many entries.
    rotate_after: Option<u64>,
    /// The newest record in the stream (what an anchor will seal).
    last_record: Option<(u64, HashVal)>,
    recovery: RecoveryReport,
    crash: CrashPoint,
}

impl FileBackend {
    /// Opens (creating or recovering) an unrotated log at `path`.
    /// Existing entries are preserved; the owning log resumes from them.
    pub fn open(path: impl Into<PathBuf>) -> Result<FileBackend, String> {
        Self::with_crash_point(path, None, CrashPoint::inert())
    }

    /// [`FileBackend::open`] that rotates to a new segment once the
    /// active one holds `per_segment` entries.
    pub fn with_rotation(
        path: impl Into<PathBuf>,
        per_segment: u64,
    ) -> Result<FileBackend, String> {
        Self::with_crash_point(path, Some(per_segment.max(1)), CrashPoint::inert())
    }

    /// Full-control constructor threading a fault-injection hook through
    /// every durable write (the crash harness).
    pub fn with_crash_point(
        path: impl Into<PathBuf>,
        rotate_after: Option<u64>,
        crash: CrashPoint,
    ) -> Result<FileBackend, String> {
        let path: PathBuf = path.into();

        // Discover the segment chain: `path`, then `path.2`, `path.3`, …
        let mut segments = vec![path.clone()];
        loop {
            let next = segment_path(&path, segments.len() as u64 + 1);
            if next.exists() {
                segments.push(next);
            } else {
                break;
            }
        }

        let mut recovery = RecoveryReport::default();
        let mut last_record: Option<(u64, HashVal)> = None;
        let mut active_len = 0u64;
        let mut active_entries = 0u64;
        let mut reanchor = false;
        for (i, seg) in segments.iter().enumerate() {
            let sealed = i + 1 < segments.len();
            let data = match std::fs::read(seg) {
                Ok(data) => data,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound && !sealed => Vec::new(),
                Err(e) => return Err(format!("read {}: {e}", seg.display())),
            };
            let mut clean = 0u64;
            let mut entries_here = 0u64;
            let mut first_line = true;
            let mut pos = 0usize;
            // Walk complete lines by explicit offset so `clean` is always
            // a true byte boundary (blank lines count their bytes too).
            while let Some(nl) = data[pos..].iter().position(|&b| b == b'\n') {
                let line = &data[pos..pos + nl];
                pos += nl + 1;
                if line.iter().all(u8::is_ascii_whitespace) {
                    clean = pos as u64;
                    continue;
                }
                let parsed = match parse_segment_line(line) {
                    Ok(p) => p,
                    Err(e) if sealed => {
                        // A hole in a sealed segment is not a torn tail —
                        // it is corruption (or tampering) and must surface.
                        return Err(format!("sealed segment {}: {e}", seg.display()));
                    }
                    // In the active segment a bad line starts the torn
                    // tail; everything from here on is discarded.
                    Err(_) => break,
                };
                match parsed {
                    SegmentLine::Anchor(upto, head) => {
                        if i == 0 || !first_line {
                            return Err(format!(
                                "{}: anchor outside a segment head",
                                seg.display()
                            ));
                        }
                        if last_record.as_ref() != Some(&(upto, head.clone())) {
                            return Err(format!(
                                "{}: rotation seam broken: anchor does not match \
                                 the previous segment's last record",
                                seg.display()
                            ));
                        }
                    }
                    SegmentLine::Entry(e) => {
                        if i > 0 && first_line {
                            return Err(format!(
                                "{}: rotated segment is missing its anchor",
                                seg.display()
                            ));
                        }
                        if let LogEntry::Record(r) = &e {
                            last_record = Some((r.seq, r.hash.clone()));
                        }
                        entries_here += 1;
                    }
                }
                first_line = false;
                clean = pos as u64;
            }
            if sealed {
                recovery.from_snapshot += entries_here;
                if clean < data.len() as u64 {
                    return Err(format!(
                        "sealed segment {}: torn data before the stream end",
                        seg.display()
                    ));
                }
            } else {
                recovery.replayed = entries_here;
                recovery.truncated_bytes = data.len() as u64 - clean;
                active_len = clean;
                active_entries = entries_here;
                // A rotation that crashed mid-anchor leaves an empty (or
                // fully torn) segment: re-issue the anchor below.
                reanchor = i > 0 && first_line;
            }
        }

        let active = segments.last().expect("at least one segment").clone();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .open(&active)
            .map_err(|e| format!("open {}: {e}", active.display()))?;
        if recovery.truncated_bytes > 0 {
            file.set_len(active_len)
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("truncate {}: {e}", active.display()))?;
        }
        use std::io::Seek;
        let mut backend = FileBackend {
            path,
            file,
            segments,
            active_len,
            active_entries,
            rotate_after,
            last_record,
            recovery,
            crash,
        };
        backend
            .file
            .seek(std::io::SeekFrom::Start(active_len))
            .map_err(|e| format!("seek: {e}"))?;
        if reanchor {
            let (upto, head) = backend.last_record.clone().expect("anchored rotation");
            backend.write_line(&anchor_line(upto, &head))?;
        }
        Ok(backend)
    }

    /// The primary (first-segment) file of this backend.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of segment files (1 until the first rotation).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Crash-guarded durable line write: bytes, then fsync.
    fn write_line(&mut self, line: &[u8]) -> Result<(), String> {
        let active = self.segments.last().expect("active segment");
        self.crash
            .write_all(&mut self.file, line)
            .and_then(|()| self.crash.check())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("append {}: {e}", active.display()))?;
        self.active_len += line.len() as u64;
        Ok(())
    }

    /// Starts the next segment, sealed to the current last record.
    fn rotate(&mut self) -> Result<(), String> {
        let Some((upto, head)) = self.last_record.clone() else {
            return Ok(()); // nothing to seal yet; keep filling segment 1
        };
        let next = segment_path(&self.path, self.segments.len() as u64 + 1);
        self.file = std::fs::OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&next)
            .map_err(|e| format!("rotate to {}: {e}", next.display()))?;
        self.segments.push(next);
        self.active_len = 0;
        self.active_entries = 0;
        self.write_line(&anchor_line(upto, &head))
    }
}

/// `path` for segment 1, `path.k` for later segments.
fn segment_path(path: &Path, k: u64) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".{k}"));
    PathBuf::from(os)
}

impl AuditBackend for FileBackend {
    fn append(&mut self, entry: &LogEntry) -> Result<(), String> {
        if let Some(bound) = self.rotate_after {
            if self.active_entries >= bound {
                self.rotate()?;
            }
        }
        let mut line = entry.to_sexp().transport().into_bytes();
        line.push(b'\n');
        self.write_line(&line)?;
        self.active_entries += 1;
        if let LogEntry::Record(r) = entry {
            self.last_record = Some((r.seq, r.hash.clone()));
        }
        Ok(())
    }

    fn entries(&self) -> Result<Vec<LogEntry>, String> {
        self.snapshot()?.load()
    }

    fn snapshot(&self) -> Result<EntrySnapshot, String> {
        let mut parts: Vec<(PathBuf, Option<u64>)> = self
            .segments
            .iter()
            .map(|p| (p.clone(), None))
            .collect();
        // The active segment may hold torn bytes from a failed append
        // beyond `active_len`; sealed segments are immutable.
        parts.last_mut().expect("active segment").1 = Some(self.active_len);
        Ok(EntrySnapshot::Files(parts))
    }
}

impl Durable for FileBackend {
    fn storage(&self) -> &Path {
        &self.path
    }

    fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    fn sync(&mut self) -> Result<(), String> {
        self.file.sync_data().map_err(|e| e.to_string())
    }
}

/// The audit table schema shared by [`DbBackend`] and external importers.
pub fn audit_schema(db: &mut Database) {
    db.create_table(
        "audit_records",
        Schema::new(&[
            ("seq", ColumnType::Int),
            ("time", ColumnType::Int),
            ("surface", ColumnType::Text),
            ("subject", ColumnType::Text),
            ("object", ColumnType::Text),
            ("action", ColumnType::Text),
            ("verdict", ColumnType::Text),
            ("epoch", ColumnType::Int),
            ("entry", ColumnType::Bytes),
        ]),
    );
    db.table_mut("audit_records")
        .expect("just created")
        .create_index("subject")
        .expect("column exists");
    db.create_table(
        "audit_checkpoints",
        Schema::new(&[("upto", ColumnType::Int), ("entry", ColumnType::Bytes)]),
    );
}

/// Records in a relational table (the email-database substrate), with a
/// subject index and `ORDER BY seq` / `LIMIT` queries.
pub struct DbBackend {
    db: Database,
}

impl DbBackend {
    /// An empty relational backend.
    pub fn new() -> DbBackend {
        let mut db = Database::new();
        audit_schema(&mut db);
        DbBackend { db }
    }

    /// The underlying database (read access for reporting tools).
    pub fn database(&self) -> &Database {
        &self.db
    }

    fn decode_entry_rows(rows: Vec<Vec<Value>>) -> Result<Vec<LogEntry>, String> {
        rows.into_iter()
            .map(|row| match row.last() {
                Some(Value::Bytes(bytes)) => Sexp::parse(bytes)
                    .map_err(|e| format!("bad stored entry: {e}"))
                    .and_then(|s| {
                        LogEntry::from_sexp(&s).map_err(|e| format!("bad stored entry: {e}"))
                    }),
                _ => Err("entry column missing".into()),
            })
            .collect()
    }
}

impl Default for DbBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl AuditBackend for DbBackend {
    fn append(&mut self, entry: &LogEntry) -> Result<(), String> {
        let encoded = Value::bytes(entry.to_sexp().canonical());
        match entry {
            LogEntry::Record(r) => {
                let ev = &r.event;
                self.db
                    .table_mut("audit_records")
                    .and_then(|t| {
                        t.insert(vec![
                            Value::Int(r.seq as i64),
                            Value::Int(ev.time.0 as i64),
                            Value::text(ev.surface.as_str()),
                            // Subject-less events store NULL, not "": an
                            // equality predicate must never match them,
                            // exactly as `AuditQuery::matches` never does.
                            match &ev.subject {
                                Some(p) => Value::text(p.describe()),
                                None => Value::Null,
                            },
                            Value::text(ev.object.as_str()),
                            Value::text(ev.action.as_str()),
                            Value::text(ev.decision.name()),
                            Value::Int(ev.revocation_epoch as i64),
                            encoded,
                        ])
                    })
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            LogEntry::Checkpoint(c) => self
                .db
                .table_mut("audit_checkpoints")
                .and_then(|t| t.insert(vec![Value::Int(c.upto_seq as i64), encoded]))
                .map(|_| ())
                .map_err(|e| e.to_string()),
        }
    }

    fn entries(&self) -> Result<Vec<LogEntry>, String> {
        let record_q = SelectQuery::all("audit_records", Predicate::True)
            .order_by("seq", SortOrder::Asc);
        let records =
            Self::decode_entry_rows(self.db.run_select(&record_q).map_err(|e| e.to_string())?)?;
        let ckpt_q = SelectQuery::all("audit_checkpoints", Predicate::True)
            .order_by("upto", SortOrder::Asc);
        let mut checkpoints =
            Self::decode_entry_rows(self.db.run_select(&ckpt_q).map_err(|e| e.to_string())?)?
                .into_iter()
                .peekable();
        // Re-interleave: a checkpoint sits immediately after the record it
        // seals.
        let mut out = Vec::new();
        for entry in records {
            let seq = match &entry {
                LogEntry::Record(r) => r.seq,
                LogEntry::Checkpoint(_) => unreachable!("records table holds records"),
            };
            out.push(entry);
            while matches!(
                checkpoints.peek(),
                Some(LogEntry::Checkpoint(c)) if c.upto_seq == seq
            ) {
                out.push(checkpoints.next().expect("peeked"));
            }
        }
        out.extend(checkpoints);
        Ok(out)
    }

    fn query(&self, q: &AuditQuery) -> Result<Vec<ChainedRecord>, String> {
        // Compile the filter to a relational predicate so the subject
        // index and the ordered, limited select do the work.
        let mut pred = Predicate::True;
        let and = |p: Predicate, q: Predicate| {
            if matches!(p, Predicate::True) {
                q
            } else {
                Predicate::and(p, q)
            }
        };
        if let Some(s) = &q.subject {
            pred = and(pred, Predicate::eq("subject", Value::text(s.as_str())));
        }
        if let Some(o) = &q.object_prefix {
            pred = and(pred, Predicate::prefix("object", o));
        }
        if let Some(s) = &q.surface {
            pred = and(pred, Predicate::eq("surface", Value::text(s.as_str())));
        }
        if let Some(t) = q.from {
            pred = and(
                pred,
                Predicate::not(Predicate::lt("time", Value::Int(t.0 as i64))),
            );
        }
        if let Some(t) = q.until {
            pred = and(
                pred,
                Predicate::not(Predicate::gt("time", Value::Int(t.0 as i64))),
            );
        }
        // Newest-first with the limit applied by the database, then flip
        // back to chain order for the caller.
        let mut select = SelectQuery::all("audit_records", pred)
            .order_by("seq", SortOrder::Desc);
        select.columns = vec!["entry".to_string()];
        if let Some(n) = q.limit {
            select = select.limit(n);
        }
        let rows = self.db.run_select(&select).map_err(|e| e.to_string())?;
        let mut records: Vec<ChainedRecord> = Self::decode_entry_rows(rows)?
            .into_iter()
            .filter_map(|e| match e {
                LogEntry::Record(r) => Some(r),
                LogEntry::Checkpoint(_) => None,
            })
            .collect();
        records.reverse();
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::genesis_hash;
    use snowflake_core::{Decision, DecisionEvent, Principal, Time};

    fn chain(n: u64) -> Vec<LogEntry> {
        let mut prev = genesis_hash();
        (0..n)
            .map(|i| {
                let ev = DecisionEvent::new(
                    Time(i),
                    "rmi",
                    Decision::Grant,
                    &format!("/obj/{i}"),
                    "read",
                    "",
                )
                .with_subject(Principal::message(b"alice"));
                let r = ChainedRecord::chain(i, prev.clone(), ev);
                prev = r.hash.clone();
                LogEntry::Record(r)
            })
            .collect()
    }

    #[test]
    fn memory_ring_bounds_and_counts() {
        let mut b = MemoryBackend::new(4);
        for e in chain(10) {
            b.append(&e).unwrap();
        }
        assert_eq!(b.entries().unwrap().len(), 4);
        assert_eq!(b.evicted(), 6);
        let unbounded = MemoryBackend::new(0);
        assert_eq!(unbounded.evicted(), 0);
    }

    #[test]
    fn db_backend_round_trips_and_queries() {
        let mut b = DbBackend::new();
        for e in chain(20) {
            b.append(&e).unwrap();
        }
        assert_eq!(b.entries().unwrap().len(), 20);
        // Subject + limit goes through the indexed ordered select.
        let q = AuditQuery::all()
            .subject(&Principal::message(b"alice").describe())
            .newest(5);
        let out = b.query(&q).unwrap();
        assert_eq!(out.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![15, 16, 17, 18, 19]);
        // Time window composes.
        let q = AuditQuery::all().window(Time(3), Time(5));
        assert_eq!(b.query(&q).unwrap().len(), 3);
        // No match → empty.
        let q = AuditQuery::all().subject("nobody");
        assert!(b.query(&q).unwrap().is_empty());
    }

    /// Subject-less events (sheds, challenge denials) must behave the
    /// same on the indexed backend as on the scan path: no subject
    /// equality ever matches them.
    #[test]
    fn db_backend_subjectless_events_never_match_subject_queries() {
        let mut db = DbBackend::new();
        let mut mem = MemoryBackend::new(0);
        let mut prev = genesis_hash();
        for i in 0..4u64 {
            let mut ev = DecisionEvent::new(Time(i), "http", Decision::Shed, "tcp", "connect", "");
            if i % 2 == 0 {
                ev = ev.with_subject(Principal::message(b"alice"));
            }
            let r = ChainedRecord::chain(i, prev.clone(), ev);
            prev = r.hash.clone();
            db.append(&LogEntry::Record(r.clone())).unwrap();
            mem.append(&LogEntry::Record(r)).unwrap();
        }
        for q in [
            AuditQuery::all().subject(&Principal::message(b"alice").describe()),
            AuditQuery::all().subject(""),
        ] {
            assert_eq!(db.query(&q).unwrap(), mem.query(&q).unwrap(), "{q:?}");
        }
    }

    fn file_base(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sf-audit-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        for k in 1..10u64 {
            let _ = std::fs::remove_file(segment_path(&path, k));
        }
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let path = file_base("file-backend.log");
        let entries = chain(6);
        {
            let mut b = FileBackend::open(&path).unwrap();
            for e in &entries {
                b.append(e).unwrap();
            }
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.entries().unwrap(), entries);
        assert_eq!(b.recovery().replayed, 6);
        assert_eq!(b.recovery().truncated_bytes, 0);
    }

    #[test]
    fn file_backend_rotates_and_entries_span_segments() {
        let path = file_base("rotate.log");
        let entries = chain(10);
        {
            let mut b = FileBackend::with_rotation(&path, 3).unwrap();
            for e in &entries {
                b.append(e).unwrap();
            }
            assert_eq!(b.segment_count(), 4, "3+3+3+1 across four segments");
            assert_eq!(b.entries().unwrap(), entries);
        }
        // Reopen walks the whole chain and verifies every seam.
        let b = FileBackend::with_rotation(&path, 3).unwrap();
        assert_eq!(b.entries().unwrap(), entries);
        assert_eq!(b.recovery().from_snapshot, 9, "sealed segments");
        assert_eq!(b.recovery().replayed, 1, "active segment");
        // The on-disk anchors really are there: segment 2 starts with one
        // sealing segment 1's last record (seq 2).
        let seg2 = std::fs::read(segment_path(&path, 2)).unwrap();
        let first = segment_lines(&seg2).next().unwrap();
        match parse_segment_line(first).unwrap() {
            SegmentLine::Anchor(upto, _) => assert_eq!(upto, 2),
            SegmentLine::Entry(_) => panic!("segment 2 must start with an anchor"),
        }
    }

    #[test]
    fn file_backend_truncates_torn_tail_on_reopen() {
        let path = file_base("torn.log");
        {
            let mut b = FileBackend::open(&path).unwrap();
            for e in chain(3) {
                b.append(&e).unwrap();
            }
        }
        // Tear the final line mid-entry (no trailing newline).
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 7]).unwrap();
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.entries().unwrap(), chain(3)[..2].to_vec());
        assert!(b.recovery().truncated_bytes > 0);
        // Truncation is durable: the next open is clean.
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.recovery().truncated_bytes, 0);
    }

    #[test]
    fn file_backend_rejects_tampered_seam_and_sealed_holes() {
        let path = file_base("seam.log");
        {
            let mut b = FileBackend::with_rotation(&path, 2).unwrap();
            for e in chain(5) {
                b.append(&e).unwrap();
            }
            assert!(b.segment_count() >= 2);
        }
        // Replace segment 2's anchor with one naming the wrong record:
        // the seam no longer matches.
        let seg2 = segment_path(&path, 2);
        let good = std::fs::read(&seg2).unwrap();
        let first_len = good.iter().position(|&b| b == b'\n').unwrap() + 1;
        let mut tampered = anchor_line(0, &genesis_hash());
        tampered.extend_from_slice(&good[first_len..]);
        std::fs::write(&seg2, &tampered).unwrap();
        let err = FileBackend::with_rotation(&path, 2).map(|_| ()).unwrap_err();
        assert!(err.contains("seam"), "{err}");
        std::fs::write(&seg2, &good).unwrap();

        // A hole in a *sealed* segment is corruption, not a torn tail.
        let sealed = std::fs::read(&path).unwrap();
        let mut holed = sealed.clone();
        holed[10] ^= 0xff;
        std::fs::write(&path, &holed).unwrap();
        let err = FileBackend::with_rotation(&path, 2).map(|_| ()).unwrap_err();
        assert!(err.contains("sealed segment"), "{err}");
    }

    #[test]
    fn file_backend_crash_mid_rotation_reanchors() {
        let path = file_base("reanchor.log");
        {
            let mut b = FileBackend::with_rotation(&path, 2).unwrap();
            for e in chain(2) {
                b.append(&e).unwrap();
            }
        }
        // Crash during the rotation's anchor write: budget admits only a
        // few bytes of it.
        {
            let mut b = FileBackend::with_crash_point(
                &path,
                Some(2),
                snowflake_core::durable::CrashPoint::after_bytes(5),
            )
            .unwrap();
            assert!(b.append(&chain(3)[2]).is_err());
            assert_eq!(b.segment_count(), 2, "segment file exists, anchor torn");
        }
        // Reopen: the torn anchor is truncated and re-issued, and the
        // stream continues across the healed seam.
        let mut b = FileBackend::with_rotation(&path, 2).unwrap();
        let rest: Vec<LogEntry> = chain(5)[2..].to_vec();
        for e in &rest {
            b.append(e).unwrap();
        }
        assert_eq!(b.entries().unwrap(), chain(5));
        let b2 = FileBackend::with_rotation(&path, 2).unwrap();
        assert_eq!(b2.entries().unwrap(), chain(5));
    }

    #[test]
    fn file_backend_snapshot_is_a_stable_byte_range_capture() {
        let path = file_base("snapshot.log");
        let mut b = FileBackend::with_rotation(&path, 2).unwrap();
        let entries = chain(5);
        for e in &entries[..3] {
            b.append(e).unwrap();
        }
        let snap = b.snapshot().unwrap();
        // Keep appending (and rotating) after the capture: the snapshot
        // still loads exactly the stream as of the capture, because
        // rotation never renames and appends only extend.
        for e in &entries[3..] {
            b.append(e).unwrap();
        }
        assert_eq!(snap.load().unwrap(), entries[..3].to_vec());
        assert_eq!(b.entries().unwrap(), entries);
    }
}
