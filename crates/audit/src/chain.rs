//! Offline verification of a captured entry stream.

use crate::record::{genesis_hash, Checkpoint, LogEntry};
use snowflake_crypto::{verify_batch, BatchEntry, BatchOutcome, HashVal, PublicKey};
use std::fmt;

/// Why a captured log failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A record's sequence number is not the expected next one —
    /// reordering, deletion, or duplication inside the stream.
    BadSeq {
        /// The sequence number expected at this position.
        expected: u64,
        /// The sequence number found.
        found: u64,
    },
    /// A record's `prev` does not match the preceding record's hash.
    BrokenLink {
        /// The offending record's sequence number.
        seq: u64,
    },
    /// A record's stored hash does not match its contents (an in-place
    /// edit: bit-flip, reworded detail, swapped subject, …).
    BadHash {
        /// The offending record's sequence number.
        seq: u64,
    },
    /// A checkpoint names a head that is not the record it follows.
    CheckpointMismatch {
        /// The checkpoint's claimed `upto_seq`.
        upto: u64,
    },
    /// A checkpoint's signature is invalid or from the wrong key.
    BadSignature {
        /// The checkpoint's `upto_seq`.
        upto: u64,
        /// What the signature check reported.
        reason: String,
    },
    /// An interval boundary passed with no checkpoint for it — the signed
    /// seal that should cover those records is missing.
    MissingCheckpoint {
        /// The sequence number the absent checkpoint should cover.
        upto: u64,
    },
    /// The stream's last record does not match the trusted head — the log
    /// was truncated (or its tail rewritten).
    Truncated {
        /// The trusted head's sequence number.
        expected_seq: u64,
        /// The last sequence number actually present (`None`: empty log).
        found_seq: Option<u64>,
    },
    /// The entry stream could not be read at all (backend I/O failure) —
    /// not a tamper verdict; nothing was verified.
    Backend(String),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadSeq { expected, found } => {
                write!(f, "record out of order: expected seq {expected}, found {found}")
            }
            ChainError::BrokenLink { seq } => {
                write!(f, "record {seq} does not chain to its predecessor")
            }
            ChainError::BadHash { seq } => write!(f, "record {seq} was altered in place"),
            ChainError::CheckpointMismatch { upto } => {
                write!(f, "checkpoint upto {upto} does not match the chain head")
            }
            ChainError::BadSignature { upto, reason } => {
                write!(f, "checkpoint upto {upto}: {reason}")
            }
            ChainError::MissingCheckpoint { upto } => {
                write!(f, "missing checkpoint covering records through {upto}")
            }
            ChainError::Truncated {
                expected_seq,
                found_seq,
            } => match found_seq {
                Some(found) => write!(
                    f,
                    "log truncated: trusted head is seq {expected_seq}, stream ends at {found}"
                ),
                None => write!(f, "log truncated: trusted head is seq {expected_seq}, stream is empty"),
            },
            ChainError::Backend(reason) => write!(f, "entry stream unreadable: {reason}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// What a successful verification established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSummary {
    /// Decision records verified.
    pub records: u64,
    /// Signed checkpoints verified.
    pub checkpoints: u64,
    /// The verified chain head (`None`: the stream was empty).
    pub head: Option<(u64, HashVal)>,
}

/// Verifies a captured entry stream end to end.
///
/// Checks, in one pass:
///
/// * sequence numbers are contiguous from 0 (**reordering / deletion /
///   duplication**);
/// * every record's `prev` equals its predecessor's hash and its stored
///   hash recomputes from its contents (**in-place tampering**);
/// * every checkpoint seals the record it follows and carries a valid
///   signature by `signer` (**re-sealing requires the log key**);
/// * a checkpoint is present for every full `interval` of records
///   (**missing-signature**: stripping checkpoints to hide edits is
///   itself detected);
/// * when a trusted head is supplied (the live log's
///   [`crate::AuditLog::head`], or the latest checkpoint held elsewhere),
///   the stream ends exactly there (**truncation**).
///
/// A *prefix* of a valid stream — what a reader that stopped early holds —
/// verifies with `expected_head: None`: the chain rules hold at every
/// point, truncation is only decidable against outside knowledge.
pub fn verify_chain(
    entries: &[LogEntry],
    signer: &PublicKey,
    interval: u64,
    expected_head: Option<&(u64, HashVal)>,
) -> Result<ChainSummary, ChainError> {
    verify_entries(entries, signer, interval, expected_head, false)
}

/// [`verify_chain`] for a *suffix* of a log — what a bounded ring backend
/// retains after eviction, or a tail capture.
///
/// The first record anchors the chain: its sequence number and `prev`
/// are taken as given (they cannot be checked without the evicted
/// predecessor), and everything after it is held to the full rules.
/// This proves internal consistency of the retained window; provenance
/// back to genesis requires an unevicted copy (file or database
/// backend).
pub fn verify_suffix(
    entries: &[LogEntry],
    signer: &PublicKey,
    interval: u64,
    expected_head: Option<&(u64, HashVal)>,
) -> Result<ChainSummary, ChainError> {
    verify_entries(entries, signer, interval, expected_head, true)
}

fn verify_entries(
    entries: &[LogEntry],
    signer: &PublicKey,
    interval: u64,
    expected_head: Option<&(u64, HashVal)>,
    allow_suffix: bool,
) -> Result<ChainSummary, ChainError> {
    let interval = interval.max(1);
    let mut first_seq: u64 = 0;
    let mut next_seq: u64 = 0;
    let mut prev = genesis_hash();
    let mut last: Option<(u64, HashVal)> = None;
    let mut last_checkpointed: Option<u64> = None;
    let mut checkpoints: u64 = 0;
    let mut to_verify: Vec<&Checkpoint> = Vec::new();
    for entry in entries {
        match entry {
            LogEntry::Record(r) => {
                // In suffix mode the first record anchors the chain
                // wherever the retained window starts.
                if allow_suffix && last.is_none() {
                    first_seq = r.seq;
                    next_seq = r.seq;
                    prev = r.prev.clone();
                }
                if r.seq != next_seq {
                    return Err(ChainError::BadSeq {
                        expected: next_seq,
                        found: r.seq,
                    });
                }
                // A full interval must be sealed before the next record
                // is admitted (the writer emits the checkpoint in the
                // same append), so a stripped seal is noticed exactly
                // where it should have been.  Boundaries at or before
                // the anchor are unjudgeable: their seals preceded the
                // retained window.
                if r.seq > first_seq
                    && r.seq % interval == 0
                    && last_checkpointed != Some(r.seq - 1)
                {
                    return Err(ChainError::MissingCheckpoint { upto: r.seq - 1 });
                }
                if r.prev != prev {
                    return Err(ChainError::BrokenLink { seq: r.seq });
                }
                if r.recompute_hash() != r.hash {
                    return Err(ChainError::BadHash { seq: r.seq });
                }
                prev = r.hash.clone();
                last = Some((r.seq, r.hash.clone()));
                next_seq += 1;
            }
            LogEntry::Checkpoint(c) => {
                // A suffix window may open on a checkpoint whose record
                // was evicted; it cannot be anchored, so it is skipped
                // (not counted) rather than misread as a mismatch.
                if allow_suffix && last.is_none() {
                    continue;
                }
                let matches_head = last
                    .as_ref()
                    .is_some_and(|(seq, hash)| c.upto_seq == *seq && &c.head == hash);
                if !matches_head {
                    return Err(ChainError::CheckpointMismatch { upto: c.upto_seq });
                }
                c.check_signer(signer)
                    .map_err(|reason| ChainError::BadSignature {
                        upto: c.upto_seq,
                        reason,
                    })?;
                // Signature deferred: all checkpoints in the stream are
                // verified as one Schnorr batch after the walk.
                to_verify.push(c);
                last_checkpointed = Some(c.upto_seq);
                checkpoints += 1;
            }
        }
    }
    // One batched multi-exponentiation covers every checkpoint signature;
    // on failure the individual fallback inside `verify_batch` pinpoints
    // the culprits, and the first in stream order is reported — the same
    // error the per-checkpoint path raised.
    if !to_verify.is_empty() {
        let messages: Vec<Vec<u8>> = to_verify.iter().map(|c| c.signed_bytes()).collect();
        let batch: Vec<BatchEntry<'_>> = to_verify
            .iter()
            .zip(&messages)
            .map(|(c, m)| BatchEntry {
                key: &c.signer,
                message: m,
                sig: &c.signature,
            })
            .collect();
        if let BatchOutcome::Invalid(bad) = verify_batch(&batch) {
            let first = bad.iter().copied().min().unwrap_or(0);
            return Err(ChainError::BadSignature {
                upto: to_verify[first].upto_seq,
                reason: "checkpoint signature verification failed".into(),
            });
        }
    }
    if let Some((expected_seq, expected_hash)) = expected_head {
        let matches = last
            .as_ref()
            .is_some_and(|(seq, hash)| seq == expected_seq && hash == expected_hash);
        if !matches {
            return Err(ChainError::Truncated {
                expected_seq: *expected_seq,
                found_seq: last.as_ref().map(|(seq, _)| *seq),
            });
        }
    }
    Ok(ChainSummary {
        records: next_seq - first_seq,
        checkpoints,
        head: last,
    })
}
