//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = crate::sha256(key);
        k[..32].copy_from_slice(&digest);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finish();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-time comparison of two byte strings.
///
/// Returns `false` for length mismatches without inspecting content.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// HKDF-style key derivation: expands a shared secret into a labeled key.
///
/// `derive_key(secret, label)` = HMAC-SHA256(secret, label); used by the
/// secure channel to split one Diffie–Hellman secret into per-direction
/// encryption and MAC keys.
pub fn derive_key(secret: &[u8], label: &[u8]) -> [u8; 32] {
    hmac_sha256(secret, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_sexpr::hex_encode;

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex_encode(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_encode(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex_encode(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex_encode(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn ct_eq_works() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn derive_key_labels_differ() {
        let s = b"shared secret";
        assert_ne!(derive_key(s, b"c2s"), derive_key(s, b"s2c"));
    }
}
