//! Diffie–Hellman key agreement over a Schnorr group.
//!
//! The secure channel of paper §5.1 performs a key exchange to establish the
//! symmetric session key `K_CH`; each side then *signs* the transcript with
//! its long-term key so the channel is bound to a pair of public keys
//! (the `K_1`/`K_2` of Figure 3).

use crate::group::Group;
use crate::hmac::derive_key;
use snowflake_bigint::Ubig;

/// An ephemeral Diffie–Hellman secret.
pub struct DhSecret {
    group: &'static Group,
    x: Ubig,
    /// The public share `g^x mod p` to send to the peer.
    pub public: Ubig,
}

impl DhSecret {
    /// Generates an ephemeral secret and its public share.
    pub fn generate(group: &'static Group, rand_bytes: &mut dyn FnMut(&mut [u8])) -> Self {
        let x = group.random_exponent(rand_bytes);
        let public = group.power(&x);
        DhSecret { group, x, public }
    }

    /// Combines with the peer's public share into a 32-byte shared secret.
    ///
    /// Returns `None` when the peer's share is not a valid subgroup element
    /// (small-subgroup / identity attacks).
    pub fn agree(&self, peer_public: &Ubig) -> Option<[u8; 32]> {
        if !self.group.is_element(peer_public) {
            return None;
        }
        let shared = peer_public.modpow(&self.x, &self.group.p);
        let p_len = self.group.p.to_bytes_be().len();
        Some(derive_key(
            &shared.to_bytes_be_padded(p_len),
            b"snowflake-dh-v1",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;

    fn det(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut rng = DetRng::new(seed.as_bytes());
        move |buf: &mut [u8]| rng.fill(buf)
    }

    #[test]
    fn agreement() {
        let g = Group::test512();
        let mut ra = det("a");
        let mut rb = det("b");
        let a = DhSecret::generate(g, &mut ra);
        let b = DhSecret::generate(g, &mut rb);
        let sa = a.agree(&b.public).unwrap();
        let sb = b.agree(&a.public).unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    fn third_party_differs() {
        let g = Group::test512();
        let mut r = det("xyz");
        let a = DhSecret::generate(g, &mut r);
        let b = DhSecret::generate(g, &mut r);
        let c = DhSecret::generate(g, &mut r);
        assert_ne!(a.agree(&b.public).unwrap(), a.agree(&c.public).unwrap());
    }

    #[test]
    fn rejects_bad_shares() {
        let g = Group::test512();
        let mut r = det("a");
        let a = DhSecret::generate(g, &mut r);
        assert!(a.agree(&Ubig::zero()).is_none());
        assert!(a.agree(&Ubig::one()).is_none());
        assert!(a.agree(&g.p).is_none());
        // An element of the full group but (almost surely) not the q-subgroup.
        let outside = Ubig::from(2u64);
        if !g.is_element(&outside) {
            assert!(a.agree(&outside).is_none());
        }
    }
}
