//! Cryptographic substrate for Snowflake, implemented from scratch.
//!
//! The paper's system rests on four cryptographic mechanisms:
//!
//! * **Hashes** — principals may be hashes of keys or of documents
//!   (`(hash md5 |…|)` in Figure 5); requests are authorized by proving that
//!   the *hash of the request* speaks for an issuer (§5.3).  We provide
//!   [`sha256()`] (the default) and [`md5()`] (for SPKI `md5` hash forms).
//! * **Signatures** — signed certificates are the leaves of every proof
//!   (§4.3).  The paper used 1024-bit RSA; this reproduction uses Schnorr
//!   signatures over a prime-order subgroup ([`schnorr`]), which preserves
//!   the cost asymmetry the measurements depend on (expensive public-key
//!   operations vs. cheap hashing).
//! * **Key exchange** — the ssh-like secure channel of §5.1 derives a
//!   session key with Diffie–Hellman ([`dh`]) over the same group.
//! * **Symmetric protection** — channel records are encrypted with
//!   [`chacha20`] and authenticated with [`hmac`]; the MAC-amortized signed
//!   request protocol of §5.3.1 uses HMAC as its message authentication code.
//!
//! No external cryptography crates are used anywhere in the workspace;
//! entropy comes straight from the operating system (`/dev/urandom`),
//! keyed through a ChaCha20 stream.

pub mod chacha20;
pub mod dh;
pub mod group;
pub mod hash;
pub mod hmac;
mod key_cache;
pub mod md5;
pub mod schnorr;
pub mod seal;
pub mod sha256;

pub use dh::DhSecret;
pub use group::Group;
pub use hash::{HashAlg, HashVal};
pub use key_cache::{key_table_stats, register_metrics as register_key_table_metrics, KeyTableStats};
pub use schnorr::{
    verify_batch, verify_batch_with, BatchEntry, BatchOutcome, KeyPair, PublicKey, Signature,
};
pub use seal::{open, seal, SealedBox};

pub use md5::md5;
pub use sha256::sha256;

/// Fills `buf` with cryptographically secure random bytes from the OS.
///
/// Reads a 32-byte seed from `/dev/urandom` once per process and expands it
/// with ChaCha20, mixing in a per-call counter. If the OS entropy device is
/// unavailable (exotic sandboxes), falls back to a seed derived from the
/// clock, the process id, and ASLR-randomized addresses, printing a warning
/// to stderr — adequate for the tests and benches this workspace runs, but
/// **not** a CSPRNG; do not trust keys generated after that warning.
pub fn rand_bytes(buf: &mut [u8]) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    static SEED: OnceLock<[u8; 32]> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);

    let seed = SEED.get_or_init(|| {
        let mut s = [0u8; 32];
        if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
            use std::io::Read;
            if f.read_exact(&mut s).is_ok() {
                return s;
            }
        }
        // Fallback entropy: clock + pid + ASLR. This is guessable; key
        // material generated from it must not be trusted, so say so loudly
        // on the only channel a library has.
        eprintln!(
            "snowflake_crypto: WARNING: /dev/urandom unavailable; falling back to \
             low-entropy clock/pid/ASLR seeding. Generated keys are NOT secure."
        );
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default();
        let mut material = Vec::new();
        material.extend_from_slice(&now.as_nanos().to_be_bytes());
        material.extend_from_slice(&std::process::id().to_be_bytes());
        material.extend_from_slice(&(rand_bytes as *const () as usize).to_be_bytes());
        let local = 0u8;
        material.extend_from_slice(&(&local as *const u8 as usize).to_be_bytes());
        sha256(&material)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&n.to_be_bytes());
    chacha20::ChaCha20::new(seed, &nonce).fill_keystream(buf);
}

/// A deterministic ChaCha20-based byte stream for reproducible tests and
/// benchmarks.
///
/// Not for production use; it exists so examples and benches produce
/// identical keys on every run.
pub struct DetRng {
    cipher: chacha20::ChaCha20,
}

impl DetRng {
    /// Creates a deterministic generator from a seed label.
    pub fn new(seed: &[u8]) -> Self {
        let key = sha256(seed);
        DetRng {
            cipher: chacha20::ChaCha20::new(&key, &[0u8; 12]),
        }
    }

    /// Fills `buf` with the next bytes of the deterministic stream.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.cipher.fill_keystream(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_is_deterministic() {
        let mut a = DetRng::new(b"seed");
        let mut b = DetRng::new(b"seed");
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
        let mut c = DetRng::new(b"other");
        let mut bc = [0u8; 32];
        c.fill(&mut bc);
        assert_ne!(ba, bc);
    }

    #[test]
    fn os_rng_fills() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        rand_bytes(&mut a);
        rand_bytes(&mut b);
        assert_ne!(a, b, "two 256-bit draws colliding is vanishingly unlikely");
    }
}
