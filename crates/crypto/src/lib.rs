//! Cryptographic substrate for Snowflake, implemented from scratch.
//!
//! The paper's system rests on four cryptographic mechanisms:
//!
//! * **Hashes** — principals may be hashes of keys or of documents
//!   (`(hash md5 |…|)` in Figure 5); requests are authorized by proving that
//!   the *hash of the request* speaks for an issuer (§5.3).  We provide
//!   [`sha256()`] (the default) and [`md5()`] (for SPKI `md5` hash forms).
//! * **Signatures** — signed certificates are the leaves of every proof
//!   (§4.3).  The paper used 1024-bit RSA; this reproduction uses Schnorr
//!   signatures over a prime-order subgroup ([`schnorr`]), which preserves
//!   the cost asymmetry the measurements depend on (expensive public-key
//!   operations vs. cheap hashing).
//! * **Key exchange** — the ssh-like secure channel of §5.1 derives a
//!   session key with Diffie–Hellman ([`dh`]) over the same group.
//! * **Symmetric protection** — channel records are encrypted with
//!   [`chacha20`] and authenticated with [`hmac`]; the MAC-amortized signed
//!   request protocol of §5.3.1 uses HMAC as its message authentication code.
//!
//! No external cryptography crates are used anywhere in the workspace; the
//! only dependency is `rand` for entropy.

pub mod chacha20;
pub mod dh;
pub mod group;
pub mod hash;
pub mod hmac;
pub mod md5;
pub mod schnorr;
pub mod seal;
pub mod sha256;

pub use dh::DhSecret;
pub use group::Group;
pub use hash::{HashAlg, HashVal};
pub use schnorr::{KeyPair, PublicKey, Signature};
pub use seal::{open, seal, SealedBox};

pub use md5::md5;
pub use sha256::sha256;

/// Fills `buf` with cryptographically secure random bytes from the OS.
pub fn rand_bytes(buf: &mut [u8]) {
    use rand::RngCore;
    rand::rngs::OsRng.fill_bytes(buf);
}

/// A deterministic ChaCha20-based byte stream for reproducible tests and
/// benchmarks.
///
/// Not for production use; it exists so examples and benches produce
/// identical keys on every run.
pub struct DetRng {
    cipher: chacha20::ChaCha20,
}

impl DetRng {
    /// Creates a deterministic generator from a seed label.
    pub fn new(seed: &[u8]) -> Self {
        let key = sha256(seed);
        DetRng {
            cipher: chacha20::ChaCha20::new(&key, &[0u8; 12]),
        }
    }

    /// Fills `buf` with the next bytes of the deterministic stream.
    pub fn fill(&mut self, buf: &mut [u8]) {
        buf.fill(0);
        self.cipher.apply(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_is_deterministic() {
        let mut a = DetRng::new(b"seed");
        let mut b = DetRng::new(b"seed");
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
        let mut c = DetRng::new(b"other");
        let mut bc = [0u8; 32];
        c.fill(&mut bc);
        assert_ne!(ba, bc);
    }

    #[test]
    fn os_rng_fills() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        rand_bytes(&mut a);
        rand_bytes(&mut b);
        assert_ne!(a, b, "two 256-bit draws colliding is vanishingly unlikely");
    }
}
