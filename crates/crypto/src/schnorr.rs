//! Schnorr signatures over a prime-order subgroup.
//!
//! Signing: pick `k ← [1,q)`, compute `r = g^k mod p`,
//! `e = H(r ‖ m) mod q`, `s = k + x·e mod q`; the signature is `(e, s)`.
//! Verification recomputes `r' = g^s · y^{−e} mod p` (using `y^{q−e}` so no
//! modular inverse is needed — `y` has order `q`) and accepts iff
//! `H(r' ‖ m) mod q == e`.
//!
//! Keys serialize as SPKI-style S-expressions:
//! `(public-key (snowflake-schnorr (group <name>) (y |…|)))`, and a key's
//! *principal hash* is the SHA-256 of that canonical form — this is the
//! `(hash sha256 |…|)` that names a key in certificates, mirroring SPKI's
//! hashed-key principals.

use crate::group::Group;
use crate::hash::HashVal;
use crate::sha256::Sha256;
use snowflake_bigint::Ubig;
use snowflake_sexpr::{ParseError, Sexp};
use std::fmt;

/// A Schnorr public key: group parameters plus `y = g^x`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey {
    /// The group this key lives in.
    pub group: &'static Group,
    /// The public element `y = g^x mod p`.
    pub y: Ubig,
}

/// A Schnorr key pair (public key plus secret exponent).
#[derive(Clone)]
pub struct KeyPair {
    /// The public half.
    pub public: PublicKey,
    /// The secret exponent `x ∈ [1, q)`.
    x: Ubig,
}

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Challenge scalar `e = H(r ‖ m) mod q`.
    pub e: Ubig,
    /// Response scalar `s = k + x·e mod q`.
    pub s: Ubig,
}

impl KeyPair {
    /// Generates a key pair in `group` using the supplied entropy source.
    pub fn generate(group: &'static Group, rand_bytes: &mut dyn FnMut(&mut [u8])) -> Self {
        let x = group.random_exponent(rand_bytes);
        let y = group.power(&x);
        KeyPair {
            public: PublicKey { group, y },
            x,
        }
    }

    /// Generates a key pair with OS entropy.
    pub fn generate_os(group: &'static Group) -> Self {
        Self::generate(group, &mut crate::rand_bytes)
    }

    /// Signs `message` (typically the canonical encoding of a statement).
    pub fn sign(&self, message: &[u8], rand_bytes: &mut dyn FnMut(&mut [u8])) -> Signature {
        let group = self.public.group;
        loop {
            let k = group.random_exponent(rand_bytes);
            let r = group.power(&k);
            let e = challenge(group, &r, message);
            if e.is_zero() {
                continue; // astronomically unlikely; resample for cleanliness
            }
            let s = k.addm(&self.x.mulm(&e, &group.q), &group.q);
            return Signature { e, s };
        }
    }

    /// Signs with OS entropy.
    pub fn sign_os(&self, message: &[u8]) -> Signature {
        self.sign(message, &mut crate::rand_bytes)
    }

    /// Computes the static Diffie–Hellman point `peer^x mod p` (used by the
    /// sealed-box construction to open payloads sealed to this key).
    pub fn dh(&self, peer_point: &Ubig) -> Ubig {
        peer_point.modpow(&self.x, &self.public.group.p)
    }
}

impl PublicKey {
    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let group = self.group;
        if sig.e.is_zero() || sig.e >= group.q || sig.s >= group.q {
            return false;
        }
        if !group.is_element(&self.y) {
            return false;
        }
        // r' = g^s * y^(q - e) mod p  (y has order q, so y^(q-e) = y^(-e)).
        let gs = group.power(&sig.s);
        let y_neg_e = self.y.modpow(&group.q.sub(&sig.e), &group.p);
        let r = gs.mulm(&y_neg_e, &group.p);
        challenge(group, &r, message) == sig.e
    }

    /// Serializes to `(public-key (snowflake-schnorr (group …) (y |…|)))`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "public-key",
            vec![Sexp::tagged(
                "snowflake-schnorr",
                vec![
                    Sexp::tagged("group", vec![Sexp::from(self.group.name)]),
                    Sexp::tagged("y", vec![Sexp::atom(self.y.to_bytes_be())]),
                ],
            )],
        )
    }

    /// Parses the S-expression form produced by [`PublicKey::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Self, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("public-key") {
            return Err(bad("expected (public-key …)"));
        }
        let alg = e
            .tag_body()
            .and_then(|b| b.first())
            .ok_or_else(|| bad("public-key body missing"))?;
        if alg.tag_name() != Some("snowflake-schnorr") {
            return Err(bad("unsupported key algorithm"));
        }
        let group_name = alg
            .find_value("group")
            .and_then(Sexp::as_str)
            .ok_or_else(|| bad("missing group name"))?;
        let group = Group::by_name(group_name).ok_or_else(|| bad("unknown group"))?;
        let y_bytes = alg
            .find_value("y")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| bad("missing y"))?;
        let y = Ubig::from_bytes_be(y_bytes);
        if !group.is_element(&y) {
            return Err(bad("y is not a valid group element"));
        }
        Ok(PublicKey { group, y })
    }

    /// The key's principal hash: SHA-256 of its canonical S-expression.
    pub fn hash(&self) -> HashVal {
        HashVal::of_sexp(&self.to_sexp())
    }
}

impl Signature {
    /// Serializes to `(signature (e |…|) (s |…|))`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "signature",
            vec![
                Sexp::tagged("e", vec![Sexp::atom(self.e.to_bytes_be())]),
                Sexp::tagged("s", vec![Sexp::atom(self.s.to_bytes_be())]),
            ],
        )
    }

    /// Parses the form produced by [`Signature::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Self, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("signature") {
            return Err(bad("expected (signature …)"));
        }
        let ev = e
            .find_value("e")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| bad("missing e"))?;
        let sv = e
            .find_value("s")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| bad("missing s"))?;
        Ok(Signature {
            e: Ubig::from_bytes_be(ev),
            s: Ubig::from_bytes_be(sv),
        })
    }
}

/// `H(r ‖ m) mod q` with `r` in fixed-width big-endian form.
fn challenge(group: &Group, r: &Ubig, message: &[u8]) -> Ubig {
    let p_len = group.p.to_bytes_be().len();
    let mut h = Sha256::new();
    h.update(&r.to_bytes_be_padded(p_len));
    h.update(message);
    Ubig::from_bytes_be(&h.finish()).rem(&group.q)
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PublicKey({}, {})",
            self.group.name,
            self.hash().short_hex()
        )
    }
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret exponent.
        write!(f, "KeyPair({:?})", self.public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;

    fn det(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut rng = DetRng::new(seed.as_bytes());
        move |buf: &mut [u8]| rng.fill(buf)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let msg = b"it would be good to read file X";
        let sig = kp.sign(msg, &mut r);
        assert!(kp.public.verify(msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let sig = kp.sign(b"message one", &mut r);
        assert!(!kp.public.verify(b"message two", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut r = det("alice");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        let sig = alice.sign(b"msg", &mut r);
        assert!(!bob.public.verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let sig = kp.sign(b"msg", &mut r);
        let bad_e = Signature {
            e: sig.e.add(&Ubig::one()),
            s: sig.s.clone(),
        };
        let bad_s = Signature {
            e: sig.e.clone(),
            s: sig.s.add(&Ubig::one()),
        };
        assert!(!kp.public.verify(b"msg", &bad_e));
        assert!(!kp.public.verify(b"msg", &bad_s));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let q = &kp.public.group.q;
        let sig = Signature {
            e: q.clone(),
            s: Ubig::one(),
        };
        assert!(!kp.public.verify(b"msg", &sig));
        let sig = Signature {
            e: Ubig::zero(),
            s: Ubig::one(),
        };
        assert!(!kp.public.verify(b"msg", &sig));
    }

    #[test]
    fn key_sexp_roundtrip() {
        let mut r = det("carol");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let e = kp.public.to_sexp();
        let back = PublicKey::from_sexp(&e).unwrap();
        assert_eq!(back, kp.public);
        assert_eq!(back.hash(), kp.public.hash());
    }

    #[test]
    fn key_sexp_rejects_invalid_element() {
        let mut r = det("carol");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let mut e = kp.public.to_sexp();
        // Corrupt y to 1 (the identity, not a valid public element).
        if let Sexp::List(items) = &mut e {
            if let Sexp::List(alg) = &mut items[1] {
                alg[2] = Sexp::tagged("y", vec![Sexp::atom(vec![1u8])]);
            }
        }
        assert!(PublicKey::from_sexp(&e).is_err());
    }

    #[test]
    fn signature_sexp_roundtrip() {
        let mut r = det("dave");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let sig = kp.sign(b"hello", &mut r);
        let back = Signature::from_sexp(&sig.to_sexp()).unwrap();
        assert_eq!(back, sig);
        assert!(kp.public.verify(b"hello", &back));
    }

    #[test]
    fn group1024_works() {
        let mut r = det("big");
        let kp = KeyPair::generate(Group::group1024(), &mut r);
        let sig = kp.sign(b"expensive", &mut r);
        assert!(kp.public.verify(b"expensive", &sig));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut r = det("many");
        let a = KeyPair::generate(Group::test512(), &mut r);
        let b = KeyPair::generate(Group::test512(), &mut r);
        assert_ne!(a.public.hash(), b.public.hash());
    }

    #[test]
    fn debug_hides_secret() {
        let mut r = det("secret");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let dbg = format!("{kp:?}");
        assert!(
            !dbg.contains(&kp.x.to_hex()),
            "secret exponent must not leak via Debug"
        );
    }
}
