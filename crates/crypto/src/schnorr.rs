//! Schnorr signatures over a prime-order subgroup.
//!
//! Signing: pick `k ← [1,q)`, compute `r = g^k mod p`,
//! `e = H(r ‖ m) mod q`, `s = k + x·e mod q`; the signature is
//! `(e, s, r)`.  Verification checks `e == H(r ‖ m) mod q` and
//! `g^s == r · y^e mod p`; a legacy signature carrying only `(e, s)` is
//! verified by recomputing `r' = g^s · y^{q−e} mod p` (no modular inverse
//! needed — `y` has order `q`) and comparing challenges.  The two forms
//! accept exactly the same `(e, s)` pairs; carrying `r` is what makes the
//! fast paths possible:
//!
//! * both verification exponentiations become **fixed-base** (`g` from the
//!   group's static table, `y` from the per-key cache in `key_cache`), and
//! * N signatures can be checked as **one batch** ([`verify_batch`]) via a
//!   random linear combination — see `docs/authz.md` for the equation.
//!
//! Keys serialize as SPKI-style S-expressions:
//! `(public-key (snowflake-schnorr (group <name>) (y |…|)))`, and a key's
//! *principal hash* is the SHA-256 of that canonical form — this is the
//! `(hash sha256 |…|)` that names a key in certificates, mirroring SPKI's
//! hashed-key principals.

use crate::group::Group;
use crate::hash::HashVal;
use crate::key_cache;
use crate::sha256::Sha256;
use snowflake_bigint::{FixedBaseTable, Ubig};
use snowflake_sexpr::{ParseError, Sexp};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A Schnorr public key: group parameters plus `y = g^x`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey {
    /// The group this key lives in.
    pub group: &'static Group,
    /// The public element `y = g^x mod p`.
    pub y: Ubig,
}

/// A Schnorr key pair (public key plus secret exponent).
#[derive(Clone)]
pub struct KeyPair {
    /// The public half.
    pub public: PublicKey,
    /// The secret exponent `x ∈ [1, q)`.
    x: Ubig,
}

/// A Schnorr signature `(e, s)` with an optional commitment `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Challenge scalar `e = H(r ‖ m) mod q`.
    pub e: Ubig,
    /// Response scalar `s = k + x·e mod q`.
    pub s: Ubig,
    /// The commitment `r = g^k mod p`.
    ///
    /// Redundant given `(e, s)` — verifiers recompute it when absent —
    /// but carrying it turns verification into two fixed-base
    /// exponentiations and makes signatures batchable.  A signature whose
    /// carried `r` disagrees with the recomputed commitment is rejected,
    /// so the field cannot widen what verifies.
    pub r: Option<Ubig>,
}

impl KeyPair {
    /// Generates a key pair in `group` using the supplied entropy source.
    pub fn generate(group: &'static Group, rand_bytes: &mut dyn FnMut(&mut [u8])) -> Self {
        let x = group.random_exponent(rand_bytes);
        let y = group.power(&x);
        KeyPair {
            public: PublicKey { group, y },
            x,
        }
    }

    /// Generates a key pair with OS entropy.
    pub fn generate_os(group: &'static Group) -> Self {
        Self::generate(group, &mut crate::rand_bytes)
    }

    /// Signs `message` (typically the canonical encoding of a statement).
    pub fn sign(&self, message: &[u8], rand_bytes: &mut dyn FnMut(&mut [u8])) -> Signature {
        let group = self.public.group;
        loop {
            let k = group.random_exponent(rand_bytes);
            let r = group.power(&k);
            let e = challenge(group, &r, message);
            if e.is_zero() {
                continue; // astronomically unlikely; resample for cleanliness
            }
            let s = k.addm(&self.x.mulm(&e, &group.q), &group.q);
            return Signature { e, s, r: Some(r) };
        }
    }

    /// Signs with OS entropy.
    pub fn sign_os(&self, message: &[u8]) -> Signature {
        self.sign(message, &mut crate::rand_bytes)
    }

    /// Computes the static Diffie–Hellman point `peer^x mod p` (used by the
    /// sealed-box construction to open payloads sealed to this key).
    pub fn dh(&self, peer_point: &Ubig) -> Ubig {
        peer_point.modpow(&self.x, &self.public.group.p)
    }
}

impl PublicKey {
    /// Verifies `sig` over `message`.
    ///
    /// The fast path: the generator exponentiation uses the group's
    /// static fixed-base table, the `y` exponentiation uses the per-key
    /// table cache (built on a key's second sighting), the subgroup
    /// membership check on `y` is done once per key and remembered, and a
    /// signature carrying its commitment `r` skips the full recompute
    /// when the cheap hash binding check already fails.  Accepts exactly
    /// the same signatures as [`PublicKey::verify_uncached`] (proptested).
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let group = self.group;
        if sig.e.is_zero() || sig.e >= group.q || sig.s >= group.q {
            return false;
        }
        let sighting = key_cache::observe(self);
        let mut y_table = sighting.table;
        if !sighting.element_valid && !group.is_element(&self.y) {
            return false;
        }
        if y_table.is_none() {
            // The first *validated* sighting registers the key in the
            // cache; a later one promotes it to a fixed-base table.
            y_table = key_cache::confirm_element(self);
        }
        let y_pow = |exp: &Ubig| match &y_table {
            Some(t) => t.power(exp),
            None => self.y.modpow(exp, &group.p),
        };
        match &sig.r {
            Some(rc) => {
                // Hash binding first — it is the cheap check, and a
                // mismatched r can never verify (r is bound by e).
                if rc.is_zero() || rc >= &group.p || challenge(group, rc, message) != sig.e {
                    return false;
                }
                // g^s == r · y^e mod p  ⇔  r == g^s · y^(−e).
                group.power(&sig.s) == rc.mulm(&y_pow(&sig.e), &group.p)
            }
            None => {
                // r' = g^s * y^(q - e) mod p  (y has order q).
                let r = group.power(&sig.s).mulm(&y_pow(&group.q.sub(&sig.e)), &group.p);
                challenge(group, &r, message) == sig.e
            }
        }
    }

    /// Verifies `sig` over `message` with no precomputation, no caches,
    /// and plain square-and-multiply exponentiation.
    ///
    /// The reference implementation: proptests assert [`PublicKey::verify`]
    /// agrees with it on every input, and the crypto benches use it as the
    /// "before" baseline the fast paths are measured against.
    pub fn verify_uncached(&self, message: &[u8], sig: &Signature) -> bool {
        let group = self.group;
        if sig.e.is_zero() || sig.e >= group.q || sig.s >= group.q {
            return false;
        }
        let y = &self.y;
        if y.is_zero()
            || y.is_one()
            || y >= &group.p
            || !y.modpow_basic(&group.q, &group.p).is_one()
        {
            return false;
        }
        // r' = g^s * y^(q - e) mod p  (y has order q, so y^(q-e) = y^(-e)).
        let gs = group.g.modpow_basic(&sig.s, &group.p);
        let y_neg_e = y.modpow_basic(&group.q.sub(&sig.e), &group.p);
        let r = gs.mulm(&y_neg_e, &group.p);
        if let Some(rc) = &sig.r {
            if *rc != r {
                return false;
            }
        }
        challenge(group, &r, message) == sig.e
    }

    /// Serializes to `(public-key (snowflake-schnorr (group …) (y |…|)))`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "public-key",
            vec![Sexp::tagged(
                "snowflake-schnorr",
                vec![
                    Sexp::tagged("group", vec![Sexp::from(self.group.name)]),
                    Sexp::tagged("y", vec![Sexp::atom(self.y.to_bytes_be())]),
                ],
            )],
        )
    }

    /// Parses the S-expression form produced by [`PublicKey::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Self, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("public-key") {
            return Err(bad("expected (public-key …)"));
        }
        let alg = e
            .tag_body()
            .and_then(|b| b.first())
            .ok_or_else(|| bad("public-key body missing"))?;
        if alg.tag_name() != Some("snowflake-schnorr") {
            return Err(bad("unsupported key algorithm"));
        }
        let group_name = alg
            .find_value("group")
            .and_then(Sexp::as_str)
            .ok_or_else(|| bad("missing group name"))?;
        let group = Group::by_name(group_name).ok_or_else(|| bad("unknown group"))?;
        let y_bytes = alg
            .find_value("y")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| bad("missing y"))?;
        let y = Ubig::from_bytes_be(y_bytes);
        if !group.is_element(&y) {
            return Err(bad("y is not a valid group element"));
        }
        Ok(PublicKey { group, y })
    }

    /// The key's principal hash: SHA-256 of its canonical S-expression.
    pub fn hash(&self) -> HashVal {
        HashVal::of_sexp(&self.to_sexp())
    }
}

impl Signature {
    /// Serializes to `(signature (e |…|) (s |…|) (r |…|))`; the `(r …)`
    /// element is omitted for a signature not carrying its commitment.
    pub fn to_sexp(&self) -> Sexp {
        let mut body = vec![
            Sexp::tagged("e", vec![Sexp::atom(self.e.to_bytes_be())]),
            Sexp::tagged("s", vec![Sexp::atom(self.s.to_bytes_be())]),
        ];
        if let Some(r) = &self.r {
            body.push(Sexp::tagged("r", vec![Sexp::atom(r.to_bytes_be())]));
        }
        Sexp::tagged("signature", body)
    }

    /// Parses the form produced by [`Signature::to_sexp`]; `(r …)` is
    /// optional, so signatures from before commitments were carried still
    /// parse.
    pub fn from_sexp(e: &Sexp) -> Result<Self, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("signature") {
            return Err(bad("expected (signature …)"));
        }
        let ev = e
            .find_value("e")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| bad("missing e"))?;
        let sv = e
            .find_value("s")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| bad("missing s"))?;
        let rv = e.find_value("r").and_then(Sexp::as_atom);
        Ok(Signature {
            e: Ubig::from_bytes_be(ev),
            s: Ubig::from_bytes_be(sv),
            r: rv.map(Ubig::from_bytes_be),
        })
    }
}

/// One member of a batch verification: a signature to check against a
/// key and message.
#[derive(Clone, Copy)]
pub struct BatchEntry<'a> {
    /// The signer's public key.
    pub key: &'a PublicKey,
    /// The signed message bytes.
    pub message: &'a [u8],
    /// The signature to verify.
    pub sig: &'a Signature,
}

/// Result of [`verify_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Every member verifies.
    AllValid,
    /// At least one member is forged; the sorted indices (into the input
    /// slice) identify exactly which — each listed member fails
    /// individual verification, every unlisted member passes it.
    Invalid(Vec<usize>),
}

impl BatchOutcome {
    /// `true` when every member verified.
    pub fn is_all_valid(&self) -> bool {
        matches!(self, BatchOutcome::AllValid)
    }
}

/// Verifies a burst of signatures, sharing the exponentiation work.
///
/// For members that carry their commitment `r` (every signature this
/// library produces), a batch of N costs one multi-exponentiation plus
/// one subgroup check per member instead of N independent verifies: with
/// fresh random 128-bit coefficients `z_i`, checking
///
/// ```text
/// g^(Σ z_i·s_i mod q)  ==  Π r_i^(z_i) · Π_y y^(Σ_{i signed by y} z_i·e_i mod q)   (mod p)
/// ```
///
/// accepts a forged member with probability ≤ 2^-128 + ε.  Two per-member
/// preconditions make the random combination sound:
///
/// * the hash binding `e_i = H(r_i ‖ m_i)`, so an attacker cannot choose
///   `e_i` independently of `r_i`; and
/// * **order-q subgroup membership of every `r_i`** (`r_i^q mod p == 1`,
///   like the once-per-key check on `y`).  `Z_p^*` has cofactor
///   `(p−1)/q` with small factors (`−1` at least), and a commitment
///   smuggling a small-order component — e.g. `r' = −g^k`, which
///   individual verification always rejects — would contribute a
///   residual of order ℓ that the random `z_i` only catch with
///   probability `1 − 1/ℓ`.  With every element confined to the order-q
///   subgroup, any nonzero residual has prime order `q > 2^128` and the
///   128 bits of `z_i` deliver the advertised bound.
///
/// On batch failure every member is re-verified individually so the
/// outcome pinpoints exactly the forged members — the batch never
/// changes *what* verifies, only *how fast*.  The subgroup checks are
/// the dominant batch cost (one `q`-sized exponentiation per member),
/// still well under the two-plus exponentiations of an uncached
/// individual verify.
///
/// Members without `r`, members in non-batchable singleton positions, and
/// members whose structural/hash checks already fail are verified (or
/// rejected) individually; mixed groups are batched per group.
pub fn verify_batch(entries: &[BatchEntry<'_>]) -> BatchOutcome {
    verify_batch_with(entries, &mut crate::rand_bytes)
}

/// [`verify_batch`] with an injected entropy source for the combination
/// coefficients (deterministic tests; production callers want
/// [`verify_batch`]).
pub fn verify_batch_with(
    entries: &[BatchEntry<'_>],
    rand_bytes: &mut dyn FnMut(&mut [u8]),
) -> BatchOutcome {
    let mut invalid: Vec<usize> = Vec::new();
    // Partition: r-carrying members batch per group; the rest verify
    // individually (their commitment must be recomputed anyway, which is
    // the whole cost a batch would share).
    let mut buckets: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, en) in entries.iter().enumerate() {
        if en.sig.r.is_some() && entries.len() >= 2 {
            buckets
                .entry(en.key.group as *const Group as usize)
                .or_default()
                .push(i);
        } else if !en.key.verify(en.message, en.sig) {
            invalid.push(i);
        }
    }
    for members in buckets.values() {
        batch_one_group(entries, members, rand_bytes, &mut invalid);
    }
    if invalid.is_empty() {
        BatchOutcome::AllValid
    } else {
        invalid.sort_unstable();
        BatchOutcome::Invalid(invalid)
    }
}

/// Batch-verifies `members` (indices into `entries`), all r-carrying and
/// in one group, appending the indices of forged members to `invalid`.
fn batch_one_group(
    entries: &[BatchEntry<'_>],
    members: &[usize],
    rand_bytes: &mut dyn FnMut(&mut [u8]),
    invalid: &mut Vec<usize>,
) {
    let group = entries[members[0]].key.group;
    // Per-member structural and hash-binding checks.  A failure here is
    // definitive (e = H(r ‖ m) binds r), so the member is rejected without
    // touching big-int exponentiation; survivors enter the combination.
    let mut live: Vec<usize> = Vec::with_capacity(members.len());
    for &i in members {
        let en = &entries[i];
        let sig = en.sig;
        let r = sig.r.as_ref().expect("bucketed members carry r");
        if sig.e.is_zero()
            || sig.e >= group.q
            || sig.s >= group.q
            || r.is_zero()
            || r >= &group.p
            || challenge(group, r, en.message) != sig.e
        {
            invalid.push(i);
            continue;
        }
        live.push(i);
    }
    // Subgroup membership per distinct key (cached across batches),
    // collecting any promoted fixed-base table for the per-key factors.
    let mut key_ok: HashMap<&Ubig, bool> = HashMap::new();
    let mut y_tables: HashMap<&Ubig, Arc<FixedBaseTable>> = HashMap::new();
    live.retain(|&i| {
        let key = entries[i].key;
        let ok = match key_ok.get(&key.y) {
            Some(&ok) => ok,
            None => {
                let sighting = key_cache::observe(key);
                let valid = sighting.element_valid || group.is_element(&key.y);
                let mut table = sighting.table;
                if valid && table.is_none() {
                    table = key_cache::confirm_element(key);
                }
                if let Some(t) = table {
                    y_tables.insert(&key.y, t);
                }
                key_ok.insert(&key.y, valid);
                valid
            }
        };
        if !ok {
            invalid.push(i);
        }
        ok
    });
    if live.len() < 2 {
        for &i in &live {
            if !entries[i].key.verify(entries[i].message, entries[i].sig) {
                invalid.push(i);
            }
        }
        return;
    }
    // Order-q subgroup membership of every carried commitment — the
    // combination is only sound over the prime-order subgroup (see
    // [`verify_batch`]).  A commitment outside it can never satisfy
    // `g^s == r · y^e` (the left side and `y^e` both have order q), so
    // failing members are definitively forged, no individual re-verify
    // needed.
    live.retain(|&i| {
        let r = entries[i].sig.r.as_ref().expect("live members carry r");
        let ok = r.modpow(&group.q, &group.p).is_one();
        if !ok {
            invalid.push(i);
        }
        ok
    });
    if live.len() < 2 {
        for &i in &live {
            if !entries[i].key.verify(entries[i].message, entries[i].sig) {
                invalid.push(i);
            }
        }
        return;
    }
    // Random linear combination: a = Σ z_i·s_i and per-key b_y = Σ z_i·e_i
    // reduced mod q (g and y have order q); r_i keeps its raw 128-bit z_i.
    let mut a = Ubig::zero();
    let mut per_key: HashMap<&Ubig, Ubig> = HashMap::new();
    let mut r_terms: Vec<(&Ubig, u128)> = Vec::with_capacity(live.len());
    for &i in &live {
        let en = &entries[i];
        let z = loop {
            let mut buf = [0u8; 16];
            rand_bytes(&mut buf);
            let z = u128::from_be_bytes(buf);
            if z != 0 {
                break z;
            }
        };
        let zu = Ubig::from_bytes_be(&z.to_be_bytes());
        a = a.addm(&zu.mulm(&en.sig.s, &group.q), &group.q);
        let b = per_key.entry(&en.key.y).or_insert_with(Ubig::zero);
        *b = b.addm(&zu.mulm(&en.sig.e, &group.q), &group.q);
        r_terms.push((en.sig.r.as_ref().expect("live members carry r"), z));
    }
    let lhs = group.power(&a);
    let mut rhs = multi_exp(&r_terms, &group.p);
    for (y, b) in &per_key {
        let y_pow = match y_tables.get(*y) {
            Some(t) => t.power(b),
            None => y.modpow(b, &group.p),
        };
        rhs = rhs.mulm(&y_pow, &group.p);
    }
    if lhs == rhs {
        return;
    }
    // The combination failed: at least one member is forged.  Individual
    // verification is ground truth and pinpoints exactly which.
    for &i in &live {
        if !entries[i].key.verify(entries[i].message, entries[i].sig) {
            invalid.push(i);
        }
    }
}

/// Computes `Π base_i^(z_i) mod m` with shared squarings: radix-16 digits
/// of the 128-bit exponents give 128 squarings total (independent of N)
/// plus ~30 multiplies per member, versus ~190 multiplies each for
/// separate 128-bit exponentiations.
fn multi_exp(pairs: &[(&Ubig, u128)], m: &Ubig) -> Ubig {
    // tables[i][d-1] = base_i^d for digits d ∈ 1..=15.
    let tables: Vec<Vec<Ubig>> = pairs
        .iter()
        .map(|(base, _)| {
            let mut t = Vec::with_capacity(15);
            t.push((*base).clone());
            for d in 2..16 {
                let next = t[d - 2].mulm(base, m);
                t.push(next);
            }
            t
        })
        .collect();
    let mut acc = Ubig::one();
    for digit in (0..32).rev() {
        if !acc.is_one() {
            for _ in 0..4 {
                acc = acc.mulm(&acc, m);
            }
        }
        for (i, (_, z)) in pairs.iter().enumerate() {
            let d = ((z >> (4 * digit)) & 0xf) as usize;
            if d != 0 {
                acc = acc.mulm(&tables[i][d - 1], m);
            }
        }
    }
    acc
}

/// `H(r ‖ m) mod q` with `r` in fixed-width big-endian form.
fn challenge(group: &Group, r: &Ubig, message: &[u8]) -> Ubig {
    let p_len = group.p.to_bytes_be().len();
    let mut h = Sha256::new();
    h.update(&r.to_bytes_be_padded(p_len));
    h.update(message);
    Ubig::from_bytes_be(&h.finish()).rem(&group.q)
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PublicKey({}, {})",
            self.group.name,
            self.hash().short_hex()
        )
    }
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret exponent.
        write!(f, "KeyPair({:?})", self.public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;

    fn det(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut rng = DetRng::new(seed.as_bytes());
        move |buf: &mut [u8]| rng.fill(buf)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let msg = b"it would be good to read file X";
        let sig = kp.sign(msg, &mut r);
        assert!(kp.public.verify(msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let sig = kp.sign(b"message one", &mut r);
        assert!(!kp.public.verify(b"message two", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut r = det("alice");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        let sig = alice.sign(b"msg", &mut r);
        assert!(!bob.public.verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let sig = kp.sign(b"msg", &mut r);
        for r in [sig.r.clone(), None] {
            let bad_e = Signature {
                e: sig.e.add(&Ubig::one()),
                s: sig.s.clone(),
                r: r.clone(),
            };
            let bad_s = Signature {
                e: sig.e.clone(),
                s: sig.s.add(&Ubig::one()),
                r: r.clone(),
            };
            assert!(!kp.public.verify(b"msg", &bad_e));
            assert!(!kp.public.verify(b"msg", &bad_s));
            assert!(!kp.public.verify_uncached(b"msg", &bad_e));
            assert!(!kp.public.verify_uncached(b"msg", &bad_s));
        }
        let bad_r = Signature {
            e: sig.e.clone(),
            s: sig.s.clone(),
            r: Some(sig.r.clone().unwrap().add(&Ubig::one())),
        };
        assert!(!kp.public.verify(b"msg", &bad_r));
        assert!(!kp.public.verify_uncached(b"msg", &bad_r));
    }

    #[test]
    fn commitment_stripped_signature_still_verifies() {
        // The legacy (e, s)-only wire form accepts the same pairs.
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let sig = kp.sign(b"msg", &mut r);
        let stripped = Signature {
            e: sig.e.clone(),
            s: sig.s.clone(),
            r: None,
        };
        assert!(kp.public.verify(b"msg", &stripped));
        assert!(kp.public.verify_uncached(b"msg", &stripped));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let mut r = det("alice");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let q = &kp.public.group.q;
        let sig = Signature {
            e: q.clone(),
            s: Ubig::one(),
            r: None,
        };
        assert!(!kp.public.verify(b"msg", &sig));
        let sig = Signature {
            e: Ubig::zero(),
            s: Ubig::one(),
            r: None,
        };
        assert!(!kp.public.verify(b"msg", &sig));
    }

    #[test]
    fn key_sexp_roundtrip() {
        let mut r = det("carol");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let e = kp.public.to_sexp();
        let back = PublicKey::from_sexp(&e).unwrap();
        assert_eq!(back, kp.public);
        assert_eq!(back.hash(), kp.public.hash());
    }

    #[test]
    fn key_sexp_rejects_invalid_element() {
        let mut r = det("carol");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let mut e = kp.public.to_sexp();
        // Corrupt y to 1 (the identity, not a valid public element).
        if let Sexp::List(items) = &mut e {
            if let Sexp::List(alg) = &mut items[1] {
                alg[2] = Sexp::tagged("y", vec![Sexp::atom(vec![1u8])]);
            }
        }
        assert!(PublicKey::from_sexp(&e).is_err());
    }

    #[test]
    fn signature_sexp_roundtrip() {
        let mut r = det("dave");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let sig = kp.sign(b"hello", &mut r);
        let back = Signature::from_sexp(&sig.to_sexp()).unwrap();
        assert_eq!(back, sig);
        assert!(kp.public.verify(b"hello", &back));
    }

    #[test]
    fn group1024_works() {
        let mut r = det("big");
        let kp = KeyPair::generate(Group::group1024(), &mut r);
        let sig = kp.sign(b"expensive", &mut r);
        assert!(kp.public.verify(b"expensive", &sig));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut r = det("many");
        let a = KeyPair::generate(Group::test512(), &mut r);
        let b = KeyPair::generate(Group::test512(), &mut r);
        assert_ne!(a.public.hash(), b.public.hash());
    }

    #[test]
    fn batch_accepts_valid_burst() {
        let mut r = det("batch-ok");
        let issuers: Vec<KeyPair> = (0..3)
            .map(|_| KeyPair::generate(Group::test512(), &mut r))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..16).map(|i| format!("cert {i}").into_bytes()).collect();
        let sigs: Vec<Signature> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| issuers[i % 3].sign(m, &mut r))
            .collect();
        let entries: Vec<BatchEntry<'_>> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| BatchEntry {
                key: &issuers[i % 3].public,
                message: m,
                sig: &sigs[i],
            })
            .collect();
        assert_eq!(verify_batch_with(&entries, &mut r), BatchOutcome::AllValid);
    }

    #[test]
    fn batch_pinpoints_forged_member() {
        let mut r = det("batch-forge");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let msgs: Vec<Vec<u8>> = (0..8).map(|i| format!("m{i}").into_bytes()).collect();
        let mut sigs: Vec<Signature> = msgs.iter().map(|m| kp.sign(m, &mut r)).collect();
        sigs[5].s = sigs[5].s.add(&Ubig::one());
        let entries: Vec<BatchEntry<'_>> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| BatchEntry {
                key: &kp.public,
                message: m,
                sig: &sigs[i],
            })
            .collect();
        assert_eq!(
            verify_batch_with(&entries, &mut r),
            BatchOutcome::Invalid(vec![5])
        );
    }

    #[test]
    fn batch_rejects_small_order_commitment() {
        // A malicious signer who knows x can publish (r' = −g^k mod p,
        // e = H(r' ‖ m), s = k + x·e): the hash binding holds, individual
        // verification rejects it (g^s == r'·y^e fails on the sign), but
        // without the subgroup check on carried commitments its batch
        // residual is (−1)^{z_i}, which cancels whenever the random
        // 128-bit coefficient is even — the batch would accept a
        // signature the individual path rejects about half the time.
        let mut r = det("small-order");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let group = kp.public.group;
        let msg = b"forged under cofactor cover".to_vec();
        let honest_msgs: Vec<Vec<u8>> =
            (0..3).map(|i| format!("honest {i}").into_bytes()).collect();
        let honest: Vec<Signature> = honest_msgs.iter().map(|m| kp.sign(m, &mut r)).collect();
        let mut trials = 0;
        while trials < 16 {
            let k = group.random_exponent(&mut r);
            let neg_r = group.p.sub(&group.power(&k)); // −g^k mod p
            let e = challenge(group, &neg_r, &msg);
            if e.is_zero() {
                continue;
            }
            trials += 1;
            let s = k.addm(&kp.x.mulm(&e, &group.q), &group.q);
            let forged = Signature {
                e,
                s,
                r: Some(neg_r),
            };
            assert!(!kp.public.verify(&msg, &forged));
            assert!(!kp.public.verify_uncached(&msg, &forged));
            let mut ens: Vec<BatchEntry<'_>> = honest_msgs
                .iter()
                .zip(&honest)
                .map(|(m, sig)| BatchEntry {
                    key: &kp.public,
                    message: m,
                    sig,
                })
                .collect();
            ens.push(BatchEntry {
                key: &kp.public,
                message: &msg,
                sig: &forged,
            });
            let mut zr = det(&format!("small-order-z-{trials}"));
            assert_eq!(
                verify_batch_with(&ens, &mut zr),
                BatchOutcome::Invalid(vec![3]),
                "cofactor forgery must never survive the batch"
            );
        }
    }

    #[test]
    fn batch_handles_commitment_free_members() {
        let mut r = det("batch-legacy");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let msgs: Vec<Vec<u8>> = (0..4).map(|i| format!("m{i}").into_bytes()).collect();
        let mut sigs: Vec<Signature> = msgs.iter().map(|m| kp.sign(m, &mut r)).collect();
        sigs[1].r = None; // legacy wire form drops into the individual path
        let entries: Vec<BatchEntry<'_>> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| BatchEntry {
                key: &kp.public,
                message: m,
                sig: &sigs[i],
            })
            .collect();
        assert_eq!(verify_batch_with(&entries, &mut r), BatchOutcome::AllValid);
    }

    #[test]
    fn batch_mixed_groups() {
        let mut r = det("batch-mixed");
        let small = KeyPair::generate(Group::test512(), &mut r);
        let big = KeyPair::generate(Group::group1024(), &mut r);
        let msg = b"cross-group burst".to_vec();
        let s1 = small.sign(&msg, &mut r);
        let s2 = big.sign(&msg, &mut r);
        let mut bad = small.sign(&msg, &mut r);
        bad.e = bad.e.add(&Ubig::one()).rem(&Group::test512().q);
        let entries = vec![
            BatchEntry { key: &small.public, message: &msg, sig: &s1 },
            BatchEntry { key: &big.public, message: &msg, sig: &s2 },
            BatchEntry { key: &small.public, message: &msg, sig: &bad },
            BatchEntry { key: &big.public, message: &msg, sig: &s2 },
        ];
        assert_eq!(
            verify_batch_with(&entries, &mut r),
            BatchOutcome::Invalid(vec![2])
        );
    }

    #[test]
    fn debug_hides_secret() {
        let mut r = det("secret");
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let dbg = format!("{kp:?}");
        assert!(
            !dbg.contains(&kp.x.to_hex()),
            "secret exponent must not leak via Debug"
        );
    }
}
