//! Hash values as first-class objects.
//!
//! In Snowflake, hashes *are principals*: "the binary representation of a
//! statement itself" and hashed keys and documents all appear as
//! `(hash <alg> |bytes|)` S-expressions (paper Figures 1 and 5).  This module
//! provides the algorithm-tagged hash value used throughout the workspace.

use crate::{md5, sha256};
use snowflake_sexpr::{ParseError, Sexp};
use std::fmt;

/// Hash algorithm identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HashAlg {
    /// SHA-256 — the default algorithm for all Snowflake objects.
    Sha256,
    /// MD5 — provided for SPKI `(hash md5 …)` interoperability only.
    Md5,
}

impl HashAlg {
    /// The SPKI token naming this algorithm.
    pub fn name(self) -> &'static str {
        match self {
            HashAlg::Sha256 => "sha256",
            HashAlg::Md5 => "md5",
        }
    }

    /// Looks an algorithm up by its SPKI token.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sha256" => Some(HashAlg::Sha256),
            "md5" => Some(HashAlg::Md5),
            _ => None,
        }
    }

    /// Digest length in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlg::Sha256 => 32,
            HashAlg::Md5 => 16,
        }
    }
}

/// An algorithm-tagged hash value.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HashVal {
    /// Which algorithm produced this digest.
    pub alg: HashAlg,
    /// The digest bytes (length matches `alg.digest_len()`).
    pub bytes: Vec<u8>,
}

impl HashVal {
    /// Hashes `data` with the given algorithm.
    pub fn digest(alg: HashAlg, data: &[u8]) -> Self {
        let bytes = match alg {
            HashAlg::Sha256 => sha256(data).to_vec(),
            HashAlg::Md5 => md5(data).to_vec(),
        };
        HashVal { alg, bytes }
    }

    /// Hashes with the workspace default (SHA-256).
    pub fn of(data: &[u8]) -> Self {
        Self::digest(HashAlg::Sha256, data)
    }

    /// Hashes the canonical encoding of an S-expression.
    pub fn of_sexp(e: &Sexp) -> Self {
        Self::of(&e.canonical())
    }

    /// Renders as the SPKI form `(hash <alg> |digest|)`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "hash",
            vec![Sexp::from(self.alg.name()), Sexp::atom(self.bytes.clone())],
        )
    }

    /// Parses the SPKI form `(hash <alg> |digest|)`.
    pub fn from_sexp(e: &Sexp) -> Result<Self, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("hash") {
            return Err(bad("expected (hash alg bytes)"));
        }
        let body = e.tag_body().ok_or_else(|| bad("hash body missing"))?;
        if body.len() != 2 {
            return Err(bad("hash needs exactly alg + digest"));
        }
        let alg = body[0]
            .as_str()
            .and_then(HashAlg::from_name)
            .ok_or_else(|| bad("unknown hash algorithm"))?;
        let bytes = body[1]
            .as_atom()
            .ok_or_else(|| bad("digest must be an atom"))?
            .to_vec();
        if bytes.len() != alg.digest_len() {
            return Err(bad("digest length mismatch"));
        }
        Ok(HashVal { alg, bytes })
    }

    /// Short hex prefix for human-readable debugging output.
    pub fn short_hex(&self) -> String {
        snowflake_sexpr::hex_encode(&self.bytes[..self.bytes.len().min(6)])
    }
}

impl fmt::Debug for HashVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.alg.name(), self.short_hex())
    }
}

impl fmt::Display for HashVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}",
            self.alg.name(),
            snowflake_sexpr::hex_encode(&self.bytes)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_dispatch() {
        assert_eq!(HashVal::digest(HashAlg::Sha256, b"abc").bytes.len(), 32);
        assert_eq!(HashVal::digest(HashAlg::Md5, b"abc").bytes.len(), 16);
        assert_ne!(
            HashVal::digest(HashAlg::Sha256, b"a"),
            HashVal::digest(HashAlg::Sha256, b"b")
        );
    }

    #[test]
    fn sexp_roundtrip() {
        for alg in [HashAlg::Sha256, HashAlg::Md5] {
            let h = HashVal::digest(alg, b"document");
            let e = h.to_sexp();
            assert_eq!(HashVal::from_sexp(&e).unwrap(), h);
        }
    }

    #[test]
    fn sexp_rejects_malformed() {
        use snowflake_sexpr::sexp;
        assert!(HashVal::from_sexp(&sexp!["hash", "sha256"]).is_err());
        assert!(HashVal::from_sexp(&sexp!["hash", "blake3", "xx"]).is_err());
        assert!(HashVal::from_sexp(&sexp!["nothash", "md5", "xx"]).is_err());
        // Wrong digest length.
        let short = Sexp::tagged(
            "hash",
            vec![Sexp::from("sha256"), Sexp::atom(vec![1, 2, 3])],
        );
        assert!(HashVal::from_sexp(&short).is_err());
    }

    #[test]
    fn of_sexp_is_canonical_hash() {
        let e = Sexp::tagged("x", vec![Sexp::from("y")]);
        assert_eq!(HashVal::of_sexp(&e), HashVal::of(&e.canonical()));
    }
}
