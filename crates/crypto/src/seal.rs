//! Sealed boxes: public-key authenticated encryption.
//!
//! Implements the paper's §9 future-work direction — "a gateway that
//! operates with only partial access to the information it translates,
//! passing from server to client encrypted content that it need not view
//! to accomplish its task."  A server *seals* a payload to the client's
//! public key; intermediaries relay the sealed bytes (and the usual
//! authorization proofs about their hash) without the ability to read
//! them.
//!
//! Construction: ephemeral-static Diffie–Hellman.  The sender draws an
//! ephemeral exponent, derives `k = KDF(DH(eph, recipient) ‖ context)`,
//! encrypts with ChaCha20, and authenticates ciphertext + ephemeral share
//! with HMAC-SHA256.  The recipient recomputes `k` from its private key.

use crate::chacha20::ChaCha20;
use crate::group::Group;
use crate::hmac::{ct_eq, derive_key, hmac_sha256};
use crate::schnorr::{KeyPair, PublicKey};
use snowflake_bigint::Ubig;
use snowflake_sexpr::Sexp;

/// A sealed payload: ephemeral share, ciphertext, and MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBox {
    /// The sender's ephemeral public share `g^e`.
    pub ephemeral: Ubig,
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC over ephemeral ‖ ciphertext.
    pub mac: [u8; 32],
}

const CONTEXT: &[u8] = b"snowflake-sealed-box-v1";

fn keys_for(shared: &[u8; 32]) -> ([u8; 32], [u8; 32]) {
    (
        derive_key(shared, b"seal-enc"),
        derive_key(shared, b"seal-mac"),
    )
}

/// Seals `plaintext` to `recipient`.
///
/// Returns `None` only if the recipient's key is invalid for its group
/// (cannot happen for keys produced by this library).
pub fn seal(
    recipient: &PublicKey,
    plaintext: &[u8],
    rand_bytes: &mut dyn FnMut(&mut [u8]),
) -> Option<SealedBox> {
    let group = recipient.group;
    let e = group.random_exponent(rand_bytes);
    let ephemeral = group.power(&e);
    let shared_point = recipient.y.modpow(&e, &group.p);
    let shared = shared_secret(group, &shared_point);

    let (enc_key, mac_key) = keys_for(&shared);
    let mut ciphertext = plaintext.to_vec();
    ChaCha20::new(&enc_key, &[0u8; 12]).apply(&mut ciphertext);
    let mac = seal_mac(&mac_key, group, &ephemeral, &ciphertext);
    Some(SealedBox {
        ephemeral,
        ciphertext,
        mac,
    })
}

/// Opens a sealed box with the recipient's key pair.
///
/// Returns `None` on any authenticity failure.
pub fn open(recipient: &KeyPair, sealed: &SealedBox) -> Option<Vec<u8>> {
    let group = recipient.public.group;
    if !group.is_element(&sealed.ephemeral) {
        return None;
    }
    let shared_point = recipient.dh(&sealed.ephemeral);
    let shared = shared_secret(group, &shared_point);
    let (enc_key, mac_key) = keys_for(&shared);
    let expect = seal_mac(&mac_key, group, &sealed.ephemeral, &sealed.ciphertext);
    if !ct_eq(&expect, &sealed.mac) {
        return None;
    }
    let mut plaintext = sealed.ciphertext.clone();
    ChaCha20::new(&enc_key, &[0u8; 12]).apply(&mut plaintext);
    Some(plaintext)
}

fn shared_secret(group: &Group, point: &Ubig) -> [u8; 32] {
    let p_len = group.p.to_bytes_be().len();
    let mut input = point.to_bytes_be_padded(p_len);
    input.extend_from_slice(CONTEXT);
    crate::sha256(&input)
}

fn seal_mac(mac_key: &[u8; 32], group: &Group, ephemeral: &Ubig, ciphertext: &[u8]) -> [u8; 32] {
    let p_len = group.p.to_bytes_be().len();
    let mut input = ephemeral.to_bytes_be_padded(p_len);
    input.extend_from_slice(ciphertext);
    hmac_sha256(mac_key, &input)
}

impl SealedBox {
    /// Serializes to `(sealed (eph |…|) (ct |…|) (mac |…|))`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "sealed",
            vec![
                Sexp::tagged("eph", vec![Sexp::atom(self.ephemeral.to_bytes_be())]),
                Sexp::tagged("ct", vec![Sexp::atom(self.ciphertext.clone())]),
                Sexp::tagged("mac", vec![Sexp::atom(self.mac.to_vec())]),
            ],
        )
    }

    /// Parses the form produced by [`SealedBox::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Option<SealedBox> {
        if e.tag_name() != Some("sealed") {
            return None;
        }
        let eph = e.find_value("eph")?.as_atom()?;
        let ct = e.find_value("ct")?.as_atom()?.to_vec();
        let mac_bytes = e.find_value("mac")?.as_atom()?;
        let mac: [u8; 32] = mac_bytes.try_into().ok()?;
        Some(SealedBox {
            ephemeral: Ubig::from_bytes_be(eph),
            ciphertext: ct,
            mac,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;

    fn det(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut r = DetRng::new(seed.as_bytes());
        move |b: &mut [u8]| r.fill(b)
    }

    #[test]
    fn seal_open_roundtrip() {
        let mut r = det("seal");
        let recipient = KeyPair::generate(Group::test512(), &mut r);
        let msg = b"for the client's eyes only";
        let sealed = seal(&recipient.public, msg, &mut r).unwrap();
        assert_ne!(sealed.ciphertext, msg.to_vec());
        assert_eq!(open(&recipient, &sealed).unwrap(), msg);
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let mut r = det("seal2");
        let recipient = KeyPair::generate(Group::test512(), &mut r);
        let eavesdropper = KeyPair::generate(Group::test512(), &mut r);
        let sealed = seal(&recipient.public, b"secret", &mut r).unwrap();
        assert!(open(&eavesdropper, &sealed).is_none());
    }

    #[test]
    fn tampering_detected() {
        let mut r = det("seal3");
        let recipient = KeyPair::generate(Group::test512(), &mut r);
        let sealed = seal(&recipient.public, b"payload bytes", &mut r).unwrap();
        let mut bad_ct = sealed.clone();
        bad_ct.ciphertext[0] ^= 1;
        assert!(open(&recipient, &bad_ct).is_none());
        let mut bad_mac = sealed.clone();
        bad_mac.mac[0] ^= 1;
        assert!(open(&recipient, &bad_mac).is_none());
        let mut bad_eph = sealed;
        bad_eph.ephemeral = Ubig::one();
        assert!(open(&recipient, &bad_eph).is_none());
    }

    #[test]
    fn sexp_roundtrip() {
        let mut r = det("seal4");
        let recipient = KeyPair::generate(Group::test512(), &mut r);
        let sealed = seal(&recipient.public, b"wire me", &mut r).unwrap();
        let back = SealedBox::from_sexp(&sealed.to_sexp()).unwrap();
        assert_eq!(back, sealed);
        assert_eq!(open(&recipient, &back).unwrap(), b"wire me");
    }

    #[test]
    fn empty_and_large_payloads() {
        let mut r = det("seal5");
        let recipient = KeyPair::generate(Group::test512(), &mut r);
        for len in [0usize, 1, 64 * 1024] {
            let msg = vec![0x5au8; len];
            let sealed = seal(&recipient.public, &msg, &mut r).unwrap();
            assert_eq!(open(&recipient, &sealed).unwrap(), msg);
        }
    }
}
