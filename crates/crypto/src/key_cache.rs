//! Per-issuer fixed-base table cache for Schnorr verification.
//!
//! Verification exponentiates two bases: the group generator `g` (whose
//! table lives with the `&'static Group`) and the signer's public element
//! `y`.  Issuer keys are few and long-lived — a handful of authorities
//! sign almost every certificate a verifier sees — so a small process-wide
//! cache of per-`y` tables pays for itself after a couple of verifies.
//!
//! The cache sits on every signature verification across every server
//! surface, so its design leans defensive:
//!
//! * **Sharded, clone-free lookups.** Sixteen shards keyed by a cheap
//!   64-bit fingerprint of `(group, y)` keep concurrent verifies off one
//!   another's locks, and a lookup never clones the key's big integer —
//!   the fingerprint indexes the shard map and the stored `y` is compared
//!   in place (a fingerprint collision with a *different* key is treated
//!   as a miss, never served the colliding entry).
//! * **Only validated keys are tracked.** An entry is inserted by
//!   [`confirm_element`], i.e. only after the key has passed its
//!   subgroup-membership check — so an attacker streaming distinct bogus
//!   public keys never touches the map and cannot evict a promoted
//!   issuer table.  Eviction within a shard prefers entries that have not
//!   earned a table yet, so even a flood of *valid* one-shot keys leaves
//!   promoted issuer tables standing as long as anything else can go.
//! * **Promotion threshold.** Building a table costs roughly two to three
//!   generic exponentiations, and some keys are seen exactly once (e.g. a
//!   client key during MAC establishment).  A table is therefore built on
//!   the *second* validated sighting of a key, never the first.
//! * **Cached membership.** `is_element(y)` is itself a full `q`-sized
//!   exponentiation.  `y` and the group parameters are immutable, so a
//!   membership check done once per key is sound to reuse; an entry's
//!   presence in the map records it.
//!
//! Signing never consults this cache: the signer exponentiates only the
//! generator (`r = g^k`), never its own `y`, so there is nothing for a
//! per-key table to accelerate (see `docs/authz.md`).

use crate::group::Group;
use crate::schnorr::PublicKey;
use snowflake_bigint::{FixedBaseTable, Ubig};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Lock shards; verifies for different issuers proceed concurrently.
const SHARDS: usize = 16;
/// Maximum validated keys tracked per shard (128 process-wide).
const SHARD_CAP: usize = 8;
/// Validated sightings before a key's table is built (never on the first).
const PROMOTE_AT: u64 = 2;

struct Entry {
    /// The group's static identity, for collision comparison.
    group: usize,
    /// The public element, for collision comparison (cloned once, at
    /// insert — lookups compare in place).
    y: Ubig,
    /// Validated sightings of this key.
    seen: u64,
    table: Option<Arc<FixedBaseTable>>,
}

impl Entry {
    fn matches(&self, group: usize, key: &PublicKey) -> bool {
        self.group == group && self.y == key.y
    }
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    /// Insertion order (fingerprints); kept in sync with `map`.
    order: Vec<u64>,
}

static SHARDS_CELL: OnceLock<Vec<Mutex<Shard>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static BUILDS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

fn shards() -> &'static Vec<Mutex<Shard>> {
    SHARDS_CELL.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect())
}

/// A 64-bit fingerprint of `(group, y)`: shard selector and map key.
/// Collisions are survivable (compared against the stored key), just
/// cache-defeating for the colliding pair.
fn fingerprint(key: &PublicKey) -> u64 {
    let mut h = DefaultHasher::new();
    (key.group as *const Group as usize).hash(&mut h);
    key.y.hash(&mut h);
    h.finish()
}

fn shard_for(fp: u64) -> &'static Mutex<Shard> {
    &shards()[fp as usize % SHARDS]
}

/// Drops entries until the shard has room, preferring victims that never
/// earned a table so promoted issuer tables survive churn.
fn make_room(s: &mut Shard) {
    while s.map.len() >= SHARD_CAP {
        let victim = s
            .order
            .iter()
            .position(|fp| s.map.get(fp).is_some_and(|e| e.table.is_none()))
            .unwrap_or(0);
        if victim >= s.order.len() {
            break;
        }
        let fp = s.order.remove(victim);
        if s.map.remove(&fp).is_some() {
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// What the cache knows about a key at verify time.
pub(crate) struct Sighting {
    pub table: Option<Arc<FixedBaseTable>>,
    /// `true` when the key is tracked, which implies it already passed
    /// its subgroup-membership check (untracked keys must be re-checked).
    pub element_valid: bool,
}

/// Records a sighting of `key` and returns its cached state.  Untracked
/// keys are *not* inserted here — only [`confirm_element`] (called after
/// the subgroup check passes) admits a key to the cache.
pub(crate) fn observe(key: &PublicKey) -> Sighting {
    let fp = fingerprint(key);
    let gp = key.group as *const Group as usize;
    let mut s = shard_for(fp).lock().unwrap();
    match s.map.get_mut(&fp) {
        Some(en) if en.matches(gp, key) => {
            en.seen += 1;
            if en.table.is_some() {
                HITS.fetch_add(1, Ordering::Relaxed);
            }
            Sighting {
                table: en.table.clone(),
                element_valid: true,
            }
        }
        _ => Sighting {
            table: None,
            element_valid: false,
        },
    }
}

/// Admits `key` — which the caller has just subgroup-validated, or found
/// already tracked — and builds its fixed-base table once the key has
/// been sighted often enough.
///
/// The table is built *outside* the shard lock (construction costs ~1000
/// modular multiplies); a concurrent builder losing the install race just
/// wastes one build.  Returns the installed table when one exists.
pub(crate) fn confirm_element(key: &PublicKey) -> Option<Arc<FixedBaseTable>> {
    let fp = fingerprint(key);
    let gp = key.group as *const Group as usize;
    let build = {
        let mut s = shard_for(fp).lock().unwrap();
        match s.map.get_mut(&fp) {
            Some(en) if en.matches(gp, key) => {
                if let Some(t) = &en.table {
                    return Some(t.clone());
                }
                en.seen >= PROMOTE_AT
            }
            // A different key owns this fingerprint; leave it alone.
            Some(_) => return None,
            None => {
                // First validated sighting: start tracking the key.
                make_room(&mut s);
                s.order.push(fp);
                s.map.insert(
                    fp,
                    Entry {
                        group: gp,
                        y: key.y.clone(),
                        seen: 1,
                        table: None,
                    },
                );
                false
            }
        }
    };
    if !build {
        return None;
    }
    let table = Arc::new(FixedBaseTable::new(
        &key.y,
        &key.group.p,
        key.group.q.bits(),
    ));
    BUILDS.fetch_add(1, Ordering::Relaxed);
    let mut s = shard_for(fp).lock().unwrap();
    match s.map.get_mut(&fp) {
        Some(en) if en.matches(gp, key) => Some(en.table.get_or_insert_with(|| table).clone()),
        _ => Some(table), // evicted meanwhile; still useful to the caller
    }
}

/// Snapshot of the per-key table cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyTableStats {
    /// Verifies that found a prebuilt table for the signer's key.
    pub hits: u64,
    /// Tables built (each replaces ~2 generic exponentiations per verify).
    pub builds: u64,
    /// Keys evicted to stay within the cache bound.
    pub evictions: u64,
    /// Distinct keys currently tracked.
    pub keys: u64,
}

/// Reads the process-wide per-key table cache counters.
pub fn key_table_stats() -> KeyTableStats {
    KeyTableStats {
        hits: HITS.load(Ordering::Relaxed),
        builds: BUILDS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        keys: shards()
            .iter()
            .map(|s| s.lock().unwrap().map.len() as u64)
            .sum(),
    }
}

/// Registers a scrape-time callback exposing [`KeyTableStats`] under
/// `sf_key_table_*` — the cache is process-wide, so the collector reads
/// [`key_table_stats`] directly (collector id `"key-table"`).
pub fn register_metrics(registry: &snowflake_metrics::Registry) {
    use snowflake_metrics::Sample;
    registry.set_help(
        "sf_key_table_hits_total",
        "Schnorr verifies served by a prebuilt fixed-base table for the signer's key",
    );
    registry.register_collector(
        "key-table",
        std::sync::Arc::new(|out: &mut Vec<Sample>| {
            let s = key_table_stats();
            out.push(Sample::counter("sf_key_table_hits_total", &[], s.hits));
            out.push(Sample::counter("sf_key_table_builds_total", &[], s.builds));
            out.push(Sample::counter("sf_key_table_evictions_total", &[], s.evictions));
            out.push(Sample::gauge("sf_key_table_keys", &[], s.keys as f64));
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::KeyPair;
    use crate::DetRng;

    #[test]
    fn promotion_builds_on_second_confirmed_sighting() {
        let mut rng = DetRng::new(b"key-cache-promote");
        let mut r = move |buf: &mut [u8]| rng.fill(buf);
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let key = &kp.public;

        let s1 = observe(key);
        assert!(s1.table.is_none() && !s1.element_valid);
        assert!(confirm_element(key).is_none(), "no table on first sighting");

        let s2 = observe(key);
        assert!(s2.element_valid, "membership check is remembered");
        assert!(s2.table.is_none());
        let t = confirm_element(key).expect("second sighting promotes");
        assert_eq!(
            t.power(&Ubig::from(7u64)),
            key.y.modpow_basic(&Ubig::from(7u64), &key.group.p)
        );

        let s3 = observe(key);
        assert!(s3.table.is_some(), "table serves later sightings");
    }

    #[test]
    fn unvalidated_keys_are_never_tracked() {
        // A flood of keys that are merely *observed* (the subgroup check
        // never passed, so confirm_element is never called) must not
        // insert entries — and therefore cannot evict promoted tables.
        let mut rng = DetRng::new(b"key-cache-bogus");
        let mut r = move |buf: &mut [u8]| rng.fill(buf);
        let issuer = KeyPair::generate(Group::test512(), &mut r);
        observe(&issuer.public);
        confirm_element(&issuer.public);
        observe(&issuer.public);
        confirm_element(&issuer.public).expect("issuer table promoted");

        let keys_before = key_table_stats().keys;
        for i in 0..512u64 {
            let bogus = PublicKey {
                group: Group::test512(),
                // Not a subgroup element with overwhelming probability;
                // the point is only that confirm_element never runs.
                y: Ubig::from(3 + 2 * i),
            };
            let s = observe(&bogus);
            assert!(!s.element_valid && s.table.is_none());
        }
        assert_eq!(
            key_table_stats().keys,
            keys_before,
            "observe alone must not insert tracking entries"
        );
        let s = observe(&issuer.public);
        assert!(
            s.table.is_some(),
            "issuer table survives an unvalidated-key flood"
        );
    }

    #[test]
    fn eviction_prefers_untabled_entries() {
        // Fill well past the whole cache with validated one-shot keys;
        // a previously promoted table must still be resident (victims
        // are drawn from entries that never earned a table).
        let mut rng = DetRng::new(b"key-cache-churn");
        let mut r = move |buf: &mut [u8]| rng.fill(buf);
        let issuer = KeyPair::generate(Group::test512(), &mut r);
        observe(&issuer.public);
        confirm_element(&issuer.public);
        observe(&issuer.public);
        confirm_element(&issuer.public).expect("issuer table promoted");

        for _ in 0..(SHARDS * SHARD_CAP * 2) {
            let one_shot = KeyPair::generate(Group::test512(), &mut r);
            observe(&one_shot.public);
            confirm_element(&one_shot.public); // validated, but seen once
        }
        let s = observe(&issuer.public);
        assert!(
            s.table.is_some(),
            "promoted issuer table survives one-shot churn"
        );
        assert!(key_table_stats().evictions > 0, "churn actually evicted");
    }
}
