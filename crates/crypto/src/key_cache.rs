//! Per-issuer fixed-base table cache for Schnorr verification.
//!
//! Verification exponentiates two bases: the group generator `g` (whose
//! table lives with the `&'static Group`) and the signer's public element
//! `y`.  Issuer keys are few and long-lived — a handful of authorities
//! sign almost every certificate a verifier sees — so a small process-wide
//! cache of per-`y` tables pays for itself after a couple of verifies.
//!
//! Two design points keep the cache honest:
//!
//! * **Promotion threshold.** Building a table costs roughly two to three
//!   generic exponentiations, and some keys are seen exactly once (e.g. a
//!   client key during MAC establishment).  A table is therefore built on
//!   the *second* sighting of a key, never the first, and only after the
//!   key has passed its subgroup-membership check — so a flood of verifies
//!   against bogus keys cannot fill the cache with garbage tables.
//! * **Cached membership.** `is_element(y)` is itself a full `q`-sized
//!   exponentiation.  `y` and the group parameters are immutable, so a
//!   membership check done once per key is sound to reuse; the cache
//!   records it alongside the table slot.
//!
//! Signing never consults this cache: the signer exponentiates only the
//! generator (`r = g^k`), never its own `y`, so there is nothing for a
//! per-key table to accelerate (see `docs/authz.md`).

use crate::group::Group;
use crate::schnorr::PublicKey;
use snowflake_bigint::{FixedBaseTable, Ubig};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of distinct keys tracked; FIFO-evicted beyond this.
const CACHE_CAP: usize = 128;
/// Sightings before a key's table is built (never on the first).
const PROMOTE_AT: u64 = 2;

/// Cache keys pair the group's static identity with the public element.
type Key = (usize, Ubig);

struct Entry {
    seen: u64,
    element_valid: bool,
    table: Option<Arc<FixedBaseTable>>,
}

#[derive(Default)]
struct Cache {
    map: HashMap<Key, Entry>,
    order: VecDeque<Key>,
}

static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static BUILDS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<Cache> {
    CACHE.get_or_init(|| Mutex::new(Cache::default()))
}

fn cache_key(key: &PublicKey) -> Key {
    (key.group as *const Group as usize, key.y.clone())
}

/// What the cache knows about a key at verify time.
pub(crate) struct Sighting {
    pub table: Option<Arc<FixedBaseTable>>,
    pub element_valid: bool,
}

/// Records a sighting of `key` and returns its cached state.
pub(crate) fn observe(key: &PublicKey) -> Sighting {
    let k = cache_key(key);
    let mut c = cache().lock().unwrap();
    if !c.map.contains_key(&k) {
        if c.map.len() >= CACHE_CAP {
            while let Some(old) = c.order.pop_front() {
                if c.map.remove(&old).is_some() {
                    EVICTIONS.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        c.order.push_back(k.clone());
        c.map.insert(
            k.clone(),
            Entry {
                seen: 0,
                element_valid: false,
                table: None,
            },
        );
    }
    let entry = c.map.get_mut(&k).expect("just inserted");
    entry.seen += 1;
    if entry.table.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    Sighting {
        table: entry.table.clone(),
        element_valid: entry.element_valid,
    }
}

/// Marks `key` as having passed its subgroup-membership check, and builds
/// its fixed-base table if the key has now been seen often enough.
///
/// The table is built *outside* the cache lock (construction costs ~1000
/// modular multiplies); a concurrent builder losing the install race just
/// wastes one build.  Returns the installed table when one exists.
pub(crate) fn confirm_element(key: &PublicKey) -> Option<Arc<FixedBaseTable>> {
    let k = cache_key(key);
    let build = {
        let mut c = cache().lock().unwrap();
        let Some(entry) = c.map.get_mut(&k) else {
            return None; // evicted between observe and confirm
        };
        entry.element_valid = true;
        if let Some(t) = &entry.table {
            return Some(t.clone());
        }
        entry.seen >= PROMOTE_AT
    };
    if !build {
        return None;
    }
    let table = Arc::new(FixedBaseTable::new(
        &key.y,
        &key.group.p,
        key.group.q.bits(),
    ));
    BUILDS.fetch_add(1, Ordering::Relaxed);
    let mut c = cache().lock().unwrap();
    match c.map.get_mut(&k) {
        Some(entry) => Some(entry.table.get_or_insert_with(|| table).clone()),
        None => Some(table), // evicted meanwhile; still useful to the caller
    }
}

/// Snapshot of the per-key table cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyTableStats {
    /// Verifies that found a prebuilt table for the signer's key.
    pub hits: u64,
    /// Tables built (each replaces ~2 generic exponentiations per verify).
    pub builds: u64,
    /// Keys FIFO-evicted to stay within the cache bound.
    pub evictions: u64,
    /// Distinct keys currently tracked.
    pub keys: u64,
}

/// Reads the process-wide per-key table cache counters.
pub fn key_table_stats() -> KeyTableStats {
    KeyTableStats {
        hits: HITS.load(Ordering::Relaxed),
        builds: BUILDS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        keys: cache().lock().unwrap().map.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::KeyPair;
    use crate::DetRng;

    #[test]
    fn promotion_builds_on_second_confirmed_sighting() {
        let mut rng = DetRng::new(b"key-cache-promote");
        let mut r = move |buf: &mut [u8]| rng.fill(buf);
        let kp = KeyPair::generate(Group::test512(), &mut r);
        let key = &kp.public;

        let s1 = observe(key);
        assert!(s1.table.is_none() && !s1.element_valid);
        assert!(confirm_element(key).is_none(), "no table on first sighting");

        let s2 = observe(key);
        assert!(s2.element_valid, "membership check is remembered");
        assert!(s2.table.is_none());
        let t = confirm_element(key).expect("second sighting promotes");
        assert_eq!(t.power(&Ubig::from(7u64)), key.y.modpow_basic(&Ubig::from(7u64), &key.group.p));

        let s3 = observe(key);
        assert!(s3.table.is_some(), "table serves later sightings");
    }
}
