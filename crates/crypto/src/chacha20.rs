//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! Used by the secure channel's record layer and by [`crate::DetRng`].

/// ChaCha20 keystream generator / stream cipher.
pub struct ChaCha20 {
    state: [u32; 16],
    keystream: [u8; 64],
    offset: usize,
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key and 96-bit nonce, counter = 0.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        state[12] = 0; // block counter
        for i in 0..3 {
            state[13 + i] =
                u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha20 {
            state,
            keystream: [0; 64],
            offset: 64,
        }
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            if self.offset == 64 {
                self.refill();
            }
            *byte ^= self.keystream[self.offset];
            self.offset += 1;
        }
    }

    /// Writes raw keystream into `buf`, ignoring its prior contents — what
    /// the RNG paths want, without `apply`'s read-xor-write pass over data
    /// that would have to be zeroed first.
    pub fn fill_keystream(&mut self, buf: &mut [u8]) {
        for byte in buf {
            if self.offset == 64 {
                self.refill();
            }
            *byte = self.keystream[self.offset];
            self.offset += 1;
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..10 {
            // Column rounds.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            self.keystream[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        self.offset = 0;
    }
}

fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_sexpr::{hex_decode, hex_encode};

    #[test]
    fn rfc8439_keystream() {
        // RFC 8439 §2.4.2 test vector: key 00..1f, nonce 00 00 00 00 00 00 00 4a 00 00 00 00,
        // counter starting at 1.
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex_decode(b"000000000000004a00000000")
            .unwrap()
            .try_into()
            .unwrap();
        let mut c = ChaCha20::new(&key, &nonce);
        // Advance one block to start the counter at 1 as the vector does.
        let mut skip = [0u8; 64];
        c.apply(&mut skip);

        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        c.apply(&mut data);
        assert_eq!(hex_encode(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        assert_eq!(hex_encode(&data[data.len() - 10..]), "b40b8eedf2785e42874d");
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let msg: Vec<u8> = (0..1000).map(|i| (i * 7) as u8).collect();
        let mut data = msg.clone();
        ChaCha20::new(&key, &nonce).apply(&mut data);
        assert_ne!(data, msg);
        ChaCha20::new(&key, &nonce).apply(&mut data);
        assert_eq!(data, msg);
    }

    #[test]
    fn chunked_equals_oneshot() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let msg = vec![0xabu8; 300];
        let mut oneshot = msg.clone();
        ChaCha20::new(&key, &nonce).apply(&mut oneshot);

        let mut chunked = msg.clone();
        let mut c = ChaCha20::new(&key, &nonce);
        for chunk in chunked.chunks_mut(37) {
            c.apply(chunk);
        }
        assert_eq!(chunked, oneshot);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ChaCha20::new(&key, &[0u8; 12]).apply(&mut a);
        ChaCha20::new(&key, &[1u8; 12]).apply(&mut b);
        assert_ne!(a, b);
    }
}
