//! Property tests for Schnorr batch verification and the fast verify
//! path.
//!
//! The load-bearing claims: `verify_batch` accepts exactly when every
//! member verifies individually; flipping any single bit of a member's
//! `(e, s)`, commitment, or message makes the batch reject with the
//! forged member pinpointed; and the table/cache-accelerated
//! `PublicKey::verify` agrees with the precomputation-free
//! `verify_uncached` on every input.

use proptest::prelude::*;
use snowflake_bigint::Ubig;
use snowflake_crypto::{
    verify_batch_with, BatchEntry, BatchOutcome, DetRng, Group, KeyPair, Signature,
};
use std::sync::OnceLock;

/// A small pool of deterministic signers (key generation is the
/// expensive part; the properties range over messages and tampering).
fn signers() -> &'static Vec<KeyPair> {
    static K: OnceLock<Vec<KeyPair>> = OnceLock::new();
    K.get_or_init(|| {
        let mut rng = DetRng::new(b"batch-props-signers");
        let mut r = move |buf: &mut [u8]| rng.fill(buf);
        (0..4)
            .map(|_| KeyPair::generate(Group::test512(), &mut r))
            .collect()
    })
}

fn det(seed: u64) -> impl FnMut(&mut [u8]) {
    let mut rng = DetRng::new(&seed.to_be_bytes());
    move |buf: &mut [u8]| rng.fill(buf)
}

/// Builds a signed burst: (messages, signatures, key index per member).
fn burst(seed: u64, n: usize) -> (Vec<Vec<u8>>, Vec<Signature>, Vec<usize>) {
    let mut r = det(seed);
    let keys = signers();
    let msgs: Vec<Vec<u8>> = (0..n).map(|i| format!("stmt {seed} {i}").into_bytes()).collect();
    let key_idx: Vec<usize> = (0..n).map(|i| i % keys.len()).collect();
    let sigs: Vec<Signature> = msgs
        .iter()
        .zip(&key_idx)
        .map(|(m, &k)| keys[k].sign(m, &mut r))
        .collect();
    (msgs, sigs, key_idx)
}

fn entries<'a>(
    msgs: &'a [Vec<u8>],
    sigs: &'a [Signature],
    key_idx: &[usize],
) -> Vec<BatchEntry<'a>> {
    let keys = signers();
    msgs.iter()
        .zip(sigs)
        .zip(key_idx)
        .map(|((m, sig), &k)| BatchEntry {
            key: &keys[k].public,
            message: m,
            sig,
        })
        .collect()
}

/// Flips bit `bit` of a big-endian-encoded scalar.
fn flip_ubig(v: &Ubig, bit: usize) -> Ubig {
    let mut bytes = v.to_bytes_be();
    if bytes.is_empty() {
        bytes.push(0);
    }
    let i = (bit / 8) % bytes.len();
    bytes[i] ^= 1 << (bit % 8);
    Ubig::from_bytes_be(&bytes)
}

proptest! {
    #[test]
    fn batch_accepts_iff_each_member_verifies(seed in any::<u64>(), n in 2usize..12) {
        let (msgs, sigs, key_idx) = burst(seed, n);
        let ens = entries(&msgs, &sigs, &key_idx);
        let each: Vec<bool> = ens
            .iter()
            .map(|en| en.key.verify(en.message, en.sig))
            .collect();
        prop_assert!(each.iter().all(|&b| b), "honest burst must verify member-wise");
        let mut rng = det(seed ^ 0x5eed);
        prop_assert_eq!(verify_batch_with(&ens, &mut rng), BatchOutcome::AllValid);
    }

    #[test]
    fn bitflip_rejects_and_pinpoints_culprit(
        seed in any::<u64>(),
        n in 2usize..10,
        victim_sel in any::<usize>(),
        field in 0usize..4,
        bit in 0usize..256,
    ) {
        let (mut msgs, mut sigs, key_idx) = burst(seed, n);
        let victim = victim_sel % n;
        match field {
            0 => sigs[victim].e = flip_ubig(&sigs[victim].e, bit),
            1 => sigs[victim].s = flip_ubig(&sigs[victim].s, bit),
            2 => {
                let r = sigs[victim].r.clone().expect("signatures carry r");
                sigs[victim].r = Some(flip_ubig(&r, bit));
            }
            _ => {
                let m = &mut msgs[victim];
                let i = bit % (m.len() * 8);
                m[i / 8] ^= 1 << (i % 8);
            }
        }
        let ens = entries(&msgs, &sigs, &key_idx);
        // Ground truth: exactly the victim fails individual verification.
        for (i, en) in ens.iter().enumerate() {
            prop_assert_eq!(en.key.verify(en.message, en.sig), i != victim, "member {}", i);
        }
        let mut rng = det(seed ^ 0xbadc0de);
        prop_assert_eq!(
            verify_batch_with(&ens, &mut rng),
            BatchOutcome::Invalid(vec![victim])
        );
    }

    #[test]
    fn fast_verify_agrees_with_uncached(
        seed in any::<u64>(),
        tamper in 0usize..5,
        bit in 0usize..256,
    ) {
        let mut r = det(seed);
        let keys = signers();
        let key = &keys[(seed as usize) % keys.len()];
        let msg = format!("agreement {seed}").into_bytes();
        let mut sig = key.sign(&msg, &mut r);
        match tamper {
            0 => {} // honest
            1 => sig.e = flip_ubig(&sig.e, bit),
            2 => sig.s = flip_ubig(&sig.s, bit),
            3 => sig.r = Some(flip_ubig(sig.r.as_ref().unwrap(), bit)),
            _ => sig.r = None, // legacy wire form
        }
        prop_assert_eq!(
            key.public.verify(&msg, &sig),
            key.public.verify_uncached(&msg, &sig)
        );
    }
}
