//! Path-vector objects ⇄ snowflake tags.
//!
//! External authorization consumers name objects with a **namespace**
//! plus a **path vector** — `["rooms", ROOM_ID, "rtcs", RTC_ID]` — and
//! name what they want done with an **action** (`create`, `read`,
//! `subscribe`, …).  This module maps that vocabulary onto the tag
//! algebra so path-vector requests can be answered by the same
//! speaks-for machinery as every native surface:
//!
//! * [`request_tag`] builds the fully ground tag for one request:
//!   `(authz (ns NS) (path seg…) (action A))`.
//! * [`grant_tag`] builds the tag an issuer delegates: pattern segments
//!   may be wildcards (`*` → any one segment), the pattern may be open
//!   (`**` tail → any suffix), and the action position may name one
//!   action, a set, or every action.
//! * [`parse_request`] inverts [`request_tag`] (the round-trip property
//!   is tested below), so audit tooling can recover the namespace, path,
//!   and action from a recorded tag.
//! * [`ActionTable`] is the per-object/action matrix: which path
//!   *shapes* admit which actions at all.  A request outside the table
//!   is denied before any proof search runs — the table bounds the
//!   vocabulary, the delegation chain decides the answer.
//!
//! One honest asymmetry, inherited from SPKI list semantics: in the tag
//! algebra "longer lists are more specific", so a grant for path
//! `(rooms 123)` also permits requests deeper in that subtree.  The
//! [`ActionTable`] is where exact arity is enforced (a closed pattern
//! matches only paths of its own length); tags stay prefix-permissive
//! by design.

use crate::Tag;

/// One parsed path-vector request: the inverse image of [`request_tag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathVector {
    /// The object namespace (`conference.example.org`).
    pub namespace: String,
    /// The object path (`["rooms", "123", "events"]`).
    pub path: Vec<String>,
    /// The requested action (`subscribe`).
    pub action: String,
}

/// One segment of a [`PathPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatSeg {
    /// Matches exactly this segment.
    Lit(String),
    /// Matches any single segment (an ID placeholder).
    Any,
}

/// A path shape: literal and wildcard segments, optionally open-ended.
///
/// Written with the table vocabulary: `"*"` is a single-segment
/// wildcard, a trailing `"**"` makes the pattern a **wildcard prefix**
/// matching any (possibly empty) suffix — `["rooms", "*", "**"]` is the
/// `["rooms", ROOM_ID, *]` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPattern {
    segs: Vec<PatSeg>,
    open: bool,
}

impl PathPattern {
    /// Parses a pattern spec: each `"*"` matches one arbitrary segment,
    /// a final `"**"` opens the tail.  (`"**"` anywhere else is treated
    /// as a literal — suffix wildcards only bind at the end.)
    pub fn parse(spec: &[&str]) -> PathPattern {
        let open = spec.last() == Some(&"**");
        let body = if open { &spec[..spec.len() - 1] } else { spec };
        PathPattern {
            segs: body
                .iter()
                .map(|s| {
                    if *s == "*" {
                        PatSeg::Any
                    } else {
                        PatSeg::Lit((*s).to_string())
                    }
                })
                .collect(),
            open,
        }
    }

    /// Does this pattern match the concrete path?  Closed patterns
    /// require exact arity; open patterns match any suffix beyond their
    /// fixed segments.
    pub fn matches(&self, path: &[&str]) -> bool {
        if self.open {
            if path.len() < self.segs.len() {
                return false;
            }
        } else if path.len() != self.segs.len() {
            return false;
        }
        self.segs.iter().zip(path).all(|(seg, got)| match seg {
            PatSeg::Any => true,
            PatSeg::Lit(want) => want == got,
        })
    }

    /// The fixed (pre-wildcard-tail) segments.
    pub fn segments(&self) -> &[PatSeg] {
        &self.segs
    }

    /// Does the pattern accept suffixes beyond its fixed segments?
    pub fn is_open(&self) -> bool {
        self.open
    }
}

/// Builds the `(path …)` element for a concrete path.
fn path_element(path: &[&str]) -> Tag {
    let mut items = vec![Tag::atom("path")];
    items.extend(path.iter().map(|s| Tag::atom(*s)));
    Tag::List(items)
}

/// The fully ground tag for one path-vector request:
/// `(authz (ns NS) (path seg…) (action A))`.
pub fn request_tag(namespace: &str, path: &[&str], action: &str) -> Tag {
    Tag::named(
        "authz",
        vec![
            Tag::named("ns", vec![Tag::atom(namespace)]),
            path_element(path),
            Tag::named("action", vec![Tag::atom(action)]),
        ],
    )
}

/// The tag an issuer delegates for a path pattern.
///
/// Wildcard segments become `(*)`; an open pattern simply truncates the
/// path list (shorter lists are more general, so the tail is
/// unconstrained).  `actions` empty grants **every** action (the
/// `(action …)` element is omitted); one action is an atom; several are
/// a `(* set …)`.
pub fn grant_tag(namespace: &str, pattern: &PathPattern, actions: &[&str]) -> Tag {
    let mut path_items = vec![Tag::atom("path")];
    for seg in &pattern.segs {
        path_items.push(match seg {
            PatSeg::Lit(s) => Tag::atom(s.as_str()),
            PatSeg::Any => Tag::Star,
        });
    }
    let mut items = vec![
        Tag::named("ns", vec![Tag::atom(namespace)]),
        Tag::List(path_items),
    ];
    match actions {
        [] => {}
        [one] => items.push(Tag::named("action", vec![Tag::atom(*one)])),
        several => items.push(Tag::named(
            "action",
            vec![Tag::Set(several.iter().map(|a| Tag::atom(*a)).collect())],
        )),
    }
    Tag::named("authz", items)
}

/// Recovers `(namespace, path, action)` from a tag produced by
/// [`request_tag`].  Returns `None` for anything that is not a fully
/// ground request tag (wildcards, sets, missing elements, non-UTF-8
/// atoms) — callers treating tags as requests must fail closed.
pub fn parse_request(tag: &Tag) -> Option<PathVector> {
    let Tag::List(items) = tag else { return None };
    let [head, ns_el, path_el, action_el] = items.as_slice() else {
        return None;
    };
    if atom_str(head)? != "authz" {
        return None;
    }
    let namespace = match named_body(ns_el, "ns")? {
        [ns] => atom_str(ns)?.to_string(),
        _ => return None,
    };
    let path = named_body(path_el, "path")?
        .iter()
        .map(|seg| atom_str(seg).map(str::to_string))
        .collect::<Option<Vec<String>>>()?;
    if path.is_empty() {
        return None;
    }
    let action = match named_body(action_el, "action")? {
        [a] => atom_str(a)?.to_string(),
        _ => return None,
    };
    Some(PathVector {
        namespace,
        path,
        action,
    })
}

fn atom_str(tag: &Tag) -> Option<&str> {
    match tag {
        Tag::Atom(bytes) => std::str::from_utf8(bytes).ok(),
        _ => None,
    }
}

/// The body of a `(name …)` list element (everything after the name).
fn named_body<'a>(tag: &'a Tag, name: &str) -> Option<&'a [Tag]> {
    let Tag::List(items) = tag else { return None };
    let (head, body) = items.split_first()?;
    if atom_str(head)? != name {
        return None;
    }
    Some(body)
}

/// The per-object/action matrix: which path shapes admit which actions.
///
/// Mirrors the exemplar's documentation tables — one row per object
/// shape, one column per action:
///
/// ```text
/// object / action                    | create | read | list | subscribe
/// ["rooms"]                          |      + |      |    + |
/// ["rooms", ROOM_ID]                 |        |    + |      |
/// ["rooms", ROOM_ID, "events"]       |        |      |      |         +
/// ```
///
/// The table answers *whether the combination is meaningful at all*;
/// whether this subject holds it is the prover's question.
#[derive(Debug, Clone, Default)]
pub struct ActionTable {
    rows: Vec<(PathPattern, Vec<String>)>,
}

impl ActionTable {
    /// An empty table (denies everything).
    pub fn new() -> ActionTable {
        ActionTable::default()
    }

    /// Adds a row: `spec` in [`PathPattern::parse`] vocabulary, plus the
    /// actions that shape admits.
    pub fn allow(&mut self, spec: &[&str], actions: &[&str]) -> &mut ActionTable {
        self.rows.push((
            PathPattern::parse(spec),
            actions.iter().map(|a| (*a).to_string()).collect(),
        ));
        self
    }

    /// Is `action` admitted on an object with this path shape?
    pub fn permits(&self, path: &[&str], action: &str) -> bool {
        self.rows
            .iter()
            .any(|(pat, actions)| actions.iter().any(|a| a == action) && pat.matches(path))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty (denying everything)?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exemplar_table() -> ActionTable {
        let mut t = ActionTable::new();
        t.allow(&["rooms"], &["create", "list"])
            .allow(&["rooms", "*"], &["read", "update", "delete"])
            .allow(&["rooms", "*", "rtcs"], &["create", "list"])
            .allow(&["rooms", "*", "rtcs", "*"], &["read", "update", "delete"])
            .allow(&["rooms", "*", "events"], &["subscribe"])
            .allow(&["audiences", "*", "events"], &["subscribe"]);
        t
    }

    #[test]
    fn table_matches_the_exemplar_matrix() {
        let t = exemplar_table();
        assert!(t.permits(&["rooms"], "create"));
        assert!(t.permits(&["rooms"], "list"));
        assert!(!t.permits(&["rooms"], "read"));
        assert!(t.permits(&["rooms", "r1"], "read"));
        assert!(!t.permits(&["rooms", "r1"], "subscribe"));
        assert!(t.permits(&["rooms", "r1", "rtcs", "x9"], "delete"));
        assert!(!t.permits(&["rooms", "r1", "rtcs", "x9"], "create"));
        assert!(t.permits(&["rooms", "r1", "events"], "subscribe"));
        assert!(t.permits(&["audiences", "aud", "events"], "subscribe"));
        // Wrong arity fails closed: closed rows match exact length only.
        assert!(!t.permits(&["rooms", "r1", "events", "extra"], "subscribe"));
        assert!(!t.permits(&[], "create"));
    }

    #[test]
    fn wildcard_prefix_rows_match_any_suffix() {
        let mut t = ActionTable::new();
        t.allow(&["rooms", "*", "**"], &["read"]);
        assert!(t.permits(&["rooms", "r1"], "read"));
        assert!(t.permits(&["rooms", "r1", "deep", "deeper"], "read"));
        assert!(!t.permits(&["rooms"], "read"), "prefix needs its fixed segments");
        assert!(!t.permits(&["halls", "h1"], "read"));
    }

    #[test]
    fn grant_tag_permits_matching_requests() {
        let grant = grant_tag(
            "conference.example.org",
            &PathPattern::parse(&["rooms", "*", "events"]),
            &["subscribe"],
        );
        let yes = request_tag("conference.example.org", &["rooms", "r1", "events"], "subscribe");
        let wrong_action = request_tag("conference.example.org", &["rooms", "r1", "events"], "read");
        let wrong_ns = request_tag("other.example.org", &["rooms", "r1", "events"], "subscribe");
        let wrong_path = request_tag("conference.example.org", &["rooms", "r1", "agents"], "subscribe");
        assert!(grant.permits(&yes));
        assert!(!grant.permits(&wrong_action));
        assert!(!grant.permits(&wrong_ns));
        assert!(!grant.permits(&wrong_path));
    }

    #[test]
    fn open_grant_covers_the_subtree() {
        let grant = grant_tag(
            "conference.example.org",
            &PathPattern::parse(&["rooms", "*", "**"]),
            &[],
        );
        for (path, action) in [
            (vec!["rooms", "r1"], "read"),
            (vec!["rooms", "r1", "rtcs", "x"], "delete"),
            (vec!["rooms", "r2", "events"], "subscribe"),
        ] {
            assert!(
                grant.permits(&request_tag("conference.example.org", &path, action)),
                "{path:?} {action}"
            );
        }
        assert!(!grant.permits(&request_tag(
            "conference.example.org",
            &["audiences", "a", "events"],
            "subscribe"
        )));
    }

    #[test]
    fn action_sets_grant_each_member() {
        let grant = grant_tag(
            "ns",
            &PathPattern::parse(&["rooms", "*"]),
            &["read", "update"],
        );
        assert!(grant.permits(&request_tag("ns", &["rooms", "r"], "read")));
        assert!(grant.permits(&request_tag("ns", &["rooms", "r"], "update")));
        assert!(!grant.permits(&request_tag("ns", &["rooms", "r"], "delete")));
    }

    #[test]
    fn parse_request_rejects_non_ground_tags() {
        let open = grant_tag("ns", &PathPattern::parse(&["rooms", "*"]), &["read"]);
        assert_eq!(parse_request(&open), None, "wildcards are not requests");
        assert_eq!(parse_request(&Tag::Star), None);
        assert_eq!(parse_request(&Tag::atom("authz")), None);
        let missing_action = Tag::named(
            "authz",
            vec![
                Tag::named("ns", vec![Tag::atom("n")]),
                Tag::named("path", vec![Tag::atom("p")]),
            ],
        );
        assert_eq!(parse_request(&missing_action), None);
        let empty_path = Tag::named(
            "authz",
            vec![
                Tag::named("ns", vec![Tag::atom("n")]),
                Tag::named("path", vec![]),
                Tag::named("action", vec![Tag::atom("read")]),
            ],
        );
        assert_eq!(parse_request(&empty_path), None);
    }

    #[test]
    fn request_tag_survives_the_sexp_wire() {
        let tag = request_tag("conference.example.org", &["rooms", "r1", "events"], "subscribe");
        let back = Tag::parse(&tag.to_sexp()).unwrap();
        assert_eq!(back, tag);
        assert_eq!(parse_request(&back), parse_request(&tag));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// path → tag → path is the identity on well-formed requests.
        #[test]
        fn request_roundtrip(
            ns in "[a-z][a-z0-9.-]{0,16}",
            path in proptest::collection::vec("[a-zA-Z0-9_-]{1,12}", 1..6),
            action in "[a-z]{1,10}",
        ) {
            let refs: Vec<&str> = path.iter().map(String::as_str).collect();
            let tag = request_tag(&ns, &refs, &action);
            let back = parse_request(&tag).expect("ground request parses");
            prop_assert_eq!(&back.namespace, &ns);
            prop_assert_eq!(&back.path, &path);
            prop_assert_eq!(&back.action, &action);
            // And across the wire form.
            let rewired = Tag::parse(&tag.to_sexp()).unwrap();
            prop_assert_eq!(parse_request(&rewired).expect("wire form parses"), back);
        }
    }
}
