//! SPKI authorization tags: the *restriction* part of restricted delegation.
//!
//! A delegation `B =T⇒ A` ("B speaks for A regarding T", paper §3) carries a
//! tag `T` describing the set of statements the delegation covers.  Tags
//! "concisely represent infinitely refinable sets" (§4.1): a tag is a tree
//! whose leaves may be literal byte strings, wildcards, sets, prefixes, or
//! ranges.  The paper replaced Morcos' minimal implementation with "a
//! complete one that performs arbitrary intersection operations" [12, ch. 6];
//! this module is that complete implementation.
//!
//! # The tag algebra
//!
//! * `(*)` — matches anything.
//! * A byte string — matches exactly itself.
//! * A list `(a b c …)` — matches any list whose first elements match
//!   elementwise; **longer lists are more specific**, so the tag
//!   `(web (method GET))` permits the request
//!   `(web (method GET) (resourcePath "/x"))`.
//! * `(* set t₁ t₂ …)` — matches anything matching one of the alternatives.
//! * `(* prefix bytes)` — matches any byte string with the given prefix.
//! * `(* range ordering low high)` — matches byte strings within bounds
//!   under `alpha`, `numeric`, `time`, `binary`, or `date` ordering.
//! * `(* intersect t₁ t₂)` — matches what both match.  This form closes the
//!   algebra under intersection: combinations with no simpler representation
//!   (for example a prefix crossed with a range) remain exact instead of
//!   being approximated.
//!
//! [`Tag::intersect`] computes the greatest lower bound of two tags,
//! [`Tag::implies`] decides delegation-chain narrowing, and
//! [`Tag::permits`] matches a ground request tag.
//!
//! # Examples
//!
//! ```
//! use snowflake_tags::Tag;
//! use snowflake_sexpr::Sexp;
//!
//! let granted = Tag::parse(&Sexp::parse(b"(tag (web (method (* set GET HEAD))))").unwrap()).unwrap();
//! let request = Tag::parse(&Sexp::parse(b"(tag (web (method GET) (resourcePath \"/inbox\")))").unwrap()).unwrap();
//! assert!(granted.permits(&request));
//! ```

mod intersect;
mod order;
pub mod path_vector;

pub use order::Ordering as RangeOrdering;
pub use path_vector::{ActionTable, PathPattern, PathVector};

use snowflake_sexpr::{ParseError, Sexp};
use std::fmt;

/// One bound of a range tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bound {
    /// The bound value (interpreted under the range's ordering).
    pub value: Vec<u8>,
    /// Whether the bound itself is included (`ge`/`le` vs `g`/`l`).
    pub inclusive: bool,
}

/// An SPKI authorization tag.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tag {
    /// `(*)` — the universal tag.
    Star,
    /// A literal byte string.
    Atom(Vec<u8>),
    /// A structured list; longer lists are more specific.
    List(Vec<Tag>),
    /// `(* set …)` — union of alternatives.
    Set(Vec<Tag>),
    /// `(* prefix bytes)` — byte strings beginning with `bytes`.
    Prefix(Vec<u8>),
    /// `(* range ordering [low] [high])` — ordered interval of byte strings.
    Range {
        /// How bound comparisons are performed.
        ordering: RangeOrdering,
        /// Lower bound, if any.
        low: Option<Bound>,
        /// Upper bound, if any.
        high: Option<Bound>,
    },
    /// `(* intersect t₁ t₂)` — exact intersection with no simpler form.
    Both(Box<Tag>, Box<Tag>),
}

impl Tag {
    /// Convenience constructor: an atom tag from a string.
    pub fn atom(s: impl Into<Vec<u8>>) -> Tag {
        Tag::Atom(s.into())
    }

    /// Convenience constructor: a list tag.
    pub fn list(items: Vec<Tag>) -> Tag {
        Tag::List(items)
    }

    /// Convenience constructor: a list beginning with an atom name.
    pub fn named(name: &str, rest: Vec<Tag>) -> Tag {
        let mut items = vec![Tag::atom(name)];
        items.extend(rest);
        Tag::List(items)
    }

    /// Computes the intersection of two tags.
    ///
    /// Returns `None` when the intersection is empty.  The result is
    /// canonicalized (sets sorted and deduplicated, singletons unwrapped).
    pub fn intersect(&self, other: &Tag) -> Option<Tag> {
        intersect::intersect(self, other).map(|t| t.canonicalize())
    }

    /// Returns `true` when `self` covers everything `other` covers.
    ///
    /// This is the delegation-narrowing test: a chain `A =T⇒ B =U⇒ C` yields
    /// authority `T ∩ U`, and a re-delegation is valid when the new tag is
    /// implied by the old.  Decided as `self ∩ other ≡ other` on canonical
    /// forms.
    pub fn implies(&self, other: &Tag) -> bool {
        match self.intersect(other) {
            None => other.clone().canonicalize_opt().is_none(),
            Some(i) => Some(i) == other.clone().canonicalize_opt(),
        }
    }

    /// Returns `true` when this tag permits the concrete request tag.
    ///
    /// Equivalent to [`Tag::implies`]; named separately because call sites
    /// read better ("does the delegation permit this request?").
    pub fn permits(&self, request: &Tag) -> bool {
        self.implies(request)
    }

    /// Canonicalizes: flattens/sorts/dedups sets, unwraps singleton sets,
    /// normalizes nested intersections.
    pub fn canonicalize(self) -> Tag {
        self.canonicalize_opt().unwrap_or(Tag::Set(Vec::new()))
    }

    /// Conservative structural subsumption: `true` means `self` certainly
    /// covers everything `other` covers.
    ///
    /// Sound but deliberately incomplete — it never consults
    /// [`Tag::intersect`], so canonicalization can use it for absorption
    /// without recursion.  [`Tag::implies`] is the complete test.
    pub fn covers(&self, other: &Tag) -> bool {
        use Tag::*;
        if self == other {
            return true;
        }
        match (self, other) {
            (Star, _) => true,
            // A set covers whatever any member covers; anything covering all
            // members of a set covers the set.
            (Set(items), o) => items.iter().any(|i| i.covers(o)),
            (s, Set(items)) => items.iter().all(|i| s.covers(i)),
            // Both(x, y) ⊆ x and ⊆ y, so covering either side suffices.
            (s, Both(x, y)) => s.covers(x) || s.covers(y),
            // To cover something with Both you must cover it with both arms.
            (Both(x, y), o) => x.covers(o) && y.covers(o),
            (Prefix(p), Atom(a)) => a.starts_with(p),
            (Prefix(p), Prefix(q)) => q.starts_with(p),
            (
                Range {
                    ordering,
                    low,
                    high,
                },
                Atom(a),
            ) => ordering.contains(a, low, high),
            (
                Range {
                    ordering: o1,
                    low: l1,
                    high: h1,
                },
                Range {
                    ordering: o2,
                    low: l2,
                    high: h2,
                },
            ) => o1 == o2 && bound_covers(*o1, l1, l2, true) && bound_covers(*o1, h1, h2, false),
            // Shorter lists are more general: a list covers a longer list
            // whose common elements it covers.
            (List(xs), List(ys)) => {
                xs.len() <= ys.len() && xs.iter().zip(ys).all(|(x, y)| x.covers(y))
            }
            _ => false,
        }
    }

    /// Canonicalization that maps empty sets to `None`.
    fn canonicalize_opt(self) -> Option<Tag> {
        match self {
            Tag::Set(items) => {
                let mut flat: Vec<Tag> = Vec::new();
                for item in items {
                    match item.canonicalize_opt() {
                        Some(Tag::Set(inner)) => flat.extend(inner),
                        Some(t) => flat.push(t),
                        None => {}
                    }
                }
                flat.sort();
                flat.dedup();
                // Absorption: drop members subsumed by another member, so
                // set-distribution during intersection cannot bloat results
                // with redundant alternatives.  Uses the conservative
                // structural test [`Tag::covers`] (no recursion back into
                // intersection).
                let mut kept: Vec<Tag> = Vec::new();
                'outer: for (i, item) in flat.iter().enumerate() {
                    for (j, other) in flat.iter().enumerate() {
                        if i != j && other.covers(item) {
                            // Mutually-equivalent members: keep the first.
                            if item.covers(other) && i < j {
                                continue;
                            }
                            continue 'outer;
                        }
                    }
                    kept.push(item.clone());
                }
                match kept.len() {
                    0 => None,
                    1 => Some(kept.into_iter().next().expect("len 1")),
                    _ => Some(Tag::Set(kept)),
                }
            }
            Tag::List(items) => {
                let canon: Option<Vec<Tag>> =
                    items.into_iter().map(Tag::canonicalize_opt).collect();
                Some(Tag::List(canon?))
            }
            Tag::Both(a, b) => {
                let a = a.canonicalize_opt()?;
                let b = b.canonicalize_opt()?;
                // Normalize operand order so `Both` is symmetric.
                if a == b {
                    Some(a)
                } else if a <= b {
                    Some(Tag::Both(Box::new(a), Box::new(b)))
                } else {
                    Some(Tag::Both(Box::new(b), Box::new(a)))
                }
            }
            Tag::Range {
                ordering,
                low: Some(l),
                high: Some(h),
            } => {
                // A point range is the atom (intersection collapses it the
                // same way, keeping `a ∩ a == canon(a)`).
                if l.inclusive
                    && h.inclusive
                    && ordering.compare(&l.value, &h.value) == Some(std::cmp::Ordering::Equal)
                {
                    Some(Tag::Atom(l.value))
                } else {
                    Some(Tag::Range {
                        ordering,
                        low: Some(l),
                        high: Some(h),
                    })
                }
            }
            other => Some(other),
        }
    }

    /// Serializes the tag body (the part inside `(tag …)`).
    pub fn body_sexp(&self) -> Sexp {
        match self {
            Tag::Star => Sexp::list(vec![Sexp::from("*")]),
            Tag::Atom(bytes) => Sexp::atom(bytes.clone()),
            Tag::List(items) => Sexp::list(items.iter().map(Tag::body_sexp).collect()),
            Tag::Set(items) => {
                let mut out = vec![Sexp::from("*"), Sexp::from("set")];
                out.extend(items.iter().map(Tag::body_sexp));
                Sexp::list(out)
            }
            Tag::Prefix(bytes) => Sexp::list(vec![
                Sexp::from("*"),
                Sexp::from("prefix"),
                Sexp::atom(bytes.clone()),
            ]),
            Tag::Range {
                ordering,
                low,
                high,
            } => {
                let mut out = vec![
                    Sexp::from("*"),
                    Sexp::from("range"),
                    Sexp::from(ordering.name()),
                ];
                if let Some(b) = low {
                    out.push(Sexp::from(if b.inclusive { "ge" } else { "g" }));
                    out.push(Sexp::atom(b.value.clone()));
                }
                if let Some(b) = high {
                    out.push(Sexp::from(if b.inclusive { "le" } else { "l" }));
                    out.push(Sexp::atom(b.value.clone()));
                }
                Sexp::list(out)
            }
            Tag::Both(a, b) => Sexp::list(vec![
                Sexp::from("*"),
                Sexp::from("intersect"),
                a.body_sexp(),
                b.body_sexp(),
            ]),
        }
    }

    /// Serializes as a full `(tag …)` S-expression.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged("tag", vec![self.body_sexp()])
    }

    /// Parses either a full `(tag …)` wrapper or a bare tag body.
    pub fn parse(e: &Sexp) -> Result<Tag, ParseError> {
        if e.tag_name() == Some("tag") {
            let body = e.tag_body().unwrap_or(&[]);
            if body.len() != 1 {
                return Err(err("(tag …) must contain exactly one body"));
            }
            return Self::parse_body(&body[0]);
        }
        Self::parse_body(e)
    }

    /// Parses a tag body S-expression.
    pub fn parse_body(e: &Sexp) -> Result<Tag, ParseError> {
        match e {
            Sexp::Atom { bytes, .. } => Ok(Tag::Atom(bytes.clone())),
            Sexp::List(items) => {
                if items.first().and_then(Sexp::as_str) == Some("*") {
                    return Self::parse_star_form(&items[1..]);
                }
                let parsed: Result<Vec<Tag>, ParseError> =
                    items.iter().map(Self::parse_body).collect();
                Ok(Tag::List(parsed?))
            }
        }
    }

    fn parse_star_form(rest: &[Sexp]) -> Result<Tag, ParseError> {
        let Some(kind) = rest.first() else {
            return Ok(Tag::Star);
        };
        match kind.as_str() {
            Some("set") => {
                let items: Result<Vec<Tag>, ParseError> =
                    rest[1..].iter().map(Self::parse_body).collect();
                Ok(Tag::Set(items?))
            }
            Some("prefix") => {
                if rest.len() != 2 {
                    return Err(err("(* prefix …) takes one byte-string"));
                }
                let bytes = rest[1]
                    .as_atom()
                    .ok_or_else(|| err("prefix argument must be an atom"))?;
                Ok(Tag::Prefix(bytes.to_vec()))
            }
            Some("range") => Self::parse_range(&rest[1..]),
            Some("intersect") => {
                if rest.len() != 3 {
                    return Err(err("(* intersect …) takes two tags"));
                }
                Ok(Tag::Both(
                    Box::new(Self::parse_body(&rest[1])?),
                    Box::new(Self::parse_body(&rest[2])?),
                ))
            }
            _ => Err(err("unknown (* …) form")),
        }
    }

    fn parse_range(rest: &[Sexp]) -> Result<Tag, ParseError> {
        let ordering = rest
            .first()
            .and_then(Sexp::as_str)
            .and_then(RangeOrdering::from_name)
            .ok_or_else(|| err("range needs a known ordering"))?;
        let mut low = None;
        let mut high = None;
        let mut i = 1;
        while i < rest.len() {
            let op = rest[i]
                .as_str()
                .ok_or_else(|| err("range op must be a token"))?;
            let value = rest
                .get(i + 1)
                .and_then(Sexp::as_atom)
                .ok_or_else(|| err("range bound missing value"))?
                .to_vec();
            match op {
                "ge" => {
                    low = Some(Bound {
                        value,
                        inclusive: true,
                    })
                }
                "g" => {
                    low = Some(Bound {
                        value,
                        inclusive: false,
                    })
                }
                "le" => {
                    high = Some(Bound {
                        value,
                        inclusive: true,
                    })
                }
                "l" => {
                    high = Some(Bound {
                        value,
                        inclusive: false,
                    })
                }
                _ => return Err(err("range op must be ge/g/le/l")),
            }
            i += 2;
        }
        if !ordering.valid_range(&low, &high) {
            return Err(err("range bounds not valid under ordering"));
        }
        Ok(Tag::Range {
            ordering,
            low,
            high,
        })
    }
}

/// Is bound `a` at least as permissive as bound `b`?
///
/// For lower bounds (`is_low`), "more permissive" means lower or absent;
/// for upper bounds it means higher or absent.
fn bound_covers(
    ordering: RangeOrdering,
    a: &Option<Bound>,
    b: &Option<Bound>,
    is_low: bool,
) -> bool {
    match (a, b) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(x), Some(y)) => match ordering.compare(&x.value, &y.value) {
            None => false,
            Some(std::cmp::Ordering::Equal) => x.inclusive || !y.inclusive,
            Some(std::cmp::Ordering::Less) => is_low,
            Some(std::cmp::Ordering::Greater) => !is_low,
        },
    }
}

fn err(m: &str) -> ParseError {
    ParseError {
        offset: 0,
        message: m.into(),
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body_sexp())
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sexp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src: &str) -> Tag {
        Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
    }

    #[test]
    fn parse_and_print_roundtrip() {
        for src in [
            "(*)",
            "GET",
            "(web (method GET))",
            "(* set GET POST)",
            "(* prefix /inbox/)",
            "(* range numeric ge 10 le 99)",
            "(* range alpha g aaa)",
            "(* intersect (* prefix ab) (* range alpha le az))",
            "(tag (web (method GET) (resourcePath \"\")))",
        ] {
            let tag = t(src);
            let printed = tag.to_sexp();
            assert_eq!(Tag::parse(&printed).unwrap(), tag, "{src}");
        }
    }

    #[test]
    fn star_permits_everything() {
        for src in ["GET", "(a b c)", "(* set x y)", "(* prefix p)"] {
            assert!(Tag::Star.permits(&t(src)), "{src}");
        }
    }

    #[test]
    fn atom_equality() {
        assert!(t("GET").permits(&t("GET")));
        assert!(!t("GET").permits(&t("POST")));
        assert!(!t("GET").permits(&t("(GET)")));
    }

    #[test]
    fn list_prefix_specificity() {
        // Paper semantics: the shorter list is the more general tag.
        let general = t("(web (method GET))");
        let specific = t("(web (method GET) (resourcePath \"/inbox\"))");
        assert!(general.permits(&specific));
        assert!(!specific.permits(&general));
        // Same length must match elementwise.
        assert!(!general.permits(&t("(web (method POST))")));
    }

    #[test]
    fn set_union_semantics() {
        let s = t("(* set GET HEAD)");
        assert!(s.permits(&t("GET")));
        assert!(s.permits(&t("HEAD")));
        assert!(!s.permits(&t("POST")));
        // A set inside a list position.
        let l = t("(web (method (* set GET HEAD)))");
        assert!(l.permits(&t("(web (method GET))")));
        assert!(!l.permits(&t("(web (method DELETE))")));
    }

    #[test]
    fn prefix_semantics() {
        let p = t("(* prefix /inbox/)");
        assert!(p.permits(&t("/inbox/42")));
        assert!(p.permits(&t("/inbox/")));
        assert!(!p.permits(&t("/outbox/42")));
        // Prefix of a prefix.
        assert!(t("(* prefix /in)").implies(&t("(* prefix /inbox/)")));
        assert!(!t("(* prefix /inbox/)").implies(&t("(* prefix /in)")));
    }

    #[test]
    fn numeric_range_semantics() {
        let r = t("(* range numeric ge 10 le 99)");
        assert!(r.permits(&t("10")));
        assert!(r.permits(&t("55")));
        assert!(r.permits(&t("99")));
        assert!(!r.permits(&t("9")));
        assert!(!r.permits(&t("100")));
        // Numeric compares by value, not lexically: "9" < "10".
        assert!(!t("(* range numeric le 9)").permits(&t("10")));
        assert!(t("(* range numeric le 10)").permits(&t("9")));
    }

    #[test]
    fn alpha_range_semantics() {
        let r = t("(* range alpha ge b l d)");
        assert!(r.permits(&t("b")));
        assert!(r.permits(&t("cat")));
        assert!(!r.permits(&t("d")));
        assert!(!r.permits(&t("a")));
    }

    #[test]
    fn exclusive_bounds() {
        let r = t("(* range numeric g 10 l 20)");
        assert!(!r.permits(&t("10")));
        assert!(r.permits(&t("11")));
        assert!(r.permits(&t("19")));
        assert!(!r.permits(&t("20")));
    }

    #[test]
    fn intersect_narrows_chains() {
        // Alice grants (web); Bob re-delegates (web (method GET)).
        let alice = t("(web)");
        let bob = t("(web (method GET))");
        let chained = alice.intersect(&bob).unwrap();
        assert_eq!(chained, bob);
        // Disjoint atoms do not intersect.
        assert!(t("GET").intersect(&t("POST")).is_none());
    }

    #[test]
    fn intersect_ranges() {
        let a = t("(* range numeric ge 10 le 50)");
        let b = t("(* range numeric ge 30 le 99)");
        let i = a.intersect(&b).unwrap();
        assert!(i.permits(&t("30")));
        assert!(i.permits(&t("50")));
        assert!(!i.permits(&t("29")));
        assert!(!i.permits(&t("51")));
        // Disjoint ranges.
        assert!(t("(* range numeric le 5)")
            .intersect(&t("(* range numeric ge 6)"))
            .is_none());
    }

    #[test]
    fn intersect_set_distributes() {
        let s = t("(* set GET POST PUT)");
        let l = t("(* set POST PUT DELETE)");
        let i = s.intersect(&l).unwrap();
        assert!(i.permits(&t("POST")));
        assert!(i.permits(&t("PUT")));
        assert!(!i.permits(&t("GET")));
        assert!(!i.permits(&t("DELETE")));
    }

    #[test]
    fn intersect_prefix_range_is_exact() {
        // No simpler representation exists; the Both form keeps it exact.
        let p = t("(* prefix ab)");
        let r = t("(* range alpha le abz)");
        let i = p.intersect(&r).unwrap();
        assert!(i.permits(&t("abc")));
        assert!(!i.permits(&t("ac"))); // fails prefix? no — fails range? ac > abz alpha. Also fails prefix.
        assert!(!i.permits(&t("aa"))); // fails prefix
    }

    #[test]
    fn implies_is_reflexive_on_samples() {
        for src in [
            "GET",
            "(a (b c))",
            "(* set x y)",
            "(* prefix p)",
            "(* range numeric ge 1 le 9)",
        ] {
            let tag = t(src);
            assert!(tag.implies(&tag), "{src}");
        }
    }

    #[test]
    fn canonicalize_sets() {
        let messy = t("(* set b a (* set a c))");
        let canon = messy.canonicalize();
        assert_eq!(canon, t("(* set a b c)").canonicalize());
        // Singleton set unwraps.
        assert_eq!(t("(* set only)").canonicalize(), t("only"));
    }

    #[test]
    fn paper_figure5_tag() {
        let tag =
            t(r#"(tag (web (method GET) (service |Sm9uJ3MgUHJvdGVjdGVpY2U=|) (resourcePath "")))"#);
        // The tag permits exactly itself (it is fully ground).
        assert!(tag.permits(&tag));
        let weaker = t(r#"(tag (web (method GET)))"#);
        assert!(weaker.permits(&tag));
        assert!(!tag.permits(&weaker));
    }

    #[test]
    fn parse_errors() {
        assert!(Tag::parse(&Sexp::parse(b"(* prefix)").unwrap()).is_err());
        assert!(Tag::parse(&Sexp::parse(b"(* range)").unwrap()).is_err());
        assert!(Tag::parse(&Sexp::parse(b"(* range sideways ge 1)").unwrap()).is_err());
        assert!(Tag::parse(&Sexp::parse(b"(* range numeric gg 1)").unwrap()).is_err());
        assert!(Tag::parse(&Sexp::parse(b"(* frobnicate)").unwrap()).is_err());
        assert!(Tag::parse(&Sexp::parse(b"(tag a b)").unwrap()).is_err());
        // Numeric range with non-numeric bound.
        assert!(Tag::parse(&Sexp::parse(b"(* range numeric ge abc)").unwrap()).is_err());
    }

    #[test]
    fn intersect_list_keeps_longer_tail() {
        let a = t("(web (method GET))");
        let b = t("(web (method (* set GET HEAD)) (resourcePath \"/x\"))");
        let i = a.intersect(&b).unwrap();
        // Intersection is (web (method GET) (resourcePath "/x")).
        assert_eq!(i, t("(web (method GET) (resourcePath \"/x\"))"));
    }
}
