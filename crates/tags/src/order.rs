//! Range orderings for `(* range …)` tags (RFC 2693 §5.5 vocabulary).

use std::cmp::Ordering as CmpOrdering;

use crate::Bound;

/// How range bounds compare byte strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ordering {
    /// Plain lexicographic byte comparison.
    Alpha,
    /// Unsigned decimal integers (leading zeros ignored).
    Numeric,
    /// ISO-style timestamps `YYYY-MM-DD_HH:MM:SS` (lexicographic on the
    /// canonical form, which orders chronologically).
    Time,
    /// Big-endian binary magnitude (shorter strings are smaller after
    /// leading-zero-byte stripping).
    Binary,
    /// ISO dates `YYYY-MM-DD` (lexicographic, which orders chronologically).
    Date,
}

impl Ordering {
    /// The SPKI token naming this ordering.
    pub fn name(self) -> &'static str {
        match self {
            Ordering::Alpha => "alpha",
            Ordering::Numeric => "numeric",
            Ordering::Time => "time",
            Ordering::Binary => "binary",
            Ordering::Date => "date",
        }
    }

    /// Looks up an ordering by its SPKI token.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "alpha" => Some(Ordering::Alpha),
            "numeric" => Some(Ordering::Numeric),
            "time" => Some(Ordering::Time),
            "binary" => Some(Ordering::Binary),
            "date" => Some(Ordering::Date),
            _ => None,
        }
    }

    /// Compares two byte strings under this ordering, or `None` when either
    /// operand is not well-formed for the ordering (e.g. non-digits under
    /// `numeric`).
    pub fn compare(self, a: &[u8], b: &[u8]) -> Option<CmpOrdering> {
        match self {
            Ordering::Alpha | Ordering::Time | Ordering::Date => Some(a.cmp(b)),
            Ordering::Numeric => {
                if !is_decimal(a) || !is_decimal(b) {
                    return None;
                }
                Some(cmp_magnitude(strip_zeros(a, b'0'), strip_zeros(b, b'0')))
            }
            Ordering::Binary => Some(cmp_magnitude(strip_zeros(a, 0), strip_zeros(b, 0))),
        }
    }

    /// Returns `true` when `value` is well-formed for this ordering.
    pub fn well_formed(self, value: &[u8]) -> bool {
        match self {
            Ordering::Numeric => is_decimal(value),
            _ => true,
        }
    }

    /// Validates that optional bounds are well-formed and non-crossing.
    pub fn valid_range(self, low: &Option<Bound>, high: &Option<Bound>) -> bool {
        if let Some(b) = low {
            if !self.well_formed(&b.value) {
                return false;
            }
        }
        if let Some(b) = high {
            if !self.well_formed(&b.value) {
                return false;
            }
        }
        if let (Some(l), Some(h)) = (low, high) {
            match self.compare(&l.value, &h.value) {
                Some(CmpOrdering::Greater) | None => return false,
                Some(CmpOrdering::Equal) if !(l.inclusive && h.inclusive) => return false,
                _ => {}
            }
        }
        true
    }

    /// Returns `true` when `value` lies within `[low, high]` (respecting
    /// bound inclusivity) under this ordering.
    pub fn contains(self, value: &[u8], low: &Option<Bound>, high: &Option<Bound>) -> bool {
        if !self.well_formed(value) {
            return false;
        }
        if let Some(b) = low {
            match self.compare(value, &b.value) {
                Some(CmpOrdering::Greater) => {}
                Some(CmpOrdering::Equal) if b.inclusive => {}
                _ => return false,
            }
        }
        if let Some(b) = high {
            match self.compare(value, &b.value) {
                Some(CmpOrdering::Less) => {}
                Some(CmpOrdering::Equal) if b.inclusive => {}
                _ => return false,
            }
        }
        true
    }
}

fn is_decimal(v: &[u8]) -> bool {
    !v.is_empty() && v.iter().all(u8::is_ascii_digit)
}

fn strip_zeros(v: &[u8], zero: u8) -> &[u8] {
    let mut s = v;
    while s.len() > 1 && s[0] == zero {
        s = &s[1..];
    }
    // All-zero collapses to a single zero.
    if s.iter().all(|&b| b == zero) && !s.is_empty() {
        return &s[..1];
    }
    s
}

fn cmp_magnitude(a: &[u8], b: &[u8]) -> CmpOrdering {
    a.len().cmp(&b.len()).then_with(|| a.cmp(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_compares_by_value() {
        let n = Ordering::Numeric;
        assert_eq!(n.compare(b"9", b"10"), Some(CmpOrdering::Less));
        assert_eq!(n.compare(b"010", b"10"), Some(CmpOrdering::Equal));
        assert_eq!(n.compare(b"00", b"0"), Some(CmpOrdering::Equal));
        assert_eq!(n.compare(b"123", b"122"), Some(CmpOrdering::Greater));
        assert_eq!(n.compare(b"12x", b"5"), None);
        assert_eq!(n.compare(b"", b"5"), None);
    }

    #[test]
    fn alpha_is_lexicographic() {
        let a = Ordering::Alpha;
        assert_eq!(a.compare(b"10", b"9"), Some(CmpOrdering::Less)); // '1' < '9'
        assert_eq!(a.compare(b"abc", b"abd"), Some(CmpOrdering::Less));
    }

    #[test]
    fn binary_magnitude() {
        let b = Ordering::Binary;
        assert_eq!(b.compare(&[0, 1], &[1]), Some(CmpOrdering::Equal));
        assert_eq!(b.compare(&[2], &[1, 0]), Some(CmpOrdering::Less));
    }

    #[test]
    fn date_time_chronological() {
        let d = Ordering::Date;
        assert_eq!(
            d.compare(b"2000-04-08", b"2000-10-01"),
            Some(CmpOrdering::Less)
        );
        let t = Ordering::Time;
        assert_eq!(
            t.compare(b"2000-04-08_15:18:47", b"2000-04-08_15:18:48"),
            Some(CmpOrdering::Less)
        );
    }

    #[test]
    fn contains_respects_inclusivity() {
        let n = Ordering::Numeric;
        let low = Some(Bound {
            value: b"10".to_vec(),
            inclusive: false,
        });
        let high = Some(Bound {
            value: b"20".to_vec(),
            inclusive: true,
        });
        assert!(!n.contains(b"10", &low, &high));
        assert!(n.contains(b"11", &low, &high));
        assert!(n.contains(b"20", &low, &high));
        assert!(!n.contains(b"21", &low, &high));
        assert!(!n.contains(b"abc", &low, &high));
    }

    #[test]
    fn valid_range_rejects_crossed() {
        let n = Ordering::Numeric;
        let lo = |v: &str, inc| {
            Some(Bound {
                value: v.into(),
                inclusive: inc,
            })
        };
        assert!(n.valid_range(&lo("1", true), &lo("9", true)));
        assert!(!n.valid_range(&lo("9", true), &lo("1", true)));
        // Point range needs both bounds inclusive.
        assert!(n.valid_range(&lo("5", true), &lo("5", true)));
        assert!(!n.valid_range(&lo("5", false), &lo("5", true)));
        assert!(!n.valid_range(&lo("x", true), &None));
    }
}
