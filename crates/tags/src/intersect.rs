//! Complete tag intersection.
//!
//! The paper (§4.1) emphasizes replacing the minimal SPKI tag implementation
//! with "a complete one that performs arbitrary intersection operations"
//! [Howell's thesis, ch. 6].  Every pair of tag forms intersects here; when
//! the greatest lower bound of two forms has no simpler representation (for
//! example `prefix ∩ range`), the result is the exact symbolic
//! [`Tag::Both`] intersection rather than an approximation.

use crate::{Bound, Tag};
use std::cmp::Ordering as CmpOrdering;

/// Computes the set intersection of two tags, `None` when empty.
pub(crate) fn intersect(a: &Tag, b: &Tag) -> Option<Tag> {
    use Tag::*;
    match (a, b) {
        // The universal tag is the identity of intersection.
        (Star, other) | (other, Star) => Some(other.clone()),

        // Sets distribute: (s₁ ∪ s₂ …) ∩ t = ∪ᵢ (sᵢ ∩ t).
        (Set(items), other) | (other, Set(items)) => {
            let hits: Vec<Tag> = items.iter().filter_map(|i| intersect(i, other)).collect();
            if hits.is_empty() {
                None
            } else {
                Some(Set(hits))
            }
        }

        // Symbolic intersections: flatten every conjunct on both sides and
        // combine pairwise.  (Folding one side into the other can loop —
        // `Both(P,R₁) ∩ R₂ → Both(P,R₂) ∩ R₁ → …` — so the conjunct-list
        // algorithm below reduces a finite list monotonically instead.)
        (Both(_, _), _) | (_, Both(_, _)) => {
            let mut conjuncts = Vec::new();
            flatten_conjuncts(a, &mut conjuncts);
            flatten_conjuncts(b, &mut conjuncts);
            combine_conjuncts(conjuncts)
        }

        (Atom(x), Atom(y)) => (x == y).then(|| Atom(x.clone())),

        (Atom(x), Prefix(p)) | (Prefix(p), Atom(x)) => x.starts_with(p).then(|| Atom(x.clone())),

        (
            Atom(x),
            Range {
                ordering,
                low,
                high,
            },
        )
        | (
            Range {
                ordering,
                low,
                high,
            },
            Atom(x),
        ) => ordering.contains(x, low, high).then(|| Atom(x.clone())),

        (Prefix(p), Prefix(q)) => {
            if p.starts_with(q) {
                Some(Prefix(p.clone()))
            } else if q.starts_with(p) {
                Some(Prefix(q.clone()))
            } else {
                None
            }
        }

        (Prefix(_), Range { .. }) | (Range { .. }, Prefix(_)) => {
            // Exact but not representable in a single form.
            Some(Both(Box::new(a.clone()), Box::new(b.clone())))
        }

        (
            Range {
                ordering: o1,
                low: l1,
                high: h1,
            },
            Range {
                ordering: o2,
                low: l2,
                high: h2,
            },
        ) => {
            if o1 != o2 {
                // Different orderings: keep the exact conjunction.
                return Some(Both(Box::new(a.clone()), Box::new(b.clone())));
            }
            let low = tighter_bound(*o1, l1, l2, true)?;
            let high = tighter_bound(*o1, h1, h2, false)?;
            // Reject crossed/empty results.
            if let (Some(l), Some(h)) = (&low, &high) {
                match o1.compare(&l.value, &h.value) {
                    Some(CmpOrdering::Greater) | None => return None,
                    Some(CmpOrdering::Equal) => {
                        if !(l.inclusive && h.inclusive) {
                            return None;
                        }
                        // Degenerate point range collapses to the atom.
                        return Some(Atom(l.value.clone()));
                    }
                    Some(CmpOrdering::Less) => {}
                }
            }
            Some(Range {
                ordering: *o1,
                low,
                high,
            })
        }

        (List(xs), List(ys)) => {
            // Elementwise over the common prefix; the longer (more specific)
            // list contributes its tail.  Paper semantics: appending fields
            // restricts, so the intersection is as long as the longer list.
            let (short, long) = if xs.len() <= ys.len() {
                (xs, ys)
            } else {
                (ys, xs)
            };
            let mut out = Vec::with_capacity(long.len());
            for i in 0..long.len() {
                if i < short.len() {
                    out.push(intersect(&short[i], &long[i])?);
                } else {
                    out.push(long[i].clone());
                }
            }
            Some(List(out))
        }

        // Structure mismatches are empty.
        (List(_), Atom(_) | Prefix(_) | Range { .. })
        | (Atom(_) | Prefix(_) | Range { .. }, List(_)) => None,
    }
}

/// Flattens a tag's conjunction tree into Both-free conjuncts.
fn flatten_conjuncts(t: &Tag, out: &mut Vec<Tag>) {
    match t {
        Tag::Both(x, y) => {
            flatten_conjuncts(x, out);
            flatten_conjuncts(y, out);
        }
        other => out.push(other.clone()),
    }
}

enum Pair {
    /// The two conjuncts have an empty intersection.
    Empty,
    /// The two conjuncts merge into one (possibly compound) tag.
    Simplified(Tag),
    /// No simpler joint form exists; keep both conjuncts.
    Irreducible,
}

/// Combines two Both-free conjuncts.
fn pairwise(a: &Tag, b: &Tag) -> Pair {
    use Tag::*;
    match (a, b) {
        // The irreducible combinations — these are exactly the pairs for
        // which `intersect` would emit a symbolic `Both`, so asking it
        // again would not make progress.
        (Prefix(_), Range { .. }) | (Range { .. }, Prefix(_)) => Pair::Irreducible,
        (Range { ordering: o1, .. }, Range { ordering: o2, .. }) if o1 != o2 => Pair::Irreducible,
        _ => match intersect(a, b) {
            None => Pair::Empty,
            Some(t) => Pair::Simplified(t),
        },
    }
}

/// Reduces a conjunct list to its intersection.
///
/// Each merge strictly shrinks the working list, so this terminates even
/// though individual merges may produce compound results.
fn combine_conjuncts(items: Vec<Tag>) -> Option<Tag> {
    let mut result: Vec<Tag> = Vec::new();
    for item in items {
        let mut item = item;
        let mut i = 0;
        while i < result.len() {
            match pairwise(&result[i], &item) {
                Pair::Empty => return None,
                Pair::Simplified(t) => {
                    result.remove(i);
                    item = t;
                    i = 0; // retry the merged result against the rest
                }
                Pair::Irreducible => i += 1,
            }
        }
        result.push(item);
    }
    let mut iter = result.into_iter();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, t| Tag::Both(Box::new(acc), Box::new(t))))
}

/// Picks the tighter of two optional bounds.
///
/// For lower bounds (`want_max = true`) the larger value wins; for upper
/// bounds the smaller wins.  On ties, the *exclusive* bound is tighter.
/// Returns `None` (propagating failure) only when the bound values cannot be
/// compared under the ordering, which parsing already prevents.
fn tighter_bound(
    ordering: crate::RangeOrdering,
    a: &Option<Bound>,
    b: &Option<Bound>,
    want_max: bool,
) -> Option<Option<Bound>> {
    match (a, b) {
        (None, None) => Some(None),
        (Some(x), None) | (None, Some(x)) => Some(Some(x.clone())),
        (Some(x), Some(y)) => {
            let cmp = ordering.compare(&x.value, &y.value)?;
            let pick_x = match cmp {
                CmpOrdering::Equal => {
                    // Exclusive beats inclusive.
                    return Some(Some(Bound {
                        value: x.value.clone(),
                        inclusive: x.inclusive && y.inclusive,
                    }));
                }
                CmpOrdering::Greater => want_max,
                CmpOrdering::Less => !want_max,
            };
            Some(Some(if pick_x { x.clone() } else { y.clone() }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_sexpr::Sexp;

    fn t(src: &str) -> Tag {
        Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
    }

    fn ix(a: &str, b: &str) -> Option<Tag> {
        t(a).intersect(&t(b))
    }

    #[test]
    fn commutative_on_samples() {
        let samples = [
            "(*)",
            "GET",
            "POST",
            "(web (method GET))",
            "(web (method (* set GET HEAD)))",
            "(* set GET POST)",
            "(* prefix /inbox/)",
            "(* range numeric ge 10 le 99)",
            "(* range alpha ge a le m)",
        ];
        for a in samples {
            for b in samples {
                assert_eq!(ix(a, b), ix(b, a), "{a} ∩ {b}");
            }
        }
    }

    #[test]
    fn idempotent_on_samples() {
        for a in [
            "GET",
            "(a b)",
            "(* set x y)",
            "(* prefix p)",
            "(* range numeric ge 1 le 5)",
        ] {
            let tag = t(a).canonicalize();
            assert_eq!(tag.intersect(&tag), Some(tag.clone()), "{a}");
        }
    }

    #[test]
    fn star_identity() {
        for a in ["GET", "(a b)", "(* set x y)"] {
            assert_eq!(ix("(*)", a), Some(t(a).canonicalize()));
        }
    }

    #[test]
    fn point_range_collapses_to_atom() {
        let i = ix(
            "(* range numeric ge 5 le 10)",
            "(* range numeric ge 10 le 20)",
        )
        .unwrap();
        assert_eq!(i, t("10"));
    }

    #[test]
    fn exclusive_point_is_empty() {
        assert!(ix(
            "(* range numeric ge 5 l 10)",
            "(* range numeric ge 10 le 20)"
        )
        .is_none());
    }

    #[test]
    fn mixed_ordering_stays_symbolic() {
        let i = ix("(* range numeric ge 1)", "(* range alpha le z)").unwrap();
        assert!(matches!(i, Tag::Both(_, _)));
        // It still evaluates membership exactly: "5" satisfies both.
        assert!(i.permits(&t("5")));
        // "abc" fails the numeric side.
        assert!(!i.permits(&t("abc")));
    }

    #[test]
    fn set_of_ranges_prunes_empties() {
        let i = ix(
            "(* set (* range numeric le 5) (* range numeric ge 100))",
            "(* range numeric ge 3 le 4)",
        )
        .unwrap();
        assert!(i.permits(&t("3")));
        assert!(i.permits(&t("4")));
        assert!(!i.permits(&t("100")));
    }

    #[test]
    fn list_atom_mismatch_empty() {
        assert!(ix("(a)", "a").is_none());
        assert!(ix("a", "(a)").is_none());
    }

    #[test]
    fn nested_list_intersection() {
        let i = ix(
            "(db (op (* set select update)) (owner alice))",
            "(db (op select))",
        )
        .unwrap();
        assert_eq!(i, t("(db (op select) (owner alice))"));
    }

    #[test]
    fn unbounded_ranges() {
        let i = ix("(* range numeric ge 10)", "(* range numeric le 20)").unwrap();
        assert!(i.permits(&t("10")));
        assert!(i.permits(&t("20")));
        assert!(!i.permits(&t("9")));
        assert!(!i.permits(&t("21")));
    }
}
