//! Property tests for the tag intersection algebra.

use proptest::prelude::*;
use snowflake_tags::{Bound, RangeOrdering, Tag};

/// Strategy for arbitrary (bounded-depth) tags.
fn arb_tag() -> impl Strategy<Value = Tag> {
    let leaf = prop_oneof![
        Just(Tag::Star),
        "[a-z]{1,6}".prop_map(|s| Tag::Atom(s.into_bytes())),
        "[0-9]{1,3}".prop_map(|s| Tag::Atom(s.into_bytes())),
        "[a-z]{0,4}".prop_map(|s| Tag::Prefix(s.into_bytes())),
        (0u32..500, 0u32..500).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Tag::Range {
                ordering: RangeOrdering::Numeric,
                low: Some(Bound {
                    value: lo.to_string().into_bytes(),
                    inclusive: true,
                }),
                high: Some(Bound {
                    value: hi.to_string().into_bytes(),
                    inclusive: true,
                }),
            }
        }),
        "[a-m]".prop_map(|s| Tag::Range {
            ordering: RangeOrdering::Alpha,
            low: Some(Bound {
                value: s.into_bytes(),
                inclusive: true
            }),
            high: None,
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Tag::List),
            proptest::collection::vec(inner, 1..4).prop_map(Tag::Set),
        ]
    })
}

/// Strategy for ground request tags (atoms and lists of atoms only).
fn arb_request() -> impl Strategy<Value = Tag> {
    let leaf = prop_oneof![
        "[a-z]{1,6}".prop_map(|s| Tag::Atom(s.into_bytes())),
        "[0-9]{1,3}".prop_map(|s| Tag::Atom(s.into_bytes())),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        proptest::collection::vec(inner, 1..4).prop_map(Tag::List)
    })
}

proptest! {
    #[test]
    fn intersection_commutes(a in arb_tag(), b in arb_tag()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn intersection_idempotent(a in arb_tag()) {
        let canon = a.clone().canonicalize();
        prop_assert_eq!(a.intersect(&a), Some(canon));
    }

    #[test]
    fn star_is_identity(a in arb_tag()) {
        prop_assert_eq!(Tag::Star.intersect(&a), Some(a.canonicalize()));
    }

    #[test]
    fn intersection_sound_for_requests(a in arb_tag(), b in arb_tag(), r in arb_request()) {
        // r ∈ (a ∩ b)  ⟺  r ∈ a ∧ r ∈ b.
        let both = a.permits(&r) && b.permits(&r);
        match a.intersect(&b) {
            None => prop_assert!(!both, "empty intersection but {r:?} matches both"),
            Some(i) => prop_assert_eq!(i.permits(&r), both),
        }
    }

    #[test]
    fn implies_reflexive(a in arb_tag()) {
        prop_assert!(a.implies(&a));
    }

    #[test]
    fn implies_transitive_via_intersection(a in arb_tag(), b in arb_tag(), r in arb_request()) {
        // If a permits r then (a ∩ star) permits r etc.; specifically test
        // that intersecting can only shrink the permitted set.
        if let Some(i) = a.intersect(&b) {
            if i.permits(&r) {
                prop_assert!(a.permits(&r));
                prop_assert!(b.permits(&r));
            }
        }
    }

    #[test]
    fn sexp_roundtrip(a in arb_tag()) {
        let e = a.to_sexp();
        let back = Tag::parse(&e).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn canonicalize_stable(a in arb_tag()) {
        let once = a.canonicalize();
        let twice = once.clone().canonicalize();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn canonicalize_preserves_request_semantics(a in arb_tag(), r in arb_request()) {
        let canon = a.clone().canonicalize();
        prop_assert_eq!(a.permits(&r), canon.permits(&r));
    }
}
