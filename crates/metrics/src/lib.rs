//! The unified metrics plane.
//!
//! Every counter the workspace already keeps — pool depth and sheds,
//! prover expansions, memo and key-table hit ratios, broker fan-out,
//! audit-sink drops — was visible only from inside tests and benches.
//! This crate is the operator-facing layer: lock-free primitives
//! ([`Counter`], [`Gauge`], [`LatencyHistogram`]) plus a process-global
//! [`Registry`] of named, labeled families that renders the Prometheus
//! text exposition format (`GET /metrics` in `snowflake_http::metrics`
//! serves exactly [`Registry::render`]).
//!
//! Design rules, in order:
//!
//! * **Recording never blocks.**  Handles are `Arc`s over relaxed
//!   atomics; the registry mutex is touched only at get-or-create and
//!   scrape time, never on a request path.
//! * **One source of truth.**  Existing `*Stats` structs are *not*
//!   duplicated into parallel counters; their owners register
//!   [`Collector`] callbacks that read the same atomics at scrape time
//!   (`register_metrics(...)` on `ServerRuntime`, `AuditSink`,
//!   `Prover`, …), so a scrape can never disagree with the stats API.
//! * **Same name + labels ⇒ same handle.**  [`Registry::histogram`] and
//!   friends get-or-create, so every instance of a surface shares one
//!   family member and a scrape shows the aggregate.
//!
//! Naming scheme (documented for operators in `docs/authz.md`): every
//! family is `sf_<subsystem>_<what>[_total]`, labels identify the member
//! (`surface="http"`, `origin="pool"`), and request latency across all
//! server surfaces shares the single family
//! [`REQUEST_HISTOGRAM`](self::REQUEST_HISTOGRAM) =
//! `sf_request_duration_seconds{surface=...}`.

#![deny(missing_docs)]

pub mod histogram;

pub use histogram::{
    bucket_index, bucket_lower_bound_ns, bucket_upper_bound_ns, HistogramSnapshot,
    LatencyHistogram, Timer, BUCKETS, MIN_SHIFT,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter on one relaxed atomic.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge on one relaxed atomic.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The kind and value of one collected sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A monotonically increasing total.
    Counter(f64),
    /// A point-in-time level.
    Gauge(f64),
}

/// One sample a [`Collector`] contributes to a scrape.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Family name (`sf_pool_queue_depth`).
    pub name: String,
    /// Label pairs identifying the member, sorted at render time.
    pub labels: Vec<(String, String)>,
    /// The value and its exposition type.
    pub value: Value,
}

impl Sample {
    /// A counter sample.
    pub fn counter(name: &str, labels: &[(&str, &str)], v: u64) -> Sample {
        Sample {
            name: name.to_string(),
            labels: own_labels(labels),
            value: Value::Counter(v as f64),
        }
    }

    /// A gauge sample.
    pub fn gauge(name: &str, labels: &[(&str, &str)], v: f64) -> Sample {
        Sample {
            name: name.to_string(),
            labels: own_labels(labels),
            value: Value::Gauge(v),
        }
    }
}

/// A scrape-time callback contributing samples read from live objects —
/// the adapter shape every existing `*Stats` struct registers through,
/// so the registry reads *the same atomics* the stats APIs do (no double
/// counting, no drift).
pub trait Collector: Send + Sync {
    /// Appends this collector's current samples.
    fn collect(&self, out: &mut Vec<Sample>);
}

impl<F: Fn(&mut Vec<Sample>) + Send + Sync> Collector for F {
    fn collect(&self, out: &mut Vec<Sample>) {
        self(out)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct FamilyKey {
    name: String,
    labels: Vec<(String, String)>,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<FamilyKey, Metric>,
    help: BTreeMap<String, String>,
    collectors: BTreeMap<String, Arc<dyn Collector>>,
}

/// A registry of named metric families with label support.
///
/// Most code uses the process-global [`global()`] registry; tests build
/// private ones.  Handles returned by
/// [`counter`](Registry::counter)/[`gauge`](Registry::gauge)/
/// [`histogram`](Registry::histogram) are get-or-create per
/// (name, labels) pair, so registration is idempotent and every caller
/// shares one set of atomics.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// The process-global registry every server surface records into by
/// default; `GET /metrics` renders this one.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The one request-latency family shared by every server surface.
pub const REQUEST_HISTOGRAM: &str = "sf_request_duration_seconds";

/// The request-latency histogram for one surface, in the global
/// registry.  Every surface constructor calls this, so all instances of
/// a surface aggregate into one `{surface="..."}` member.
pub fn request_histogram(surface: &str) -> Arc<LatencyHistogram> {
    global().set_help(REQUEST_HISTOGRAM, "Request handling latency by server surface");
    global().histogram(REQUEST_HISTOGRAM, &[("surface", surface)])
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        unwrap: impl FnOnce(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let key = FamilyKey {
            name: name.to_string(),
            labels: own_labels(labels),
        };
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let metric = inner.metrics.entry(key).or_insert_with(make);
        unwrap(metric).unwrap_or_else(|| {
            panic!(
                "metric family {name} already registered as a {}",
                metric.kind()
            )
        })
    }

    /// Get-or-create the counter `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get-or-create the gauge `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get-or-create the latency histogram `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Histogram(Arc::new(LatencyHistogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Sets the `# HELP` line for a family name.
    pub fn set_help(&self, name: &str, help: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Registers (or replaces) the collector stored under `id`.
    ///
    /// Replacement-by-id is the contract that makes `register_metrics`
    /// idempotent for every stats owner: re-registering a rebuilt server
    /// swaps its callback in place of the dead one instead of producing
    /// duplicate samples.
    pub fn register_collector(&self, id: &str, collector: Arc<dyn Collector>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.collectors.insert(id.to_string(), collector);
    }

    /// Removes the collector stored under `id`.
    pub fn unregister_collector(&self, id: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.collectors.remove(id);
    }

    /// Renders the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`) from one consistent point-in-time
    /// pass: all direct metrics are snapshotted and all collectors run
    /// under a single registry lock acquisition, then formatting happens
    /// on the copies.
    pub fn render(&self) -> String {
        // Phase 1: gather everything under the lock.
        let (mut samples, mut histograms, help) = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let mut samples: Vec<Sample> = Vec::new();
            let mut histograms: Vec<(FamilyKey, HistogramSnapshot)> = Vec::new();
            for (key, metric) in &inner.metrics {
                match metric {
                    Metric::Counter(c) => samples.push(Sample {
                        name: key.name.clone(),
                        labels: key.labels.clone(),
                        value: Value::Counter(c.get() as f64),
                    }),
                    Metric::Gauge(g) => samples.push(Sample {
                        name: key.name.clone(),
                        labels: key.labels.clone(),
                        value: Value::Gauge(g.get() as f64),
                    }),
                    Metric::Histogram(h) => histograms.push((key.clone(), h.snapshot())),
                }
            }
            for collector in inner.collectors.values() {
                collector.collect(&mut samples);
            }
            (samples, histograms, inner.help.clone())
        };

        // Phase 2: group by family name and format.
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        let mut last_family = String::new();
        for s in &samples {
            if s.name != last_family {
                family_header(
                    &mut out,
                    &s.name,
                    match s.value {
                        Value::Counter(_) => "counter",
                        Value::Gauge(_) => "gauge",
                    },
                    &help,
                );
                last_family = s.name.clone();
            }
            out.push_str(&s.name);
            push_labels(&mut out, &s.labels, None);
            let v = match s.value {
                Value::Counter(v) | Value::Gauge(v) => v,
            };
            out.push(' ');
            push_f64(&mut out, v);
            out.push('\n');
        }
        let mut last_family = String::new();
        for (key, snap) in &histograms {
            if key.name != last_family {
                family_header(&mut out, &key.name, "histogram", &help);
                last_family = key.name.clone();
            }
            let mut cumulative = 0u64;
            for (i, c) in snap.buckets.iter().enumerate() {
                cumulative += c;
                let le = match bucket_upper_bound_ns(i) {
                    Some(ns) => {
                        let mut le = String::new();
                        push_f64(&mut le, ns as f64 / 1e9);
                        le
                    }
                    None => "+Inf".to_string(),
                };
                out.push_str(&key.name);
                out.push_str("_bucket");
                push_labels(&mut out, &key.labels, Some(&le));
                out.push(' ');
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(&key.name);
            out.push_str("_sum");
            push_labels(&mut out, &key.labels, None);
            out.push(' ');
            push_f64(&mut out, snap.sum_ns as f64 / 1e9);
            out.push('\n');
            out.push_str(&key.name);
            out.push_str("_count");
            push_labels(&mut out, &key.labels, None);
            out.push(' ');
            out.push_str(&cumulative_total(snap).to_string());
            out.push('\n');
        }
        out
    }
}

fn cumulative_total(snap: &HistogramSnapshot) -> u64 {
    snap.count()
}

fn family_header(out: &mut String, name: &str, kind: &str, help: &BTreeMap<String, String>) {
    if let Some(h) = help.get(name) {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(h);
        out.push('\n');
    }
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn push_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Formats an `f64` the way the exposition format expects: integral
/// values print without a fractional part, everything else uses Rust's
/// shortest-roundtrip decimal (never scientific notation).
fn push_f64(out: &mut String, v: f64) {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("sf_x_total", &[("surface", "http")]);
        let b = r.counter("sf_x_total", &[("surface", "http")]);
        let c = r.counter("sf_x_total", &[("surface", "rmi")]);
        a.inc();
        b.add(2);
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("sf_x_total", &[]);
        let _ = r.gauge("sf_x_total", &[]);
    }

    #[test]
    fn collectors_replace_by_id() {
        let r = Registry::new();
        r.register_collector(
            "a",
            Arc::new(|out: &mut Vec<Sample>| out.push(Sample::gauge("sf_g", &[], 1.0))),
        );
        r.register_collector(
            "a",
            Arc::new(|out: &mut Vec<Sample>| out.push(Sample::gauge("sf_g", &[], 2.0))),
        );
        let text = r.render();
        assert!(text.contains("sf_g 2\n"), "{text}");
        assert!(!text.contains("sf_g 1\n"), "{text}");
    }

    #[test]
    fn render_groups_types_and_orders_labels() {
        let r = Registry::new();
        r.counter("sf_b_total", &[("surface", "rmi")]).add(7);
        r.counter("sf_b_total", &[("surface", "http")]).add(3);
        r.gauge("sf_a_depth", &[]).set(5);
        let text = r.render();
        let a = text.find("# TYPE sf_a_depth gauge").unwrap();
        let b = text.find("# TYPE sf_b_total counter").unwrap();
        assert!(a < b, "{text}");
        let http = text.find("sf_b_total{surface=\"http\"} 3").unwrap();
        let rmi = text.find("sf_b_total{surface=\"rmi\"} 7").unwrap();
        assert!(http < rmi, "{text}");
        // Exactly one TYPE line per family.
        assert_eq!(text.matches("# TYPE sf_b_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_render_cumulative() {
        let r = Registry::new();
        let h = r.histogram("sf_lat_seconds", &[("surface", "x")]);
        h.record_ns(100); // bucket 0
        h.record_ns(100);
        h.record_ns(300); // bucket 2
        let text = r.render();
        assert!(text.contains("# TYPE sf_lat_seconds histogram"), "{text}");
        // 128ns boundary carries the first two samples.
        assert!(
            text.contains("sf_lat_seconds_bucket{surface=\"x\",le=\"0.000000128\"} 2"),
            "{text}"
        );
        // 512ns boundary is cumulative: all three.
        assert!(
            text.contains("sf_lat_seconds_bucket{surface=\"x\",le=\"0.000000512\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("sf_lat_seconds_bucket{surface=\"x\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("sf_lat_seconds_count{surface=\"x\"} 3"), "{text}");
        assert!(text.contains("sf_lat_seconds_sum{surface=\"x\"} 0.0000005"), "{text}");
    }
}
