//! The fixed-bucket log-scale latency histogram.
//!
//! Recording is three relaxed atomic RMWs (bucket increment, sum add, max
//! max) — no locks, no allocation, well under the 50ns/record budget the
//! serving hot paths demand.  Buckets are powers of two over nanoseconds:
//! bucket 0 holds everything below 2^[`MIN_SHIFT`] ns and bucket `i`
//! covers `[2^(MIN_SHIFT+i-1), 2^(MIN_SHIFT+i))`, so the index is one
//! `leading_zeros` away and the bucket layout is identical in every
//! process — snapshots from different shards or machines merge by plain
//! addition.
//!
//! Quantiles (p50/p90/p99/…) are derived from a [`HistogramSnapshot`] by
//! rank-walking the cumulative counts and interpolating linearly inside
//! the target bucket; the estimate is monotone in the requested quantile
//! (the proptest suite pins this down).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of bucket 0's upper bound in nanoseconds: everything under 128ns
/// lands in bucket 0.
pub const MIN_SHIFT: u32 = 7;

/// Number of buckets, including the final overflow (`+Inf`) bucket.  The
/// last *finite* boundary is `2^(MIN_SHIFT + BUCKETS - 2)` ns ≈ 550s —
/// wider than any request this system should ever serve.
pub const BUCKETS: usize = 34;

/// The bucket a sample of `ns` nanoseconds lands in.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let bits = 64 - ns.leading_zeros();
    (bits.saturating_sub(MIN_SHIFT) as usize).min(BUCKETS - 1)
}

/// The exclusive upper bound of bucket `i` in nanoseconds, or `None` for
/// the overflow bucket (`+Inf`).
#[inline]
pub fn bucket_upper_bound_ns(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some(1u64 << (MIN_SHIFT as usize + i))
    }
}

/// The inclusive lower bound of bucket `i` in nanoseconds.
#[inline]
pub fn bucket_lower_bound_ns(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (MIN_SHIFT as usize + i - 1)
    }
}

/// A lock-free fixed-bucket log-scale latency histogram.
///
/// Shareable across every thread of a surface; recording never blocks and
/// never allocates.  Reads ([`snapshot`](LatencyHistogram::snapshot)) are
/// wait-free too: each counter is loaded relaxed, so a snapshot taken
/// under concurrent recording is a consistent-enough point-in-time view
/// (counts never go backwards, and the stress suite asserts no sample is
/// ever lost).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample.  Three relaxed atomic RMWs; safe on any hot
    /// path.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records an elapsed [`Duration`].
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Starts a timer that records its elapsed time here when dropped —
    /// the shape request handlers with early returns want:
    /// `let _timer = latency.start_timer();` covers every exit path.
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            hist: self,
            start: std::time::Instant::now(),
        }
    }

    /// A point-in-time copy of every counter, from which quantiles and
    /// the Prometheus exposition are derived.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Records elapsed time into its histogram on drop (see
/// [`LatencyHistogram::start_timer`]).
#[derive(Debug)]
pub struct Timer<'a> {
    hist: &'a LatencyHistogram,
    start: std::time::Instant,
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed());
    }
}

/// An owned copy of a histogram's counters.
///
/// Snapshots merge by addition ([`merge`](HistogramSnapshot::merge)) —
/// per-shard or per-process histograms aggregate into one distribution
/// because every histogram shares the same fixed bucket layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded nanoseconds.
    pub sum_ns: u64,
    /// Largest single sample.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds another snapshot into this one (shard aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The `q`-quantile estimate in nanoseconds (`q` in `[0, 1]`).
    ///
    /// Rank-walks the cumulative counts to the target bucket and
    /// interpolates linearly between the bucket's bounds; the overflow
    /// bucket interpolates toward the recorded max.  Returns 0 for an
    /// empty snapshot.  Monotone in `q`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cumulative + c >= rank {
                let lower = bucket_lower_bound_ns(i) as f64;
                let upper = match bucket_upper_bound_ns(i) {
                    Some(u) => u as f64,
                    // Overflow bucket: the recorded max is the only
                    // honest upper bound (clamped so the slope stays
                    // non-negative).
                    None => (self.max_ns as f64).max(lower),
                };
                let frac = (rank - cumulative) as f64 / c as f64;
                return lower + (upper - lower) * frac;
            }
            cumulative += c;
        }
        self.max_ns as f64
    }

    /// p50 in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// p90 in nanoseconds.
    pub fn p90_ns(&self) -> f64 {
        self.quantile_ns(0.90)
    }

    /// p99 in nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_partition_the_axis() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(127), 0);
        assert_eq!(bucket_index(128), 1);
        assert_eq!(bucket_index(255), 1);
        assert_eq!(bucket_index(256), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every finite boundary is the first value of the next bucket.
        for i in 0..BUCKETS - 1 {
            let upper = bucket_upper_bound_ns(i).unwrap();
            assert_eq!(bucket_index(upper - 1), i);
            assert_eq!(bucket_index(upper).min(BUCKETS - 1), (i + 1).min(BUCKETS - 1));
            assert_eq!(bucket_lower_bound_ns(i + 1), upper);
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ns(1_000); // ~1µs
        }
        for _ in 0..10 {
            h.record_ns(1_000_000); // ~1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max_ns, 1_000_000);
        // p50 lands in the bucket containing 1µs; p99 in the 1ms bucket.
        let p50 = s.p50_ns();
        let p99 = s.p99_ns();
        assert!(p50 >= 512.0 && p50 <= 2048.0, "p50={p50}");
        assert!(p99 >= 524_288.0 && p99 <= 2_097_152.0, "p99={p99}");
        assert!(p50 <= s.p90_ns() && s.p90_ns() <= p99);
    }

    #[test]
    fn snapshots_merge_by_addition() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_ns(100);
        a.record_ns(10_000);
        b.record_ns(100);
        b.record_ns(50_000_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum_ns, 100 + 10_000 + 100 + 50_000_000);
        assert_eq!(merged.max_ns, 50_000_000);
    }
}
