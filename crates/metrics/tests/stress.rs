//! Concurrent-recording stress: many threads hammer one histogram and
//! one counter family; no sample may be lost and the sum must be exact.

use snowflake_metrics::{LatencyHistogram, Registry};
use std::sync::Arc;

#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let registry = Arc::new(Registry::new());
    let hist: Arc<LatencyHistogram> =
        registry.histogram("sf_stress_seconds", &[("surface", "stress")]);
    let ctr = registry.counter("sf_stress_total", &[]);

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            let ctr = Arc::clone(&ctr);
            std::thread::spawn(move || {
                // Distinct per-thread values so the expected sum is exact.
                for i in 0..PER_THREAD {
                    hist.record_ns(t as u64 * 1_000 + (i % 97));
                    ctr.inc();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let total = THREADS as u64 * PER_THREAD;
    let snap = hist.snapshot();
    assert_eq!(snap.count(), total, "histogram lost samples");
    assert_eq!(ctr.get(), total, "counter lost increments");

    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| t * 1_000 + (i % 97)).sum::<u64>())
        .sum();
    assert_eq!(snap.sum_ns, expected_sum, "histogram sum drifted");

    // The rendered exposition agrees with the snapshot.
    let text = registry.render();
    assert!(
        text.contains(&format!(
            "sf_stress_seconds_count{{surface=\"stress\"}} {total}"
        )),
        "{text}"
    );
    assert!(text.contains(&format!("sf_stress_total {total}")), "{text}");
}
