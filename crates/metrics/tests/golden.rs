//! Golden-file test of the Prometheus text exposition.
//!
//! The rendered `/metrics` text is an interface operators' scrapers
//! parse; this pins the exact bytes — family grouping, HELP/TYPE lines,
//! label ordering and escaping, cumulative bucket counts — for a
//! deterministic registry.  Regenerate with
//! `SF_BLESS_GOLDEN=1 cargo test -p snowflake-metrics --test golden`
//! after an intentional format change, and review the diff.

use snowflake_metrics::{Registry, Sample};
use std::sync::Arc;

fn deterministic_registry() -> Registry {
    let r = Registry::new();
    r.set_help("sf_request_duration_seconds", "Request handling latency by server surface");
    let http = r.histogram("sf_request_duration_seconds", &[("surface", "http")]);
    // Samples chosen to straddle bucket boundaries: two below 128ns,
    // one in [256, 512), one in [65536, 131072).
    http.record_ns(100);
    http.record_ns(127);
    http.record_ns(300);
    http.record_ns(100_000);
    let rmi = r.histogram("sf_request_duration_seconds", &[("surface", "rmi")]);
    rmi.record_ns(2_000);

    r.set_help("sf_sheds_total", "Requests refused under overload");
    r.counter("sf_sheds_total", &[("origin", "pool")]).add(3);
    r.counter("sf_sheds_total", &[("origin", "reactor"), ("surface", "http")])
        .add(2);
    r.gauge("sf_pool_queue_depth", &[]).set(4);
    // A label value exercising the escaping rules.
    r.counter("sf_odd_total", &[("path", "a\"b\\c\nd")]).add(1);
    r.register_collector(
        "servlet",
        Arc::new(|out: &mut Vec<Sample>| {
            out.push(Sample::counter("sf_servlet_mac_hits_total", &[], 9));
            out.push(Sample::gauge("sf_chain_memo_entries", &[("surface", "servlet")], 5.0));
        }),
    );
    r
}

#[test]
fn exposition_matches_golden_file() {
    let rendered = deterministic_registry().render();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.txt");
    if std::env::var("SF_BLESS_GOLDEN").is_ok() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "exposition drifted from tests/golden_metrics.txt; \
         re-bless with SF_BLESS_GOLDEN=1 if intentional"
    );
}

#[test]
fn golden_buckets_are_cumulative_and_complete() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.txt");
    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    // Cumulativity: the http surface's bucket counts never decrease and
    // end at the _count value.
    let mut last = 0u64;
    let mut buckets = 0;
    for line in golden.lines() {
        if let Some(rest) = line.strip_prefix("sf_request_duration_seconds_bucket{le=") {
            panic!("bucket line lost its surface label: {rest}");
        }
        if line.starts_with("sf_request_duration_seconds_bucket{surface=\"http\"") {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative bucket line: {line}");
            last = v;
            buckets += 1;
        }
    }
    assert_eq!(buckets, snowflake_metrics::BUCKETS, "a bucket line went missing");
    assert!(
        golden.contains(&format!("sf_request_duration_seconds_count{{surface=\"http\"}} {last}")),
        "+Inf bucket disagrees with _count"
    );
}
