//! Property tests for the histogram math: samples land in the right
//! log-scale bucket, bucket counts render cumulatively, and quantile
//! estimates are monotone in the requested quantile.

use proptest::prelude::*;
use snowflake_metrics::{
    bucket_index, bucket_lower_bound_ns, bucket_upper_bound_ns, LatencyHistogram, BUCKETS,
};

proptest! {
    #[test]
    fn sample_lands_in_its_bucket(ns in any::<u64>()) {
        let i = bucket_index(ns);
        prop_assert!(i < BUCKETS);
        prop_assert!(ns >= bucket_lower_bound_ns(i) || i == 0);
        if let Some(upper) = bucket_upper_bound_ns(i) {
            prop_assert!(ns < upper, "ns={ns} bucket={i} upper={upper}");
        }
        let h = LatencyHistogram::new();
        h.record_ns(ns);
        let snap = h.snapshot();
        prop_assert_eq!(snap.buckets[i], 1);
        prop_assert_eq!(snap.count(), 1);
        prop_assert_eq!(snap.max_ns, ns);
    }

    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(any::<u64>(), 1..200),
                              qa in 0..1000u64, qb in 0..1000u64) {
        let h = LatencyHistogram::new();
        for &s in &samples {
            // Keep sums away from u64 overflow; the bucket math itself is
            // exercised across the full range by the test above.
            h.record_ns(s >> 8);
        }
        let snap = h.snapshot();
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let est_lo = snap.quantile_ns(lo as f64 / 1000.0);
        let est_hi = snap.quantile_ns(hi as f64 / 1000.0);
        prop_assert!(est_lo <= est_hi, "q{lo}={est_lo} > q{hi}={est_hi}");
        // Every estimate is bounded by the recorded extremes' buckets.
        prop_assert!(est_hi <= snap.max_ns as f64 + 1.0 || est_hi <= bucket_upper_bound_ns(bucket_index(snap.max_ns)).unwrap_or(u64::MAX) as f64);
    }

    #[test]
    fn merged_quantiles_equal_pooled_recording(a in proptest::collection::vec(any::<u32>(), 0..100),
                                               b in proptest::collection::vec(any::<u32>(), 0..100)) {
        let sharded = (LatencyHistogram::new(), LatencyHistogram::new());
        let pooled = LatencyHistogram::new();
        for &s in &a {
            sharded.0.record_ns(s as u64);
            pooled.record_ns(s as u64);
        }
        for &s in &b {
            sharded.1.record_ns(s as u64);
            pooled.record_ns(s as u64);
        }
        let mut merged = sharded.0.snapshot();
        merged.merge(&sharded.1.snapshot());
        prop_assert_eq!(merged, pooled.snapshot());
    }
}
