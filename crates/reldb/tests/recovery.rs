//! Crash-injection harness for the reldb write-ahead log.
//!
//! The core claim of the durability layer: a crash at **any byte** of a
//! durable write leaves the store recoverable to either the pre-write or
//! the post-write state — never a torn third state.  The harness proves
//! it exhaustively: for every byte boundary of a WAL frame it arms a
//! [`CrashPoint`] that kills the write there, reopens the database from
//! disk, and compares the recovered state against both legal outcomes.
//!
//! The property test drives the same machinery probabilistically: for an
//! arbitrary interleaving of inserts and deletes, every frame-boundary
//! prefix of the final WAL must replay to exactly the table state the
//! live database held at that point in history — and any mid-frame cut
//! must replay to the state one operation earlier.

use proptest::prelude::*;
use snowflake_core::durable::{CrashPoint, Durable};
use snowflake_reldb::wal::encode_frame;
use snowflake_reldb::{
    ColumnType, Database, DurableDatabase, Predicate, Schema, Value, WalOp,
};
use std::path::PathBuf;

fn schema(db: &mut Database) {
    db.create_table(
        "t",
        Schema::new(&[("k", ColumnType::Text), ("n", ColumnType::Int)]),
    );
    db.table_mut("t").unwrap().create_index("k").unwrap();
}

/// A fresh on-disk base path (removing any artifacts of a prior run).
fn fresh_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sf-reldb-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for ext in ["wal", "snap", "snap.tmp"] {
        let _ = std::fs::remove_file(dir.join(name).with_extension(ext));
    }
    dir.join(name)
}

/// All live rows of `t`, sorted (the canonical state fingerprint).
fn state(db: &DurableDatabase) -> Vec<Vec<Value>> {
    let mut rows = db
        .database()
        .table("t")
        .unwrap()
        .select(&Predicate::True, &[])
        .unwrap();
    rows.sort();
    rows
}

fn row(k: &str, n: i64) -> Vec<Value> {
    vec![Value::text(k), Value::Int(n)]
}

/// Kills an insert at every byte boundary of its frame and asserts the
/// reopened database holds exactly the pre- or post-write state.
#[test]
fn insert_crash_at_every_byte_boundary_recovers_pre_or_post() {
    // The target op and its exact frame length (seq 2 after two setup
    // inserts — the seq digit count affects the frame length, so compute
    // it for the real seq).
    let target = WalOp::Insert {
        table: "t".into(),
        row: row("c", 3),
    };
    let frame_len = encode_frame(2, &target).len();
    assert!(frame_len > 20, "frame should span many boundaries");

    for cut in 0..=frame_len {
        let base = fresh_base(&format!("ins-cut-{cut}"));
        // Pre-state: two committed rows, crash point still inert budget-
        // wise (the budget counts only bytes written after arming — the
        // setup runs on a separate open).
        {
            let mut db = DurableDatabase::open(&base, schema).unwrap();
            db.insert("t", row("a", 1)).unwrap();
            db.insert("t", row("b", 2)).unwrap();
        }
        let pre = {
            let db = DurableDatabase::open(&base, schema).unwrap();
            state(&db)
        };

        // The doomed write: crash after exactly `cut` bytes of the frame.
        let crash = CrashPoint::after_bytes(cut as u64);
        {
            let mut db =
                DurableDatabase::open_with_crash_point(&base, schema, crash.clone()).unwrap();
            let r = db.insert("t", row("c", 3));
            if cut < frame_len {
                assert!(r.is_err(), "cut {cut}: a torn write must error");
                assert!(crash.tripped());
            } else {
                // The full frame fit the budget: the write committed.
                r.unwrap();
            }
        }

        // "Restart": recover from disk only.
        let db = DurableDatabase::open(&base, schema).unwrap();
        let recovered = state(&db);
        let mut post = pre.clone();
        post.push(row("c", 3));
        post.sort();
        if cut < frame_len {
            assert_eq!(
                recovered, pre,
                "cut {cut}: torn frame must recover to the pre-write state"
            );
            if cut > 0 {
                assert_eq!(
                    db.recovery().truncated_bytes,
                    cut as u64,
                    "cut {cut}: exactly the torn prefix is discarded"
                );
            }
        } else {
            assert_eq!(recovered, post, "complete frame must recover to the post-write state");
        }
    }
}

/// The same exhaustive sweep for a delete (predicate-framed op).
#[test]
fn delete_crash_at_every_byte_boundary_recovers_pre_or_post() {
    let target = WalOp::Delete {
        table: "t".into(),
        pred: Predicate::eq("k", Value::text("a")),
    };
    let frame_len = encode_frame(2, &target).len();

    for cut in 0..=frame_len {
        let base = fresh_base(&format!("del-cut-{cut}"));
        {
            let mut db = DurableDatabase::open(&base, schema).unwrap();
            db.insert("t", row("a", 1)).unwrap();
            db.insert("t", row("b", 2)).unwrap();
        }
        let crash = CrashPoint::after_bytes(cut as u64);
        {
            let mut db =
                DurableDatabase::open_with_crash_point(&base, schema, crash.clone()).unwrap();
            let r = db.delete("t", &Predicate::eq("k", Value::text("a")));
            assert_eq!(r.is_err(), cut < frame_len, "cut {cut}");
        }
        let db = DurableDatabase::open(&base, schema).unwrap();
        let expected = if cut < frame_len {
            vec![row("a", 1), row("b", 2)]
        } else {
            vec![row("b", 2)]
        };
        assert_eq!(state(&db), expected, "cut {cut}");
    }
}

/// Crashes at every stage of compaction (snapshot bytes, snapshot fsync,
/// rename, WAL truncation) must preserve the exact committed state.
#[test]
fn compaction_crash_never_loses_committed_state() {
    let full_snapshot_len = {
        // Measure a same-shaped compaction on a scratch copy to learn the
        // snapshot's byte length.
        let base = fresh_base("compact-measure");
        let mut db = DurableDatabase::open(&base, schema).unwrap();
        for i in 0..5 {
            db.insert("t", row(&format!("k{i}"), i)).unwrap();
        }
        db.compact().unwrap();
        std::fs::read(base.with_extension("snap")).unwrap().len()
    };

    // Cut budgets from 0 bytes through past-the-end (the +3 covers the
    // post-write check()s guarding fsync/rename/truncate).
    for cut in (0..=full_snapshot_len + 3).step_by(7) {
        let base = fresh_base(&format!("compact-cut-{cut}"));
        {
            let mut db = DurableDatabase::open(&base, schema).unwrap();
            for i in 0..5 {
                db.insert("t", row(&format!("k{i}"), i)).unwrap();
            }
        }
        let committed = {
            let db = DurableDatabase::open(&base, schema).unwrap();
            state(&db)
        };
        {
            let mut db = DurableDatabase::open_with_crash_point(
                &base,
                schema,
                CrashPoint::after_bytes(cut as u64),
            )
            .unwrap();
            let _ = db.compact();
        }
        let db = DurableDatabase::open(&base, schema).unwrap();
        assert_eq!(
            state(&db),
            committed,
            "compaction cut at {cut} bytes changed committed state"
        );
    }
}

/// Post-crash appends after recovery keep working and stay recoverable.
#[test]
fn recovery_then_further_writes_then_recovery_again() {
    let base = fresh_base("rewrite");
    {
        let mut db = DurableDatabase::open(&base, schema).unwrap();
        db.insert("t", row("a", 1)).unwrap();
    }
    // Torn write.
    {
        let mut db = DurableDatabase::open_with_crash_point(
            &base,
            schema,
            CrashPoint::after_bytes(5),
        )
        .unwrap();
        assert!(db.insert("t", row("b", 2)).is_err());
    }
    // Recover, then write more.
    {
        let mut db = DurableDatabase::open(&base, schema).unwrap();
        assert!(db.recovery().truncated_bytes > 0);
        db.insert("t", row("c", 3)).unwrap();
        db.compact().unwrap();
        db.insert("t", row("d", 4)).unwrap();
    }
    let db = DurableDatabase::open(&base, schema).unwrap();
    assert_eq!(state(&db), vec![row("a", 1), row("c", 3), row("d", 4)]);
    assert_eq!(db.recovery().from_snapshot, 2);
    assert_eq!(db.recovery().replayed, 1);
}

#[derive(Debug, Clone)]
enum Op {
    Insert { k: u8, n: i64 },
    Delete { k: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, -100i64..100).prop_map(|(k, n)| Op::Insert { k, n }),
        (0u8..6).prop_map(|k| Op::Delete { k }),
    ]
}

fn apply_op(db: &mut DurableDatabase, op: &Op) {
    match op {
        Op::Insert { k, n } => {
            db.insert("t", row(&format!("k{k}"), *n)).unwrap();
        }
        Op::Delete { k } => {
            db.delete("t", &Predicate::eq("k", Value::text(format!("k{k}"))))
                .unwrap();
        }
    }
}

proptest! {
    /// For arbitrary insert/delete interleavings, every frame-boundary
    /// prefix of the WAL replays to exactly the state the live database
    /// held at that point, and every mid-frame cut replays to the state
    /// one operation earlier.
    #[test]
    fn any_wal_prefix_replays_to_a_consistent_point_in_history(
        ops in proptest::collection::vec(arb_op(), 1..12),
        mid_cut in 1u64..50,
    ) {
        let base = fresh_base("proptest");
        // Drive the live database, fingerprinting after every op.
        let mut histories: Vec<Vec<Vec<Value>>> = Vec::new();
        let mut boundaries: Vec<u64> = Vec::new();
        {
            let mut db = DurableDatabase::open(&base, schema).unwrap();
            histories.push(state(&db));
            boundaries.push(db.wal_bytes());
            for op in &ops {
                apply_op(&mut db, op);
                histories.push(state(&db));
                boundaries.push(db.wal_bytes());
            }
        }
        let wal_path = base.with_extension("wal");
        let full = std::fs::read(&wal_path).unwrap();
        prop_assert_eq!(*boundaries.last().unwrap() as usize, full.len());

        // Every frame-boundary prefix replays to its point in history.
        for (i, &end) in boundaries.iter().enumerate() {
            std::fs::write(&wal_path, &full[..end as usize]).unwrap();
            let db = DurableDatabase::open(&base, schema).unwrap();
            prop_assert_eq!(&state(&db), &histories[i], "prefix of {} ops", i);
        }

        // A mid-frame cut is a torn tail: state rolls back to the last
        // whole frame before the cut.
        let cut = (boundaries[boundaries.len() - 1]
            .saturating_sub(mid_cut))
            .max(boundaries[boundaries.len() - 2] + 1)
            .min(boundaries[boundaries.len() - 1].saturating_sub(1));
        if cut > boundaries[boundaries.len() - 2] {
            std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
            let db = DurableDatabase::open(&base, schema).unwrap();
            prop_assert_eq!(&state(&db), &histories[histories.len() - 2]);
        }
    }
}
