//! Model-based property test: the table must agree with a naive Vec-of-rows
//! model under arbitrary interleavings of insert/update/delete/select, with
//! and without an index.

use proptest::prelude::*;
use snowflake_reldb::{ColumnType, Predicate, Schema, Table, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert { owner: u8, n: i64 },
    UpdateOwner { from: u8, to: u8 },
    Delete { owner: u8 },
    Select { owner: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, any::<i64>()).prop_map(|(owner, n)| Op::Insert { owner, n }),
        (0u8..4, 0u8..4).prop_map(|(from, to)| Op::UpdateOwner { from, to }),
        (0u8..4).prop_map(|owner| Op::Delete { owner }),
        (0u8..4).prop_map(|owner| Op::Select { owner }),
    ]
}

fn owner_name(o: u8) -> String {
    format!("user{o}")
}

/// The trivially correct model.
#[derive(Default)]
struct Model {
    rows: Vec<(String, i64)>,
}

impl Model {
    fn apply(&mut self, op: &Op) -> Option<Vec<i64>> {
        match op {
            Op::Insert { owner, n } => {
                self.rows.push((owner_name(*owner), *n));
                None
            }
            Op::UpdateOwner { from, to } => {
                let from = owner_name(*from);
                let to = owner_name(*to);
                for row in &mut self.rows {
                    if row.0 == from {
                        row.0 = to.clone();
                    }
                }
                None
            }
            Op::Delete { owner } => {
                let o = owner_name(*owner);
                self.rows.retain(|r| r.0 != o);
                None
            }
            Op::Select { owner } => {
                let o = owner_name(*owner);
                let mut out: Vec<i64> =
                    self.rows.iter().filter(|r| r.0 == o).map(|r| r.1).collect();
                out.sort_unstable();
                Some(out)
            }
        }
    }
}

fn apply_table(table: &mut Table, op: &Op) -> Option<Vec<i64>> {
    match op {
        Op::Insert { owner, n } => {
            table
                .insert(vec![Value::text(owner_name(*owner)), Value::Int(*n)])
                .unwrap();
            None
        }
        Op::UpdateOwner { from, to } => {
            table
                .update(
                    &Predicate::eq("owner", Value::text(owner_name(*from))),
                    &[("owner".to_string(), Value::text(owner_name(*to)))],
                )
                .unwrap();
            None
        }
        Op::Delete { owner } => {
            table
                .delete(&Predicate::eq("owner", Value::text(owner_name(*owner))))
                .unwrap();
            None
        }
        Op::Select { owner } => {
            let rows = table
                .select(
                    &Predicate::eq("owner", Value::text(owner_name(*owner))),
                    &["n".to_string()],
                )
                .unwrap();
            let mut out: Vec<i64> = rows
                .into_iter()
                .map(|r| match &r[0] {
                    Value::Int(n) => *n,
                    other => panic!("expected int, got {other:?}"),
                })
                .collect();
            out.sort_unstable();
            Some(out)
        }
    }
}

proptest! {
    #[test]
    fn table_matches_model(ops in proptest::collection::vec(arb_op(), 0..60),
                           indexed in any::<bool>()) {
        let schema = Schema::new(&[("owner", ColumnType::Text), ("n", ColumnType::Int)]);
        let mut table = Table::new(schema);
        if indexed {
            table.create_index("owner").unwrap();
        }
        let mut model = Model::default();
        for op in &ops {
            let got = apply_table(&mut table, op);
            let want = model.apply(op);
            prop_assert_eq!(got, want, "diverged on {:?} (indexed={})", op, indexed);
        }
        prop_assert_eq!(table.len(), model.rows.len());
    }
}
