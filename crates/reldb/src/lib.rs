//! A small relational database substrate.
//!
//! The paper's second application "attaches Snowflake security to a
//! relational email database … accept\[ing\] insert, update, and select
//! requests as RMI invocations on a Remote Database object" (§6.2).  No
//! external database is permitted in this reproduction, so this crate is
//! that substrate: typed columns, tables, predicate-filtered
//! select/insert/update/delete, a simple hash index, and an S-expression
//! encoding for shipping queries and rows over RMI.

mod predicate;
mod value;
pub mod wal;

pub use predicate::Predicate;
pub use value::Value;
pub use wal::{DurableDatabase, WalOp};

use snowflake_sexpr::{ParseError, Sexp};
use std::collections::HashMap;
use std::fmt;

/// A column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 text.
    Text,
    /// Raw bytes.
    Bytes,
    /// Boolean.
    Bool,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Ordered column definitions.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(cols: &[(&str, ColumnType)]) -> Schema {
        Schema {
            columns: cols
                .iter()
                .map(|(n, t)| Column {
                    name: (*n).to_string(),
                    ty: *t,
                })
                .collect(),
        }
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validates a row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<(), DbError> {
        if row.len() != self.columns.len() {
            return Err(DbError::Schema(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (value, col) in row.iter().zip(&self.columns) {
            let ok = matches!(
                (value, col.ty),
                (Value::Int(_), ColumnType::Int)
                    | (Value::Text(_), ColumnType::Text)
                    | (Value::Bytes(_), ColumnType::Bytes)
                    | (Value::Bool(_), ColumnType::Bool)
                    | (Value::Null, _)
            );
            if !ok {
                return Err(DbError::Schema(format!(
                    "value {value:?} does not fit column {} ({:?})",
                    col.name, col.ty
                )));
            }
        }
        Ok(())
    }
}

/// Database errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// Schema violation.
    Schema(String),
    /// Malformed query encoding.
    Decode(String),
    /// Durable-storage failure (WAL append, fsync, snapshot I/O).
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::Schema(m) => write!(f, "schema violation: {m}"),
            DbError::Decode(m) => write!(f, "decode error: {m}"),
            DbError::Io(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Decode(e.to_string())
    }
}

/// One table: schema, row storage, and optional single-column hash indexes.
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
    /// Hash indexes: column index → value → row ids.
    indexes: HashMap<usize, HashMap<Value, Vec<usize>>>,
    /// Tombstones from deletes (row ids are stable).
    live: Vec<bool>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            indexes: HashMap::new(),
            live: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Creates a hash index on a column.
    pub fn create_index(&mut self, column: &str) -> Result<(), DbError> {
        let idx = self
            .schema
            .index_of(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.into()))?;
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        for (rid, row) in self.rows.iter().enumerate() {
            if self.live[rid] {
                map.entry(row[idx].clone()).or_default().push(rid);
            }
        }
        self.indexes.insert(idx, map);
        Ok(())
    }

    /// Inserts a row, returning its row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<usize, DbError> {
        self.schema.check_row(&row)?;
        let rid = self.rows.len();
        for (col, map) in self.indexes.iter_mut() {
            map.entry(row[*col].clone()).or_default().push(rid);
        }
        self.rows.push(row);
        self.live.push(true);
        Ok(rid)
    }

    /// Selects rows matching `pred`, projecting `columns` (empty = all).
    pub fn select(&self, pred: &Predicate, columns: &[String]) -> Result<Vec<Vec<Value>>, DbError> {
        self.select_ordered(pred, columns, None, None)
    }

    /// [`Table::select`] with `ORDER BY` and `LIMIT`.
    ///
    /// `order` names a column of the *schema* (not of the projection, so a
    /// query may sort by a column it does not return) and a direction; the
    /// sort is stable, so equal keys keep insertion order.  `limit` caps
    /// the result *after* ordering — "the newest 50" is
    /// `Some(("seq", Desc)), Some(50)`.  Nulls sort first ascending (the
    /// [`Value`] ordering).
    pub fn select_ordered(
        &self,
        pred: &Predicate,
        columns: &[String],
        order: Option<(&str, SortOrder)>,
        limit: Option<usize>,
    ) -> Result<Vec<Vec<Value>>, DbError> {
        let proj: Vec<usize> = if columns.is_empty() {
            (0..self.schema.columns.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    self.schema
                        .index_of(c)
                        .ok_or_else(|| DbError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<_, _>>()?
        };
        let order_idx = match order {
            Some((col, dir)) => Some((
                self.schema
                    .index_of(col)
                    .ok_or_else(|| DbError::NoSuchColumn(col.into()))?,
                dir,
            )),
            None => None,
        };
        let mut matched: Vec<&Vec<Value>> = Vec::new();
        for rid in self.candidates(pred) {
            if !self.live[rid] {
                continue;
            }
            let row = &self.rows[rid];
            if pred.eval(&self.schema, row)? {
                matched.push(row);
            }
        }
        if let Some((key, dir)) = order_idx {
            matched.sort_by(|a, b| match dir {
                SortOrder::Asc => a[key].cmp(&b[key]),
                SortOrder::Desc => b[key].cmp(&a[key]),
            });
        }
        if let Some(n) = limit {
            matched.truncate(n);
        }
        Ok(matched
            .into_iter()
            .map(|row| proj.iter().map(|&i| row[i].clone()).collect())
            .collect())
    }

    /// Updates matching rows with `(column, value)` assignments; returns the
    /// number of rows changed.
    pub fn update(
        &mut self,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<usize, DbError> {
        let assign_idx: Vec<(usize, Value)> = assignments
            .iter()
            .map(|(c, v)| {
                self.schema
                    .index_of(c)
                    .map(|i| (i, v.clone()))
                    .ok_or_else(|| DbError::NoSuchColumn(c.clone()))
            })
            .collect::<Result<_, _>>()?;
        let candidates: Vec<usize> = self.candidates(pred).collect();
        let mut changed = 0;
        for rid in candidates {
            if !self.live[rid] {
                continue;
            }
            if pred.eval(&self.schema, &self.rows[rid])? {
                for (i, v) in &assign_idx {
                    // Maintain indexes across the change.
                    if let Some(map) = self.indexes.get_mut(i) {
                        if let Some(ids) = map.get_mut(&self.rows[rid][*i]) {
                            ids.retain(|r| r != &rid);
                        }
                        map.entry(v.clone()).or_default().push(rid);
                    }
                    self.rows[rid][*i] = v.clone();
                }
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Deletes matching rows; returns the number deleted.
    pub fn delete(&mut self, pred: &Predicate) -> Result<usize, DbError> {
        let candidates: Vec<usize> = self.candidates(pred).collect();
        let mut deleted = 0;
        for rid in candidates {
            if !self.live[rid] {
                continue;
            }
            if pred.eval(&self.schema, &self.rows[rid])? {
                self.live[rid] = false;
                for (col, map) in self.indexes.iter_mut() {
                    if let Some(ids) = map.get_mut(&self.rows[rid][*col]) {
                        ids.retain(|r| r != &rid);
                    }
                }
                deleted += 1;
            }
        }
        Ok(deleted)
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row ids that could match the predicate (uses an index when the
    /// predicate pins an indexed column to an equality).
    fn candidates(&self, pred: &Predicate) -> Box<dyn Iterator<Item = usize> + '_> {
        if let Some((col, value)) = pred.pinned_equality(&self.schema) {
            if let Some(map) = self.indexes.get(&col) {
                let ids = map.get(&value).cloned().unwrap_or_default();
                return Box::new(ids.into_iter());
            }
        }
        Box::new(0..self.rows.len())
    }
}

/// Sort direction for [`Table::select_ordered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest key first.
    Asc,
    /// Largest key first.
    Desc,
}

impl SortOrder {
    /// The wire name (`asc` / `desc`).
    pub fn name(self) -> &'static str {
        match self {
            SortOrder::Asc => "asc",
            SortOrder::Desc => "desc",
        }
    }

    /// Parses the form produced by [`SortOrder::name`].
    pub fn from_name(name: &str) -> Option<SortOrder> {
        match name {
            "asc" => Some(SortOrder::Asc),
            "desc" => Some(SortOrder::Desc),
            _ => None,
        }
    }
}

/// A select query in shippable form: predicate, projection, and the
/// optional `ORDER BY` / `LIMIT` clauses.
///
/// The wire form is
/// `(select (table t) (pred …) (cols c…) (order <col> <asc|desc>) (limit n))`
/// where the `order` and `limit` clauses are **optional** — an encoder
/// that never heard of them produces exactly the pre-clause form, and both
/// decoders accept both shapes, so the addition is backward- and
/// forward-compatible for clause-free queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// The table to select from.
    pub table: String,
    /// The row filter.
    pub pred: Predicate,
    /// Projected columns (empty = all).
    pub columns: Vec<String>,
    /// `ORDER BY column direction`, if any.
    pub order: Option<(String, SortOrder)>,
    /// `LIMIT n`, if any.
    pub limit: Option<usize>,
}

impl SelectQuery {
    /// A full-projection, unordered, unlimited query.
    pub fn all(table: &str, pred: Predicate) -> SelectQuery {
        SelectQuery {
            table: table.to_string(),
            pred,
            columns: Vec::new(),
            order: None,
            limit: None,
        }
    }

    /// Builder: sets `ORDER BY`.
    pub fn order_by(mut self, column: &str, order: SortOrder) -> SelectQuery {
        self.order = Some((column.to_string(), order));
        self
    }

    /// Builder: sets `LIMIT`.
    pub fn limit(mut self, n: usize) -> SelectQuery {
        self.limit = Some(n);
        self
    }

    /// Serializes to the wire form.
    pub fn to_sexp(&self) -> Sexp {
        let mut body = vec![
            Sexp::tagged("table", vec![Sexp::from(self.table.as_str())]),
            Sexp::tagged("pred", vec![self.pred.to_sexp()]),
            Sexp::tagged(
                "cols",
                self.columns.iter().map(|c| Sexp::from(c.as_str())).collect(),
            ),
        ];
        if let Some((col, dir)) = &self.order {
            body.push(Sexp::tagged(
                "order",
                vec![Sexp::from(col.as_str()), Sexp::from(dir.name())],
            ));
        }
        if let Some(n) = self.limit {
            body.push(Sexp::tagged("limit", vec![Sexp::int(n as u64)]));
        }
        Sexp::tagged("select", body)
    }

    /// Parses the wire form (with or without the optional clauses).
    pub fn from_sexp(e: &Sexp) -> Result<SelectQuery, DbError> {
        if e.tag_name() != Some("select") {
            return Err(DbError::Decode("expected (select …)".into()));
        }
        let table = e
            .find_value("table")
            .and_then(Sexp::as_str)
            .ok_or_else(|| DbError::Decode("select needs (table t)".into()))?
            .to_string();
        let pred = Predicate::from_sexp(
            e.find_value("pred")
                .ok_or_else(|| DbError::Decode("select needs (pred …)".into()))?,
        )?;
        let columns = e
            .find("cols")
            .and_then(Sexp::tag_body)
            .unwrap_or(&[])
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| DbError::Decode("bad column name".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let order = match e.find("order") {
            None => None,
            Some(clause) => {
                let body = clause.tag_body().unwrap_or(&[]);
                let (col, dir) = match body {
                    [col, dir] => (col.as_str(), dir.as_str().and_then(SortOrder::from_name)),
                    _ => (None, None),
                };
                match (col, dir) {
                    (Some(c), Some(d)) => Some((c.to_string(), d)),
                    _ => return Err(DbError::Decode("bad (order <col> <asc|desc>)".into())),
                }
            }
        };
        let limit = match e.find("limit") {
            None => None,
            Some(clause) => Some(
                clause
                    .tag_body()
                    .and_then(<[Sexp]>::first)
                    .and_then(Sexp::as_u64)
                    .ok_or_else(|| DbError::Decode("bad (limit n)".into()))?
                    as usize,
            ),
        };
        Ok(SelectQuery {
            table,
            pred,
            columns,
            order,
            limit,
        })
    }
}

/// A database: named tables.
#[derive(Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) {
        self.tables.insert(name.to_string(), Table::new(schema));
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.into()))
    }

    /// A mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.into()))
    }

    /// Table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Executes a decoded [`SelectQuery`] (predicate, projection, order,
    /// limit) against its table.
    pub fn run_select(&self, q: &SelectQuery) -> Result<Vec<Vec<Value>>, DbError> {
        self.table(&q.table)?.select_ordered(
            &q.pred,
            &q.columns,
            q.order.as_ref().map(|(c, d)| (c.as_str(), *d)),
            q.limit,
        )
    }
}

/// Encodes rows as `(rows (row v…) …)` for RMI transport.
pub fn rows_to_sexp(rows: &[Vec<Value>]) -> Sexp {
    Sexp::tagged(
        "rows",
        rows.iter()
            .map(|r| Sexp::tagged("row", r.iter().map(Value::to_sexp).collect()))
            .collect(),
    )
}

/// Decodes the form produced by [`rows_to_sexp`].
pub fn rows_from_sexp(e: &Sexp) -> Result<Vec<Vec<Value>>, DbError> {
    if e.tag_name() != Some("rows") {
        return Err(DbError::Decode("expected (rows …)".into()));
    }
    e.tag_body()
        .unwrap_or(&[])
        .iter()
        .map(|r| {
            if r.tag_name() != Some("row") {
                return Err(DbError::Decode("expected (row …)".into()));
            }
            r.tag_body()
                .unwrap_or(&[])
                .iter()
                .map(Value::from_sexp)
                .collect()
        })
        .collect()
}

/// Builds the email-database schema of §6.2: a `messages` table owned
/// per-user plus a `users` table.
pub fn email_schema(db: &mut Database) {
    db.create_table(
        "messages",
        Schema::new(&[
            ("id", ColumnType::Int),
            ("owner", ColumnType::Text),
            ("sender", ColumnType::Text),
            ("subject", ColumnType::Text),
            ("body", ColumnType::Text),
            ("folder", ColumnType::Text),
            ("unread", ColumnType::Bool),
        ]),
    );
    db.table_mut("messages")
        .expect("just created")
        .create_index("owner")
        .expect("column exists");
    db.create_table(
        "users",
        Schema::new(&[("name", ColumnType::Text), ("quota", ColumnType::Int)]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(Schema::new(&[
            ("name", ColumnType::Text),
            ("age", ColumnType::Int),
            ("active", ColumnType::Bool),
        ]));
        for (n, a, act) in [("alice", 30, true), ("bob", 25, true), ("carol", 35, false)] {
            t.insert(vec![Value::text(n), Value::Int(a), Value::Bool(act)])
                .unwrap();
        }
        t
    }

    #[test]
    fn insert_and_select_all() {
        let t = people();
        let all = t.select(&Predicate::True, &[]).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn select_with_predicate_and_projection() {
        let t = people();
        let names = t
            .select(&Predicate::gt("age", Value::Int(26)), &["name".to_string()])
            .unwrap();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&vec![Value::text("alice")]));
        assert!(names.contains(&vec![Value::text("carol")]));
    }

    #[test]
    fn compound_predicates() {
        let t = people();
        let p = Predicate::and(
            Predicate::gt("age", Value::Int(20)),
            Predicate::eq("active", Value::Bool(true)),
        );
        assert_eq!(t.select(&p, &[]).unwrap().len(), 2);
        let p = Predicate::or(
            Predicate::eq("name", Value::text("carol")),
            Predicate::eq("name", Value::text("bob")),
        );
        assert_eq!(t.select(&p, &[]).unwrap().len(), 2);
        let p = Predicate::not(Predicate::eq("active", Value::Bool(true)));
        assert_eq!(t.select(&p, &[]).unwrap().len(), 1);
    }

    #[test]
    fn update_rows() {
        let mut t = people();
        let n = t
            .update(
                &Predicate::eq("name", Value::text("bob")),
                &[("age".to_string(), Value::Int(26))],
            )
            .unwrap();
        assert_eq!(n, 1);
        let rows = t
            .select(
                &Predicate::eq("name", Value::text("bob")),
                &["age".to_string()],
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(26)]]);
    }

    #[test]
    fn delete_rows() {
        let mut t = people();
        let n = t
            .delete(&Predicate::eq("active", Value::Bool(false)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.len(), 2);
        // Deleted rows stay gone.
        assert!(t
            .select(&Predicate::eq("name", Value::text("carol")), &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn schema_enforced() {
        let mut t = people();
        // Wrong arity.
        assert!(t.insert(vec![Value::text("x")]).is_err());
        // Wrong type.
        assert!(t
            .insert(vec![Value::Int(1), Value::Int(2), Value::Bool(true)])
            .is_err());
        // Nulls are allowed in any column.
        assert!(t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .is_ok());
        // Unknown column in projection/update.
        assert!(t.select(&Predicate::True, &["ghost".to_string()]).is_err());
        assert!(t
            .update(&Predicate::True, &[("ghost".to_string(), Value::Null)])
            .is_err());
    }

    #[test]
    fn index_accelerates_and_stays_consistent() {
        let mut t = Table::new(Schema::new(&[
            ("owner", ColumnType::Text),
            ("n", ColumnType::Int),
        ]));
        t.create_index("owner").unwrap();
        for i in 0..100 {
            let owner = if i % 2 == 0 { "alice" } else { "bob" };
            t.insert(vec![Value::text(owner), Value::Int(i)]).unwrap();
        }
        let alice = t
            .select(&Predicate::eq("owner", Value::text("alice")), &[])
            .unwrap();
        assert_eq!(alice.len(), 50);

        // Updates move rows between index buckets.
        t.update(
            &Predicate::eq("n", Value::Int(0)),
            &[("owner".to_string(), Value::text("bob"))],
        )
        .unwrap();
        assert_eq!(
            t.select(&Predicate::eq("owner", Value::text("alice")), &[])
                .unwrap()
                .len(),
            49
        );
        assert_eq!(
            t.select(&Predicate::eq("owner", Value::text("bob")), &[])
                .unwrap()
                .len(),
            51
        );

        // Deletes remove from buckets.
        t.delete(&Predicate::eq("owner", Value::text("bob")))
            .unwrap();
        assert!(t
            .select(&Predicate::eq("owner", Value::text("bob")), &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rows_sexp_roundtrip() {
        let rows = vec![
            vec![Value::Int(1), Value::text("hello"), Value::Bool(true)],
            vec![Value::Null, Value::bytes(vec![0, 255]), Value::Int(-42)],
        ];
        let e = rows_to_sexp(&rows);
        assert_eq!(rows_from_sexp(&e).unwrap(), rows);
    }

    #[test]
    fn email_schema_builds() {
        let mut db = Database::new();
        email_schema(&mut db);
        assert_eq!(db.table_names(), vec!["messages", "users"]);
        let msgs = db.table_mut("messages").unwrap();
        msgs.insert(vec![
            Value::Int(1),
            Value::text("alice"),
            Value::text("bob"),
            Value::text("hi"),
            Value::text("lunch?"),
            Value::text("inbox"),
            Value::Bool(true),
        ])
        .unwrap();
        assert_eq!(msgs.len(), 1);
    }

    #[test]
    fn database_errors() {
        let db = Database::new();
        assert!(matches!(db.table("ghost"), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn order_by_and_limit() {
        let t = people();
        // Ascending by age.
        let rows = t
            .select_ordered(
                &Predicate::True,
                &["name".to_string()],
                Some(("age", SortOrder::Asc)),
                None,
            )
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::text("bob")],
                vec![Value::text("alice")],
                vec![Value::text("carol")],
            ]
        );
        // Descending with a limit: "the two oldest".
        let rows = t
            .select_ordered(
                &Predicate::True,
                &["name".to_string()],
                Some(("age", SortOrder::Desc)),
                Some(2),
            )
            .unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::text("carol")], vec![Value::text("alice")]]
        );
        // Limit without order truncates in storage order.
        let rows = t.select_ordered(&Predicate::True, &[], None, Some(1)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::text("alice"));
        // Ordering by a column outside the projection works; an unknown
        // order column errors.
        assert!(t
            .select_ordered(
                &Predicate::True,
                &["name".to_string()],
                Some(("ghost", SortOrder::Asc)),
                None
            )
            .is_err());
    }

    #[test]
    fn order_is_stable_on_ties() {
        let mut t = Table::new(Schema::new(&[
            ("k", ColumnType::Int),
            ("n", ColumnType::Int),
        ]));
        for (k, n) in [(1, 0), (0, 1), (1, 2), (0, 3), (1, 4)] {
            t.insert(vec![Value::Int(k), Value::Int(n)]).unwrap();
        }
        let rows = t
            .select_ordered(
                &Predicate::True,
                &["n".to_string()],
                Some(("k", SortOrder::Asc)),
                None,
            )
            .unwrap();
        // Equal keys keep insertion order (stable sort).
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![
                Value::Int(1),
                Value::Int(3),
                Value::Int(0),
                Value::Int(2),
                Value::Int(4)
            ]
        );
    }

    #[test]
    fn select_query_wire_roundtrip() {
        let q = SelectQuery::all("messages", Predicate::eq("owner", Value::text("alice")))
            .order_by("id", SortOrder::Desc)
            .limit(50);
        let back = SelectQuery::from_sexp(&q.to_sexp()).unwrap();
        assert_eq!(back, q);
        // Clause-free queries produce the pre-clause wire form and parse
        // back without them.
        let plain = SelectQuery::all("messages", Predicate::True);
        let encoded = plain.to_sexp().transport();
        assert!(!encoded.contains("order") && !encoded.contains("limit"));
        assert_eq!(SelectQuery::from_sexp(&plain.to_sexp()).unwrap(), plain);
    }

    #[test]
    fn select_query_accepts_legacy_form() {
        // A hand-written pre-ORDER-BY encoding (no order, no limit, and
        // even no cols clause) still decodes.
        let legacy = Sexp::parse(b"(select (table users) (pred (true)))").unwrap();
        let q = SelectQuery::from_sexp(&legacy).unwrap();
        assert_eq!(q.table, "users");
        assert!(q.columns.is_empty() && q.order.is_none() && q.limit.is_none());
        // Malformed clauses are rejected, not ignored.
        for src in [
            "(select (table t) (pred (true)) (order id sideways))",
            "(select (table t) (pred (true)) (order id))",
            "(select (table t) (pred (true)) (limit x))",
        ] {
            assert!(
                SelectQuery::from_sexp(&Sexp::parse(src.as_bytes()).unwrap()).is_err(),
                "{src}"
            );
        }
    }

    #[test]
    fn database_runs_select_queries() {
        let mut db = Database::new();
        email_schema(&mut db);
        let msgs = db.table_mut("messages").unwrap();
        for (id, owner) in [(1, "alice"), (2, "bob"), (3, "alice")] {
            msgs.insert(vec![
                Value::Int(id),
                Value::text(owner),
                Value::text("s"),
                Value::text("subj"),
                Value::text("body"),
                Value::text("inbox"),
                Value::Bool(true),
            ])
            .unwrap();
        }
        let q = SelectQuery::all("messages", Predicate::eq("owner", Value::text("alice")))
            .order_by("id", SortOrder::Desc)
            .limit(1);
        let rows = db.run_select(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(3));
    }
}
