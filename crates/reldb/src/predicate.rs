//! Row-filter predicates with an S-expression encoding.

use crate::{DbError, Schema, Value};
use snowflake_sexpr::Sexp;

/// A predicate over one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Matches everything.
    True,
    /// `column == value`.
    Eq(String, Value),
    /// `column < value` (same-variant comparison only).
    Lt(String, Value),
    /// `column > value`.
    Gt(String, Value),
    /// Text column starts with the given prefix.
    Prefix(String, String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column == value`.
    pub fn eq(column: &str, value: Value) -> Predicate {
        Predicate::Eq(column.into(), value)
    }

    /// `column < value`.
    pub fn lt(column: &str, value: Value) -> Predicate {
        Predicate::Lt(column.into(), value)
    }

    /// `column > value`.
    pub fn gt(column: &str, value: Value) -> Predicate {
        Predicate::Gt(column.into(), value)
    }

    /// Text prefix match.
    pub fn prefix(column: &str, prefix: &str) -> Predicate {
        Predicate::Prefix(column.into(), prefix.into())
    }

    /// Conjunction.
    pub fn and(a: Predicate, b: Predicate) -> Predicate {
        Predicate::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: Predicate, b: Predicate) -> Predicate {
        Predicate::Or(Box::new(a), Box::new(b))
    }

    /// Negation.
    pub fn not(p: Predicate) -> Predicate {
        Predicate::Not(Box::new(p))
    }

    /// Evaluates against a row.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> Result<bool, DbError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Eq(c, v) => Ok(self.cell(schema, row, c)? == v),
            Predicate::Lt(c, v) => Ok(compare(self.cell(schema, row, c)?, v)
                .map(|o| o == std::cmp::Ordering::Less)
                .unwrap_or(false)),
            Predicate::Gt(c, v) => Ok(compare(self.cell(schema, row, c)?, v)
                .map(|o| o == std::cmp::Ordering::Greater)
                .unwrap_or(false)),
            Predicate::Prefix(c, p) => Ok(match self.cell(schema, row, c)? {
                Value::Text(s) => s.starts_with(p),
                _ => false,
            }),
            Predicate::And(a, b) => Ok(a.eval(schema, row)? && b.eval(schema, row)?),
            Predicate::Or(a, b) => Ok(a.eval(schema, row)? || b.eval(schema, row)?),
            Predicate::Not(p) => Ok(!p.eval(schema, row)?),
        }
    }

    fn cell<'a>(
        &self,
        schema: &Schema,
        row: &'a [Value],
        column: &str,
    ) -> Result<&'a Value, DbError> {
        let idx = schema
            .index_of(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.to_string()))?;
        Ok(&row[idx])
    }

    /// If this predicate pins an indexed equality (an `Eq` conjunct at the
    /// top level), returns `(column index, value)` for index lookup.
    pub fn pinned_equality(&self, schema: &Schema) -> Option<(usize, Value)> {
        match self {
            Predicate::Eq(c, v) => schema.index_of(c).map(|i| (i, v.clone())),
            Predicate::And(a, b) => a
                .pinned_equality(schema)
                .or_else(|| b.pinned_equality(schema)),
            _ => None,
        }
    }

    /// Serializes to an S-expression (for RMI transport).
    pub fn to_sexp(&self) -> Sexp {
        match self {
            Predicate::True => Sexp::list(vec![Sexp::from("true")]),
            Predicate::Eq(c, v) => Sexp::tagged("eq", vec![Sexp::from(c.as_str()), v.to_sexp()]),
            Predicate::Lt(c, v) => Sexp::tagged("lt", vec![Sexp::from(c.as_str()), v.to_sexp()]),
            Predicate::Gt(c, v) => Sexp::tagged("gt", vec![Sexp::from(c.as_str()), v.to_sexp()]),
            Predicate::Prefix(c, p) => Sexp::tagged(
                "prefix",
                vec![Sexp::from(c.as_str()), Sexp::from(p.as_str())],
            ),
            Predicate::And(a, b) => Sexp::tagged("and", vec![a.to_sexp(), b.to_sexp()]),
            Predicate::Or(a, b) => Sexp::tagged("or", vec![a.to_sexp(), b.to_sexp()]),
            Predicate::Not(p) => Sexp::tagged("not", vec![p.to_sexp()]),
        }
    }

    /// Parses the form produced by [`Predicate::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Predicate, DbError> {
        let body = e.tag_body().unwrap_or(&[]);
        let col = |i: usize| -> Result<String, DbError> {
            body.get(i)
                .and_then(Sexp::as_str)
                .map(str::to_string)
                .ok_or_else(|| DbError::Decode("missing column".into()))
        };
        match e.tag_name() {
            Some("true") => Ok(Predicate::True),
            Some("eq") => Ok(Predicate::Eq(
                col(0)?,
                Value::from_sexp(
                    body.get(1)
                        .ok_or_else(|| DbError::Decode("missing value".into()))?,
                )?,
            )),
            Some("lt") => Ok(Predicate::Lt(
                col(0)?,
                Value::from_sexp(
                    body.get(1)
                        .ok_or_else(|| DbError::Decode("missing value".into()))?,
                )?,
            )),
            Some("gt") => Ok(Predicate::Gt(
                col(0)?,
                Value::from_sexp(
                    body.get(1)
                        .ok_or_else(|| DbError::Decode("missing value".into()))?,
                )?,
            )),
            Some("prefix") => Ok(Predicate::Prefix(col(0)?, col(1)?)),
            Some("and") | Some("or") => {
                if body.len() != 2 {
                    return Err(DbError::Decode("and/or take two predicates".into()));
                }
                let a = Predicate::from_sexp(&body[0])?;
                let b = Predicate::from_sexp(&body[1])?;
                Ok(if e.tag_name() == Some("and") {
                    Predicate::and(a, b)
                } else {
                    Predicate::or(a, b)
                })
            }
            Some("not") => {
                if body.len() != 1 {
                    return Err(DbError::Decode("not takes one predicate".into()));
                }
                Ok(Predicate::not(Predicate::from_sexp(&body[0])?))
            }
            _ => Err(DbError::Decode("unknown predicate form".into())),
        }
    }
}

/// Same-variant comparison; `None` for cross-type or NULL comparisons.
fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Text(x), Value::Text(y)) => Some(x.cmp(y)),
        (Value::Bytes(x), Value::Bytes(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnType;

    fn schema() -> Schema {
        Schema::new(&[("name", ColumnType::Text), ("age", ColumnType::Int)])
    }

    #[test]
    fn eval_basics() {
        let s = schema();
        let row = vec![Value::text("alice"), Value::Int(30)];
        assert!(Predicate::True.eval(&s, &row).unwrap());
        assert!(Predicate::eq("name", Value::text("alice"))
            .eval(&s, &row)
            .unwrap());
        assert!(!Predicate::eq("name", Value::text("bob"))
            .eval(&s, &row)
            .unwrap());
        assert!(Predicate::lt("age", Value::Int(31)).eval(&s, &row).unwrap());
        assert!(Predicate::gt("age", Value::Int(29)).eval(&s, &row).unwrap());
        assert!(Predicate::prefix("name", "al").eval(&s, &row).unwrap());
        assert!(!Predicate::prefix("name", "bo").eval(&s, &row).unwrap());
    }

    #[test]
    fn null_never_compares() {
        let s = schema();
        let row = vec![Value::Null, Value::Null];
        assert!(!Predicate::lt("age", Value::Int(100))
            .eval(&s, &row)
            .unwrap());
        assert!(!Predicate::gt("age", Value::Int(0)).eval(&s, &row).unwrap());
        // But NULL == NULL under Eq (identity semantics, documented).
        assert!(Predicate::eq("age", Value::Null).eval(&s, &row).unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let row = vec![Value::text("a"), Value::Int(1)];
        assert!(Predicate::eq("ghost", Value::Null).eval(&s, &row).is_err());
    }

    #[test]
    fn sexp_roundtrip() {
        let p = Predicate::and(
            Predicate::or(
                Predicate::eq("name", Value::text("alice")),
                Predicate::prefix("name", "bo"),
            ),
            Predicate::not(Predicate::lt("age", Value::Int(18))),
        );
        let e = p.to_sexp();
        assert_eq!(Predicate::from_sexp(&e).unwrap(), p);
    }

    #[test]
    fn pinned_equality_detection() {
        let s = schema();
        assert!(Predicate::eq("name", Value::text("a"))
            .pinned_equality(&s)
            .is_some());
        assert!(Predicate::and(
            Predicate::gt("age", Value::Int(1)),
            Predicate::eq("name", Value::text("a"))
        )
        .pinned_equality(&s)
        .is_some());
        assert!(Predicate::or(
            Predicate::eq("name", Value::text("a")),
            Predicate::eq("name", Value::text("b"))
        )
        .pinned_equality(&s)
        .is_none());
    }
}
