//! Cell values.

use crate::DbError;
use snowflake_sexpr::Sexp;
use std::fmt;

/// One cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL-style NULL (fits any column).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Text constructor.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Bytes constructor.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Value {
        Value::Bytes(b.into())
    }

    /// Serializes as a typed S-expression.
    pub fn to_sexp(&self) -> Sexp {
        match self {
            Value::Null => Sexp::list(vec![Sexp::from("null")]),
            Value::Int(i) => Sexp::tagged("int", vec![Sexp::from(i.to_string())]),
            Value::Text(s) => Sexp::tagged("text", vec![Sexp::from(s.as_str())]),
            Value::Bytes(b) => Sexp::tagged("bytes", vec![Sexp::atom(b.clone())]),
            Value::Bool(v) => {
                Sexp::tagged("bool", vec![Sexp::from(if *v { "true" } else { "false" })])
            }
        }
    }

    /// Parses the form produced by [`Value::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Value, DbError> {
        let body = e.tag_body().unwrap_or(&[]);
        match e.tag_name() {
            Some("null") => Ok(Value::Null),
            Some("int") => body
                .first()
                .and_then(Sexp::as_str)
                .and_then(|s| s.parse().ok())
                .map(Value::Int)
                .ok_or_else(|| DbError::Decode("bad int".into())),
            Some("text") => body
                .first()
                .and_then(Sexp::as_str)
                .map(Value::text)
                .ok_or_else(|| DbError::Decode("bad text".into())),
            Some("bytes") => body
                .first()
                .and_then(Sexp::as_atom)
                .map(Value::bytes)
                .ok_or_else(|| DbError::Decode("bad bytes".into())),
            Some("bool") => match body.first().and_then(Sexp::as_str) {
                Some("true") => Ok(Value::Bool(true)),
                Some("false") => Ok(Value::Bool(false)),
                _ => Err(DbError::Decode("bad bool".into())),
            },
            _ => Err(DbError::Decode("unknown value form".into())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "0x{}", snowflake_sexpr::hex_encode(b)),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sexp_roundtrip() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(-123456),
            Value::Int(i64::MAX),
            Value::text(""),
            Value::text("hello world"),
            Value::bytes(vec![]),
            Value::bytes(vec![0, 1, 255]),
            Value::Bool(true),
            Value::Bool(false),
        ] {
            assert_eq!(Value::from_sexp(&v.to_sexp()).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn malformed_rejected() {
        for src in ["(int abc)", "(bool maybe)", "(mystery 1)", "(int)"] {
            let e = Sexp::parse(src.as_bytes()).unwrap();
            assert!(Value::from_sexp(&e).is_err(), "{src}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::bytes(vec![0xab]).to_string(), "0xab");
    }
}
