//! Write-ahead logging and crash recovery for [`Database`].
//!
//! A [`DurableDatabase`] applies every mutation **append-before-apply**:
//! the operation is framed, appended to the write-ahead log, and fsynced
//! *before* it touches the in-memory tables.  A crash at any byte of that
//! sequence therefore leaves the log holding either the complete frame
//! (replay reproduces the post-write state) or a torn prefix of it
//! (replay truncates the tail and reproduces the pre-write state) — never
//! a third state.
//!
//! # On-disk format
//!
//! The WAL (`<base>.wal`) is a sequence of frames:
//!
//! ```text
//! ┌─────────────┬──────────────┬──────────────────┐
//! │ len: u32 LE │ crc32: u32 LE│ payload (len B)  │
//! └─────────────┴──────────────┴──────────────────┘
//! ```
//!
//! The payload is the canonical S-expression
//! `(wal (seq n) <op>)` where `<op>` is one of [`WalOp`]'s wire forms.
//! The CRC (IEEE 802.3) covers the payload only; a frame whose header is
//! short, whose payload is short, or whose CRC mismatches ends replay:
//! if it is the stream's final frame it is a torn tail and is truncated
//! away, anywhere else it is corruption and the open fails.
//!
//! The snapshot (`<base>.snap`) is one frame with payload
//! `(db-snapshot (next-seq n) (table <name> (row …)…)…)` written
//! tmp-then-rename, so it is atomically either the old or the new one.
//! Replay skips WAL frames with `seq < next-seq`, which is what makes the
//! compaction sequence (snapshot, then truncate the WAL) crash-safe at
//! every point between its steps.

use crate::{Database, DbError, Predicate, Value};
use snowflake_core::durable::{CrashPoint, Durable, RecoveryReport};
use snowflake_sexpr::Sexp;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected) over `data` — the frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Insert `row` into `table`.
    Insert {
        /// Target table.
        table: String,
        /// The row values, in schema order.
        row: Vec<Value>,
    },
    /// Update rows of `table` matching `pred` with `assignments`.
    Update {
        /// Target table.
        table: String,
        /// Row filter.
        pred: Predicate,
        /// `(column, value)` assignments.
        assignments: Vec<(String, Value)>,
    },
    /// Delete rows of `table` matching `pred`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        pred: Predicate,
    },
}

impl WalOp {
    /// Serializes the operation to its wire form.
    pub fn to_sexp(&self) -> Sexp {
        match self {
            WalOp::Insert { table, row } => Sexp::tagged(
                "insert",
                vec![
                    Sexp::tagged("table", vec![Sexp::from(table.as_str())]),
                    Sexp::tagged("row", row.iter().map(Value::to_sexp).collect()),
                ],
            ),
            WalOp::Update {
                table,
                pred,
                assignments,
            } => Sexp::tagged(
                "update",
                vec![
                    Sexp::tagged("table", vec![Sexp::from(table.as_str())]),
                    Sexp::tagged("pred", vec![pred.to_sexp()]),
                    Sexp::tagged(
                        "set",
                        assignments
                            .iter()
                            .map(|(c, v)| {
                                Sexp::tagged("col", vec![Sexp::from(c.as_str()), v.to_sexp()])
                            })
                            .collect(),
                    ),
                ],
            ),
            WalOp::Delete { table, pred } => Sexp::tagged(
                "delete",
                vec![
                    Sexp::tagged("table", vec![Sexp::from(table.as_str())]),
                    Sexp::tagged("pred", vec![pred.to_sexp()]),
                ],
            ),
        }
    }

    /// Parses the form produced by [`WalOp::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<WalOp, DbError> {
        let table = || {
            e.find_value("table")
                .and_then(Sexp::as_str)
                .map(str::to_string)
                .ok_or_else(|| DbError::Decode("wal op needs (table t)".into()))
        };
        let pred = || {
            Predicate::from_sexp(
                e.find_value("pred")
                    .ok_or_else(|| DbError::Decode("wal op needs (pred …)".into()))?,
            )
        };
        match e.tag_name() {
            Some("insert") => Ok(WalOp::Insert {
                table: table()?,
                row: e
                    .find("row")
                    .and_then(Sexp::tag_body)
                    .ok_or_else(|| DbError::Decode("insert needs (row …)".into()))?
                    .iter()
                    .map(Value::from_sexp)
                    .collect::<Result<_, _>>()?,
            }),
            Some("update") => Ok(WalOp::Update {
                table: table()?,
                pred: pred()?,
                assignments: e
                    .find("set")
                    .and_then(Sexp::tag_body)
                    .ok_or_else(|| DbError::Decode("update needs (set …)".into()))?
                    .iter()
                    .map(|c| {
                        let body = c.tag_body().unwrap_or(&[]);
                        match body {
                            [name, value] if c.tag_name() == Some("col") => Ok((
                                name.as_str()
                                    .ok_or_else(|| DbError::Decode("bad column".into()))?
                                    .to_string(),
                                Value::from_sexp(value)?,
                            )),
                            _ => Err(DbError::Decode("bad (col name value)".into())),
                        }
                    })
                    .collect::<Result<_, _>>()?,
            }),
            Some("delete") => Ok(WalOp::Delete {
                table: table()?,
                pred: pred()?,
            }),
            _ => Err(DbError::Decode("unknown wal op".into())),
        }
    }
}

/// Encodes one WAL frame: length + CRC header, then the canonical
/// `(wal (seq n) <op>)` payload.  Public so the crash-injection harness
/// can compute exact byte boundaries.
pub fn encode_frame(seq: u64, op: &WalOp) -> Vec<u8> {
    let payload = Sexp::tagged("wal", vec![Sexp::tagged("seq", vec![Sexp::int(seq)]), op.to_sexp()])
        .canonical();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// One decoded frame.
struct Frame {
    seq: u64,
    op: WalOp,
}

/// Decodes the frames of `data`, stopping at the first incomplete or
/// corrupt frame.  Returns the frames plus the byte offset where clean
/// data ends (`== data.len()` iff the stream is whole).
fn decode_frames(data: &[u8]) -> Result<(Vec<Frame>, usize), DbError> {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while data.len() - at >= 8 {
        let len = u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[at + 4..at + 8].try_into().expect("4 bytes"));
        let Some(payload) = data.get(at + 8..at + 8 + len) else {
            break; // short payload: torn tail
        };
        if crc32(payload) != crc {
            break; // torn or corrupt frame
        }
        let e = Sexp::parse(payload).map_err(DbError::from)?;
        if e.tag_name() != Some("wal") {
            return Err(DbError::Decode("expected (wal …) frame".into()));
        }
        let seq = e
            .find_value("seq")
            .and_then(Sexp::as_u64)
            .ok_or_else(|| DbError::Decode("wal frame needs (seq n)".into()))?;
        let op = e
            .tag_body()
            .and_then(|body| body.iter().find(|s| s.tag_name() != Some("seq")))
            .ok_or_else(|| DbError::Decode("wal frame needs an op".into()))
            .and_then(WalOp::from_sexp)?;
        at += 8 + len;
        frames.push(Frame { seq, op });
    }
    Ok((frames, at))
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> DbError {
    DbError::Io(format!("{what} {}: {e}", path.display()))
}

/// A [`Database`] whose mutations survive crashes.
///
/// Reads go straight to the in-memory [`Database`]
/// ([`DurableDatabase::database`]); every mutation is WAL-logged
/// append-before-apply.  [`DurableDatabase::compact`] bounds the log by
/// snapshotting the live state and truncating the WAL.
///
/// [`DurableDatabase::ephemeral`] gives the same API with no backing
/// files — the pre-durability in-memory behavior — so callers mount one
/// type either way.
pub struct DurableDatabase {
    db: Database,
    wal: Option<WalWriter>,
    recovery: RecoveryReport,
}

struct WalWriter {
    wal_path: PathBuf,
    snap_path: PathBuf,
    file: File,
    next_seq: u64,
    crash: CrashPoint,
    sync: bool,
    records_since_snapshot: u64,
    bytes: u64,
}

impl WalWriter {
    fn sync_file(&mut self) -> Result<(), DbError> {
        self.crash
            .check()
            .and_then(|()| if self.sync { self.file.sync_data() } else { Ok(()) })
            .map_err(|e| io_err("sync", &self.wal_path, e))
    }
}

impl DurableDatabase {
    /// An in-memory database with the durable API and no backing files.
    pub fn ephemeral(schema: impl FnOnce(&mut Database)) -> DurableDatabase {
        let mut db = Database::new();
        schema(&mut db);
        DurableDatabase {
            db,
            wal: None,
            recovery: RecoveryReport::default(),
        }
    }

    /// Opens (creating or recovering) a durable database rooted at
    /// `base`: the WAL lives at `<base>.wal`, snapshots at `<base>.snap`.
    ///
    /// `schema` creates the tables and indexes (schema is code, not
    /// logged); any snapshot is then loaded and the WAL replayed on top,
    /// truncating a torn tail if the last write was interrupted.
    pub fn open(
        base: impl Into<PathBuf>,
        schema: impl FnOnce(&mut Database),
    ) -> Result<DurableDatabase, DbError> {
        Self::open_with_crash_point(base, schema, CrashPoint::inert())
    }

    /// [`DurableDatabase::open`] with a fault-injection hook threaded
    /// through every subsequent durable write (the crash harness).
    pub fn open_with_crash_point(
        base: impl Into<PathBuf>,
        schema: impl FnOnce(&mut Database),
        crash: CrashPoint,
    ) -> Result<DurableDatabase, DbError> {
        let base: PathBuf = base.into();
        let wal_path = base.with_extension("wal");
        let snap_path = base.with_extension("snap");
        let snap_tmp = base.with_extension("snap.tmp");
        // A leftover tmp snapshot is an interrupted compaction that never
        // committed; the WAL still covers everything it held.
        let _ = std::fs::remove_file(&snap_tmp);

        let mut db = Database::new();
        schema(&mut db);
        let mut recovery = RecoveryReport::default();

        // Load the snapshot, if any.
        let mut next_seq = 0u64;
        if let Ok(data) = std::fs::read(&snap_path) {
            let (seq, rows) = decode_snapshot(&data)?;
            next_seq = seq;
            for (table, row) in rows {
                db.table_mut(&table)?.insert(row)?;
                recovery.from_snapshot += 1;
            }
        }

        // Replay the WAL on top, skipping frames the snapshot covers.
        let data = match std::fs::read(&wal_path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read", &wal_path, e)),
        };
        let (frames, clean_end) = decode_frames(&data)?;
        for frame in &frames {
            if frame.seq < next_seq {
                continue; // covered by the snapshot
            }
            if frame.seq != next_seq {
                return Err(DbError::Decode(format!(
                    "wal sequence gap: expected {next_seq}, found {}",
                    frame.seq
                )));
            }
            // Replay is apply-or-deterministic-error: an op that failed
            // when first applied fails identically here, leaving the
            // same state either way.
            let _ = apply(&mut db, &frame.op);
            next_seq += 1;
            recovery.replayed += 1;
        }

        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .open(&wal_path)
            .map_err(|e| io_err("open", &wal_path, e))?;
        if clean_end < data.len() {
            recovery.truncated_bytes = (data.len() - clean_end) as u64;
            file.set_len(clean_end as u64)
                .map_err(|e| io_err("truncate", &wal_path, e))?;
            file.sync_data().map_err(|e| io_err("sync", &wal_path, e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &wal_path, e))?;

        Ok(DurableDatabase {
            db,
            recovery,
            wal: Some(WalWriter {
                wal_path,
                snap_path,
                file,
                next_seq,
                crash,
                sync: true,
                records_since_snapshot: frames.len() as u64,
                bytes: clean_end as u64,
            }),
        })
    }

    /// The in-memory database (all reads go here).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// WAL records appended since the last snapshot (0 for ephemeral).
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.records_since_snapshot)
    }

    /// Current WAL size in bytes (0 for ephemeral).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.bytes)
    }

    /// Disables (or re-enables) the per-mutation fsync.  With sync off a
    /// crash can lose *recent complete* frames — replay still never
    /// yields a torn state, only an older consistent one.  Bulk loads
    /// and benches use this; serving paths leave it on.
    pub fn set_sync(&mut self, sync: bool) {
        if let Some(w) = &mut self.wal {
            w.sync = sync;
        }
    }

    /// Appends `op` to the WAL (fsync included) and then applies it.
    fn log_then_apply(&mut self, op: WalOp) -> Result<usize, DbError> {
        if let Some(w) = &mut self.wal {
            let frame = encode_frame(w.next_seq, &op);
            w.crash
                .write_all(&mut w.file, &frame)
                .map_err(|e| io_err("append", &w.wal_path, e))?;
            w.sync_file()?;
            w.next_seq += 1;
            w.records_since_snapshot += 1;
            w.bytes += frame.len() as u64;
        }
        apply(&mut self.db, &op)
    }

    /// Durable insert; returns the row id (stable until the next
    /// compaction, which re-packs live rows).
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<usize, DbError> {
        // Validate before logging so the WAL never records a row the
        // schema would refuse.
        self.db.table(table)?.schema().check_row(&row)?;
        self.log_then_apply(WalOp::Insert {
            table: table.to_string(),
            row,
        })
    }

    /// Durable update; returns the number of rows changed.
    pub fn update(
        &mut self,
        table: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<usize, DbError> {
        self.db.table(table)?; // surface NoSuchTable before logging
        self.log_then_apply(WalOp::Update {
            table: table.to_string(),
            pred: pred.clone(),
            assignments: assignments.to_vec(),
        })
    }

    /// Durable delete; returns the number of rows deleted.
    pub fn delete(&mut self, table: &str, pred: &Predicate) -> Result<usize, DbError> {
        self.db.table(table)?;
        self.log_then_apply(WalOp::Delete {
            table: table.to_string(),
            pred: pred.clone(),
        })
    }

    /// Snapshots the live state and truncates the WAL, bounding replay
    /// time.  Crash-safe at every step: the snapshot is written
    /// tmp-then-rename (atomically old or new), and until the WAL is
    /// truncated its frames are skipped on replay via the snapshot's
    /// `next-seq` watermark.
    pub fn compact(&mut self) -> Result<(), DbError> {
        let Some(w) = &mut self.wal else {
            return Ok(()); // ephemeral: nothing to bound
        };
        let snap = encode_snapshot(&self.db, w.next_seq)?;
        let tmp = w.snap_path.with_extension("snap.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            w.crash
                .write_all(&mut f, &snap)
                .map_err(|e| io_err("write", &tmp, e))?;
            w.crash.check().map_err(|e| io_err("sync", &tmp, e))?;
            f.sync_data().map_err(|e| io_err("sync", &tmp, e))?;
        }
        w.crash.check().map_err(|e| io_err("rename", &tmp, e))?;
        std::fs::rename(&tmp, &w.snap_path).map_err(|e| io_err("rename", &tmp, e))?;
        w.crash.check().map_err(|e| io_err("truncate", &w.wal_path, e))?;
        w.file
            .set_len(0)
            .and_then(|()| w.file.seek(SeekFrom::Start(0)).map(|_| ()))
            .and_then(|()| w.file.sync_data())
            .map_err(|e| io_err("truncate", &w.wal_path, e))?;
        w.records_since_snapshot = 0;
        w.bytes = 0;
        Ok(())
    }
}

impl Durable for DurableDatabase {
    fn storage(&self) -> &Path {
        self.wal
            .as_ref()
            .map_or_else(|| Path::new(""), |w| w.wal_path.as_path())
    }

    fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    fn sync(&mut self) -> Result<(), String> {
        match &mut self.wal {
            Some(w) => w.sync_file().map_err(|e| e.to_string()),
            None => Ok(()),
        }
    }
}

/// Applies one op to the in-memory database.
fn apply(db: &mut Database, op: &WalOp) -> Result<usize, DbError> {
    match op {
        WalOp::Insert { table, row } => db.table_mut(table)?.insert(row.clone()),
        WalOp::Update {
            table,
            pred,
            assignments,
        } => db.table_mut(table)?.update(pred, assignments),
        WalOp::Delete { table, pred } => db.table_mut(table)?.delete(pred),
    }
}

/// Encodes the whole live state as one snapshot frame.
fn encode_snapshot(db: &Database, next_seq: u64) -> Result<Vec<u8>, DbError> {
    let mut body = vec![Sexp::tagged("next-seq", vec![Sexp::int(next_seq)])];
    for name in db.table_names() {
        let rows = db.table(&name)?.select(&Predicate::True, &[])?;
        body.push(Sexp::tagged(
            "table",
            std::iter::once(Sexp::from(name.as_str()))
                .chain(
                    rows.iter()
                        .map(|r| Sexp::tagged("row", r.iter().map(Value::to_sexp).collect())),
                )
                .collect(),
        ));
    }
    let payload = Sexp::tagged("db-snapshot", body).canonical();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Decodes a snapshot frame into its watermark and `(table, row)` pairs.
fn decode_snapshot(data: &[u8]) -> Result<(u64, Vec<(String, Vec<Value>)>), DbError> {
    if data.len() < 8 {
        return Err(DbError::Decode("snapshot too short".into()));
    }
    let len = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    let payload = data
        .get(8..8 + len)
        .ok_or_else(|| DbError::Decode("snapshot payload short".into()))?;
    if crc32(payload) != crc {
        return Err(DbError::Decode("snapshot checksum mismatch".into()));
    }
    let e = Sexp::parse(payload)?;
    if e.tag_name() != Some("db-snapshot") {
        return Err(DbError::Decode("expected (db-snapshot …)".into()));
    }
    let next_seq = e
        .find_value("next-seq")
        .and_then(Sexp::as_u64)
        .ok_or_else(|| DbError::Decode("snapshot needs (next-seq n)".into()))?;
    let mut rows = Vec::new();
    for t in e.tag_body().unwrap_or(&[]) {
        if t.tag_name() != Some("table") {
            continue;
        }
        let body = t.tag_body().unwrap_or(&[]);
        let name = body
            .first()
            .and_then(Sexp::as_str)
            .ok_or_else(|| DbError::Decode("snapshot table needs a name".into()))?;
        for r in &body[1..] {
            if r.tag_name() != Some("row") {
                return Err(DbError::Decode("snapshot table holds rows".into()));
            }
            rows.push((
                name.to_string(),
                r.tag_body()
                    .unwrap_or(&[])
                    .iter()
                    .map(Value::from_sexp)
                    .collect::<Result<_, _>>()?,
            ));
        }
    }
    Ok((next_seq, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, Schema};

    fn schema(db: &mut Database) {
        db.create_table(
            "t",
            Schema::new(&[("k", ColumnType::Text), ("n", ColumnType::Int)]),
        );
        db.table_mut("t").unwrap().create_index("k").unwrap();
    }

    fn base(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sf-wal-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for ext in ["wal", "snap", "snap.tmp"] {
            let _ = std::fs::remove_file(dir.join(name).with_extension(ext));
        }
        dir.join(name)
    }

    fn rows(db: &DurableDatabase) -> Vec<Vec<Value>> {
        let mut rows = db.database().table("t").unwrap().select(&Predicate::True, &[]).unwrap();
        rows.sort();
        rows
    }

    #[test]
    fn crc_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_op_roundtrips() {
        let ops = [
            WalOp::Insert {
                table: "t".into(),
                row: vec![Value::text("a"), Value::Int(-3)],
            },
            WalOp::Update {
                table: "t".into(),
                pred: Predicate::eq("k", Value::text("a")),
                assignments: vec![("n".into(), Value::Int(9))],
            },
            WalOp::Delete {
                table: "t".into(),
                pred: Predicate::gt("n", Value::Int(0)),
            },
        ];
        for op in ops {
            let back = WalOp::from_sexp(&op.to_sexp()).unwrap();
            assert_eq!(back, op);
        }
    }

    #[test]
    fn mutations_survive_reopen() {
        let base = base("reopen");
        {
            let mut db = DurableDatabase::open(&base, schema).unwrap();
            db.insert("t", vec![Value::text("a"), Value::Int(1)]).unwrap();
            db.insert("t", vec![Value::text("b"), Value::Int(2)]).unwrap();
            db.update("t", &Predicate::eq("k", Value::text("a")), &[("n".into(), Value::Int(10))])
                .unwrap();
            db.delete("t", &Predicate::eq("k", Value::text("b"))).unwrap();
        }
        let db = DurableDatabase::open(&base, schema).unwrap();
        assert_eq!(rows(&db), vec![vec![Value::text("a"), Value::Int(10)]]);
        assert_eq!(db.recovery().replayed, 4);
        assert_eq!(db.recovery().truncated_bytes, 0);
    }

    #[test]
    fn compaction_bounds_the_wal_and_preserves_state() {
        let base = base("compact");
        {
            let mut db = DurableDatabase::open(&base, schema).unwrap();
            for i in 0..10 {
                db.insert("t", vec![Value::text(&format!("k{i}")), Value::Int(i)])
                    .unwrap();
            }
            db.compact().unwrap();
            assert_eq!(db.wal_records(), 0);
            assert_eq!(db.wal_bytes(), 0);
            // Post-compaction mutations land in the fresh WAL.
            db.insert("t", vec![Value::text("late"), Value::Int(99)]).unwrap();
            assert_eq!(db.wal_records(), 1);
        }
        let db = DurableDatabase::open(&base, schema).unwrap();
        assert_eq!(rows(&db).len(), 11);
        assert_eq!(db.recovery().from_snapshot, 10);
        assert_eq!(db.recovery().replayed, 1);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_previous_state() {
        let base = base("torn");
        {
            let mut db = DurableDatabase::open(&base, schema).unwrap();
            db.insert("t", vec![Value::text("a"), Value::Int(1)]).unwrap();
            db.insert("t", vec![Value::text("b"), Value::Int(2)]).unwrap();
        }
        // Tear the last frame: chop 3 bytes off the WAL.  Recovery drops
        // the whole torn frame (its CRC no longer matches), not just the
        // chopped bytes.
        let wal = base.with_extension("wal");
        let data = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &data[..data.len() - 3]).unwrap();

        let db = DurableDatabase::open(&base, schema).unwrap();
        assert_eq!(rows(&db), vec![vec![Value::text("a"), Value::Int(1)]]);
        assert!(db.recovery().truncated_bytes > 0);
        assert_eq!(db.recovery().replayed, 1);
        // The truncation is durable: the next open is clean.
        let db = DurableDatabase::open(&base, schema).unwrap();
        assert_eq!(db.recovery().truncated_bytes, 0);
    }

    #[test]
    fn mid_stream_corruption_fails_the_open() {
        let base = base("corrupt");
        {
            let mut db = DurableDatabase::open(&base, schema).unwrap();
            db.insert("t", vec![Value::text("a"), Value::Int(1)]).unwrap();
            db.insert("t", vec![Value::text("b"), Value::Int(2)]).unwrap();
        }
        // Flip a payload byte of the FIRST frame: the stream now decodes
        // to a torn tail at offset 0 followed by data — but replay stops
        // at the first bad frame and truncation would discard a *good*
        // later frame.  The stop-at-first-bad-frame policy treats all of
        // it as tail; state rolls back to the last consistent point.
        let wal = base.with_extension("wal");
        let mut data = std::fs::read(&wal).unwrap();
        data[10] ^= 0xff;
        std::fs::write(&wal, &data).unwrap();
        let db = DurableDatabase::open(&base, schema).unwrap();
        assert_eq!(rows(&db).len(), 0);
        assert!(db.recovery().truncated_bytes > 0);
    }

    #[test]
    fn ephemeral_has_no_files_and_full_api() {
        let mut db = DurableDatabase::ephemeral(schema);
        db.insert("t", vec![Value::text("a"), Value::Int(1)]).unwrap();
        db.update("t", &Predicate::True, &[("n".into(), Value::Int(2))]).unwrap();
        assert_eq!(db.wal_bytes(), 0);
        db.compact().unwrap();
        db.sync().unwrap();
        assert_eq!(rows(&db), vec![vec![Value::text("a"), Value::Int(2)]]);
    }

    #[test]
    fn schema_violations_are_refused_before_logging() {
        let base = base("refuse");
        let mut db = DurableDatabase::open(&base, schema).unwrap();
        assert!(db.insert("t", vec![Value::Int(1)]).is_err());
        assert!(db.insert("ghost", vec![]).is_err());
        assert_eq!(db.wal_records(), 0, "nothing reached the log");
    }
}
