//! Property tests for bigint arithmetic against a `u128` oracle and
//! algebraic laws on larger operands.

use proptest::prelude::*;
use snowflake_bigint::Ubig;

fn big(bytes: &[u8]) -> Ubig {
    Ubig::from_bytes_be(bytes)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let want = a as u128 + b as u128;
        let got = Ubig::from(a).add(&Ubig::from(b));
        prop_assert_eq!(got.to_hex(), format!("{want:x}"));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let want = a as u128 * b as u128;
        let got = Ubig::from(a).mul(&Ubig::from(b));
        if want == 0 {
            prop_assert!(got.is_zero());
        } else {
            prop_assert_eq!(got.to_hex(), format!("{want:x}"));
        }
    }

    #[test]
    fn divrem_matches_u64(a in any::<u64>(), b in 1..u64::MAX) {
        let (q, r) = Ubig::from(a).divrem(&Ubig::from(b));
        prop_assert_eq!(q.to_u64().unwrap(), a / b);
        prop_assert_eq!(r.to_u64().unwrap(), a % b);
    }

    #[test]
    fn divrem_reconstructs(a in proptest::collection::vec(any::<u8>(), 1..64),
                           b in proptest::collection::vec(any::<u8>(), 1..32)) {
        let a = big(&a);
        let b = big(&b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r < b);
    }

    #[test]
    fn add_sub_inverse(a in proptest::collection::vec(any::<u8>(), 0..48),
                       b in proptest::collection::vec(any::<u8>(), 0..48)) {
        let a = big(&a);
        let b = big(&b);
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_commutes_and_distributes(a in proptest::collection::vec(any::<u8>(), 0..24),
                                    b in proptest::collection::vec(any::<u8>(), 0..24),
                                    c in proptest::collection::vec(any::<u8>(), 0..24)) {
        let a = big(&a);
        let b = big(&b);
        let c = big(&c);
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn shifts_are_mul_div_by_powers(a in proptest::collection::vec(any::<u8>(), 0..24),
                                    s in 0usize..70) {
        let a = big(&a);
        let pow = Ubig::one().shl(s);
        prop_assert_eq!(a.shl(s), a.mul(&pow));
        prop_assert_eq!(a.shr(s), a.divrem(&pow).0);
    }

    #[test]
    fn bytes_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = big(&a);
        prop_assert_eq!(Ubig::from_bytes_be(&v.to_bytes_be()), v);
    }

    #[test]
    fn hex_roundtrip(a in proptest::collection::vec(any::<u8>(), 1..64)) {
        let v = big(&a);
        prop_assert_eq!(Ubig::from_hex(&v.to_hex()).unwrap(), v);
    }

    #[test]
    fn modpow_laws(base in any::<u64>(), e1 in 0u64..64, e2 in 0u64..64, m in 2u64..1_000_000) {
        // base^(e1+e2) = base^e1 * base^e2 (mod m)
        let b = Ubig::from(base);
        let m = Ubig::from(m);
        let lhs = b.modpow(&Ubig::from(e1 + e2), &m);
        let rhs = b.modpow(&Ubig::from(e1), &m).mulm(&b.modpow(&Ubig::from(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modinv_is_inverse(a in 1u64..u64::MAX, m in 2u64..u64::MAX) {
        let a = Ubig::from(a);
        let m = Ubig::from(m);
        if let Some(inv) = a.modinv(&m) {
            prop_assert_eq!(a.mulm(&inv, &m), Ubig::one());
            prop_assert!(inv < m);
        } else {
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn cmp_is_consistent_with_sub(a in any::<u64>(), b in any::<u64>()) {
        let (ab, bb) = (Ubig::from(a), Ubig::from(b));
        prop_assert_eq!(ab.cmp(&bb), a.cmp(&b));
    }

    #[test]
    fn sliding_window_modpow_matches_square_and_multiply(
        base in proptest::collection::vec(any::<u8>(), 1..96),
        exp in proptest::collection::vec(any::<u8>(), 1..48),
        m in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let base = big(&base);
        let exp = big(&exp);
        let m = big(&m);
        prop_assume!(!m.is_zero());
        prop_assert_eq!(base.modpow(&exp, &m), base.modpow_basic(&exp, &m));
    }

    #[test]
    fn fixed_base_table_matches_square_and_multiply(
        base in proptest::collection::vec(any::<u8>(), 1..64),
        exp in proptest::collection::vec(any::<u8>(), 1..40),
        m in proptest::collection::vec(any::<u8>(), 1..48),
        w in 1usize..=6,
    ) {
        let base = big(&base);
        let exp = big(&exp);
        let m = big(&m);
        prop_assume!(!m.is_zero());
        // Size the table for 256-bit exponents; 1..40-byte exponents fit,
        // so the squaring-free path (not the fallback) is what's tested.
        let table = snowflake_bigint::FixedBaseTable::with_window(&base, &m, 320, w);
        prop_assert_eq!(table.power(&exp), base.modpow_basic(&exp, &m));
    }
}
