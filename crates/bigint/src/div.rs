//! Multi-precision division (Knuth TAOCP vol. 2, Algorithm D).

use crate::Ubig;

/// Divides `a` by `b`, returning `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if `b` is zero.
pub(crate) fn divrem(a: &Ubig, b: &Ubig) -> (Ubig, Ubig) {
    assert!(!b.is_zero(), "division by zero");
    if a < b {
        return (Ubig::zero(), a.clone());
    }
    if b.limbs.len() == 1 {
        return divrem_by_limb(a, b.limbs[0]);
    }

    // Normalize: shift so the divisor's top limb has its high bit set.
    let shift = b.limbs.last().expect("nonzero").leading_zeros() as usize;
    let u = a.shl(shift);
    let v = b.shl(shift);
    let n = v.limbs.len();
    let m = u.limbs.len() - n;

    // Working copy of the dividend with one extra high limb.
    let mut un: Vec<u32> = u.limbs.clone();
    un.push(0);
    let vn = &v.limbs;
    let mut q = vec![0u32; m + 1];

    let v_top = vn[n - 1] as u64;
    let v_next = vn[n - 2] as u64;

    for j in (0..=m).rev() {
        // Estimate the next quotient limb from the top two dividend limbs.
        let num = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
        let mut qhat = num / v_top;
        let mut rhat = num % v_top;
        while qhat >= 1 << 32 || qhat * v_next > ((rhat << 32) | un[j + n - 2] as u64) {
            qhat -= 1;
            rhat += v_top;
            if rhat >= 1 << 32 {
                break;
            }
        }

        // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
        let mut borrow = 0i64;
        let mut carry = 0u64;
        for i in 0..n {
            let p = qhat * vn[i] as u64 + carry;
            carry = p >> 32;
            let t = un[i + j] as i64 - borrow - (p as u32) as i64;
            un[i + j] = t as u32;
            borrow = if t < 0 { 1 } else { 0 };
        }
        let t = un[j + n] as i64 - borrow - carry as i64;
        un[j + n] = t as u32;

        if t < 0 {
            // Estimate was one too high: add the divisor back.
            qhat -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let s = un[i + j] as u64 + vn[i] as u64 + carry;
                un[i + j] = s as u32;
                carry = s >> 32;
            }
            un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
        }
        q[j] = qhat as u32;
    }

    let mut quotient = Ubig { limbs: q };
    quotient.trim();
    let mut rem = Ubig {
        limbs: un[..n].to_vec(),
    };
    rem.trim();
    (quotient, rem.shr(shift))
}

fn divrem_by_limb(a: &Ubig, d: u32) -> (Ubig, Ubig) {
    let mut q = vec![0u32; a.limbs.len()];
    let mut rem = 0u64;
    for i in (0..a.limbs.len()).rev() {
        let cur = (rem << 32) | a.limbs[i] as u64;
        q[i] = (cur / d as u64) as u32;
        rem = cur % d as u64;
    }
    let mut quotient = Ubig { limbs: q };
    quotient.trim();
    (quotient, Ubig::from(rem))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_limb() {
        let a = Ubig::from_hex("ffffffffffffffffffffffff").unwrap();
        let (q, r) = divrem(&a, &Ubig::from(7u64));
        assert_eq!(q.mul(&Ubig::from(7u64)).add(&r), a);
    }

    #[test]
    fn knuth_d_add_back_case() {
        // Construct a case that exercises the rare add-back branch:
        // dividend = 0x7fff_ffff_8000_0000_0000_0000, divisor = 0x8000_0000_ffff_ffff.
        let a = Ubig::from_hex("7fffffff800000000000000000000000").unwrap();
        let b = Ubig::from_hex("80000000ffffffff").unwrap();
        let (q, r) = divrem(&a, &b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn exhaustive_small() {
        for a in 0..200u64 {
            for b in 1..40u64 {
                let (q, r) = divrem(&Ubig::from(a), &Ubig::from(b));
                assert_eq!(q.to_u64().unwrap(), a / b);
                assert_eq!(r.to_u64().unwrap(), a % b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_zero_panics() {
        let _ = divrem(&Ubig::from(1u64), &Ubig::zero());
    }
}
