//! Arbitrary-precision unsigned integers.
//!
//! The Snowflake reproduction may not use external crypto crates, so the
//! public-key substrate (Schnorr signatures and Diffie–Hellman in
//! `snowflake-crypto`) is built on this small big-integer library.  It
//! provides exactly what modular-arithmetic cryptography needs: comparison,
//! `+ - * / %`, modular exponentiation, modular inverse, and Miller–Rabin
//! primality testing.
//!
//! Numbers are little-endian vectors of `u32` limbs with no leading zero
//! limbs (zero is the empty vector).  All arithmetic is plain safe Rust;
//! performance is adequate for 512–2048-bit groups, which is all the paper's
//! measurements require (they used 1024-bit RSA).
//!
//! # Examples
//!
//! ```
//! use snowflake_bigint::Ubig;
//!
//! let p = Ubig::from(101u64);
//! let g = Ubig::from(2u64);
//! assert_eq!(g.modpow(&Ubig::from(100u64), &p), Ubig::one()); // Fermat
//! ```

mod div;
mod fixed_base;
mod modular;
mod prime;

pub use fixed_base::FixedBaseTable;
pub use prime::{gen_prime, is_probable_prime};

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing (most-significant) zero limbs; the
/// value zero is represented by an empty limb vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    pub(crate) limbs: Vec<u32>,
}

impl Ubig {
    /// Returns zero.
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// Returns one.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` when the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` when the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().map_or(true, |l| l & 1 == 0)
    }

    pub(crate) fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).map_or(false, |l| (l >> off) & 1 == 1)
    }

    /// Builds a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut iter = bytes.rchunks(4);
        for chunk in &mut iter {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
        }
        let mut n = Ubig { limbs };
        n.trim();
        n
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the top limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes left-padded with zeros to `len`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value needs {} bytes, caller allowed {len}",
            raw.len()
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, either case).
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut limbs: Vec<u32> = Vec::new();
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        for b in s.bytes() {
            let v = (b as char).to_digit(16)? as u32;
            // limbs = limbs * 16 + v
            let mut carry = v;
            for limb in limbs.iter_mut() {
                let t = ((*limb as u64) << 4) | carry as u64;
                *limb = t as u32;
                carry = (t >> 32) as u32;
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut n = Ubig { limbs };
        n.trim();
        Some(n)
    }

    /// Renders as lowercase hexadecimal ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = String::new();
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    /// Converts to `u64`, or `None` when out of range.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Addition.
    pub fn add(&self, other: &Ubig) -> Ubig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let sum = long[i] as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = Ubig { limbs: out };
        n.trim();
        n
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (the type is unsigned).
    pub fn sub(&self, other: &Ubig) -> Ubig {
        assert!(self >= other, "Ubig::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - *other.limbs.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Ubig { limbs: out };
        n.trim();
        n
    }

    /// Multiplication (schoolbook; adequate for ≤2048-bit operands).
    pub fn mul(&self, other: &Ubig) -> Ubig {
        if self.is_zero() || other.is_zero() {
            return Ubig::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u64 * b as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut n = Ubig { limbs: out };
        n.trim();
        n
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Ubig {
        if self.is_zero() {
            return Ubig::zero();
        }
        let (limb_shift, bit_shift) = (n / 32, n % 32);
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = (l >> (32 - bit_shift)) as u32;
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut v = Ubig { limbs: out };
        v.trim();
        v
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> Ubig {
        let (limb_shift, bit_shift) = (n / 32, n % 32);
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut v = Ubig { limbs: out };
        v.trim();
        v
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn divrem(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        div::divrem(self, divisor)
    }

    /// Remainder `self % m`.
    pub fn rem(&self, m: &Ubig) -> Ubig {
        self.divrem(m).1
    }

    /// Modular addition `(self + b) mod m`.
    pub fn addm(&self, b: &Ubig, m: &Ubig) -> Ubig {
        self.add(b).rem(m)
    }

    /// Modular subtraction `(self - b) mod m`; operands may exceed `m`.
    pub fn subm(&self, b: &Ubig, m: &Ubig) -> Ubig {
        let a = self.rem(m);
        let b = b.rem(m);
        if a >= b {
            a.sub(&b)
        } else {
            a.add(m).sub(&b)
        }
    }

    /// Modular multiplication `(self * b) mod m`.
    pub fn mulm(&self, b: &Ubig, m: &Ubig) -> Ubig {
        self.mul(b).rem(m)
    }

    /// Modular exponentiation `self^exp mod m` (sliding window).
    pub fn modpow(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        modular::modpow(self, exp, m)
    }

    /// Modular exponentiation by plain left-to-right square-and-multiply.
    ///
    /// The reference implementation [`Ubig::modpow`] is cross-checked
    /// against; also the table-free baseline the crypto benches compare
    /// their fast paths to.
    pub fn modpow_basic(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        modular::modpow_basic(self, exp, m)
    }

    /// Modular inverse, or `None` when `gcd(self, m) != 1`.
    pub fn modinv(&self, m: &Ubig) -> Option<Ubig> {
        modular::modinv(self, m)
    }

    /// Greatest common divisor.
    pub fn gcd(&self, other: &Ubig) -> Ubig {
        modular::gcd(self, other)
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        let mut n = Ubig {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.trim();
        n
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from(v as u64)
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn basics() {
        assert!(Ubig::zero().is_zero());
        assert!(Ubig::one().is_one());
        assert_eq!(n(0), Ubig::zero());
        assert_eq!(n(1).add(&n(1)), n(2));
        assert_eq!(n(u64::MAX).add(&n(1)).to_hex(), "10000000000000000");
    }

    #[test]
    fn bytes_roundtrip() {
        for v in [0u64, 1, 255, 256, 0xdeadbeef, u64::MAX] {
            let b = n(v).to_bytes_be();
            assert_eq!(Ubig::from_bytes_be(&b), n(v));
        }
        assert_eq!(Ubig::from_bytes_be(&[0, 0, 1, 0]), n(256));
        assert_eq!(n(0xabcd).to_bytes_be_padded(4), vec![0, 0, 0xab, 0xcd]);
    }

    #[test]
    fn hex_roundtrip() {
        let h = "8531e8f3107b5a791d0c1781cbcd1ffd26b646b02f4044977eefe934e2e2e04d";
        let v = Ubig::from_hex(h).unwrap();
        assert_eq!(v.to_hex(), h);
        assert_eq!(Ubig::from_hex("0").unwrap(), Ubig::zero());
        assert!(Ubig::from_hex("xyz").is_none());
        assert!(Ubig::from_hex("").is_none());
    }

    #[test]
    fn sub_and_cmp() {
        assert_eq!(n(1000).sub(&n(1)), n(999));
        assert!(n(5) < n(6));
        assert!(n(1) < n(u64::MAX));
        let big = Ubig::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(big.sub(&big), Ubig::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1).sub(&n(2));
    }

    #[test]
    fn mul_against_u128() {
        let cases = [
            (0u64, 5u64),
            (1, 7),
            (u32::MAX as u64, u32::MAX as u64),
            (u64::MAX, 2),
            (123456789, 987654321),
        ];
        for (a, b) in cases {
            let want = a as u128 * b as u128;
            let got = n(a).mul(&n(b));
            assert_eq!(got.to_hex(), format!("{want:x}"), "{a} * {b}");
        }
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl(100).shr(100), n(1));
        assert_eq!(n(0b1011).shl(2), n(0b101100));
        assert_eq!(n(0b1011).shr(2), n(0b10));
        assert_eq!(n(5).shr(64), Ubig::zero());
        assert_eq!(n(1).shl(32).bits(), 33);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(Ubig::zero().bits(), 0);
        assert_eq!(n(1).bits(), 1);
        assert_eq!(n(255).bits(), 8);
        assert_eq!(n(256).bits(), 9);
        assert!(n(4).bit(2));
        assert!(!n(4).bit(1));
        assert!(!n(4).bit(100));
    }

    #[test]
    fn divrem_small() {
        let (q, r) = n(100).divrem(&n(7));
        assert_eq!((q, r), (n(14), n(2)));
        let (q, r) = n(5).divrem(&n(10));
        assert_eq!((q, r), (Ubig::zero(), n(5)));
        let (q, r) = n(u64::MAX).divrem(&n(1));
        assert_eq!((q, r), (n(u64::MAX), Ubig::zero()));
    }

    #[test]
    fn divrem_multi_limb() {
        let a = Ubig::from_hex("123456789abcdef0123456789abcdef0123456789").unwrap();
        let b = Ubig::from_hex("fedcba9876543210").unwrap();
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn modpow_fermat() {
        // 2^(p-1) = 1 mod p for prime p.
        let p = Ubig::from_hex("89c591c94db4d9b86ac43d68a1fe3f49b10406476d285bf673f4256432bbd1ed")
            .unwrap();
        let g = n(2);
        assert_eq!(g.modpow(&p.sub(&Ubig::one()), &p), Ubig::one());
    }

    #[test]
    fn modpow_edges() {
        assert_eq!(n(5).modpow(&Ubig::zero(), &n(7)), Ubig::one());
        assert_eq!(n(5).modpow(&Ubig::one(), &n(7)), n(5));
        assert_eq!(n(0).modpow(&n(10), &n(7)), Ubig::zero());
        assert_eq!(n(3).modpow(&n(4), &n(5)), n(1)); // 81 mod 5
    }

    #[test]
    fn modinv_works() {
        let m = n(101);
        for a in 1..100u64 {
            let inv = n(a).modinv(&m).unwrap();
            assert_eq!(n(a).mulm(&inv, &m), Ubig::one(), "a={a}");
        }
        assert!(n(6).modinv(&n(9)).is_none()); // gcd 3
    }

    #[test]
    fn gcd_works() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(13)), n(1));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
    }

    #[test]
    fn subm_wraps() {
        let m = n(97);
        assert_eq!(n(5).subm(&n(10), &m), n(92));
        assert_eq!(n(10).subm(&n(5), &m), n(5));
        assert_eq!(n(500).subm(&n(3), &m), n(497 % 97));
    }

    #[test]
    fn to_u64_bounds() {
        assert_eq!(Ubig::zero().to_u64(), Some(0));
        assert_eq!(n(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(n(u64::MAX).add(&Ubig::one()).to_u64(), None);
    }
}
