//! Miller–Rabin probabilistic primality testing and prime generation.
//!
//! Used by `snowflake-crypto` tests to validate the hard-coded Schnorr group
//! parameters, and available for generating fresh groups.

use crate::Ubig;

/// Small primes for fast trial division.
const SMALL_PRIMES: [u32; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// Miller–Rabin probable-prime test with `rounds` random bases drawn from
/// the caller-supplied byte source.
///
/// `rand_bytes` must fill its argument with uniformly random bytes; the
/// crypto crate passes its RNG in so this crate stays dependency-free.
pub fn is_probable_prime(n: &Ubig, rounds: u32, rand_bytes: &mut dyn FnMut(&mut [u8])) -> bool {
    if n < &Ubig::from(2u64) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = Ubig::from(p);
        if n == &p {
            return true;
        }
        if n.rem(&p).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d * 2^r with d odd.
    let n_minus_1 = n.sub(&Ubig::one());
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while d.is_even() {
        d = d.shr(1);
        r += 1;
    }

    let byte_len = n.to_bytes_be().len();
    'witness: for _ in 0..rounds {
        // Draw a base in [2, n-2] by rejection sampling.
        let a = loop {
            let mut buf = vec![0u8; byte_len];
            rand_bytes(&mut buf);
            let a = Ubig::from_bytes_be(&buf).rem(n);
            if a >= Ubig::from(2u64) && a <= n.sub(&Ubig::from(2u64)) {
                break a;
            }
        };
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = x.mulm(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime(bits: usize, rand_bytes: &mut dyn FnMut(&mut [u8])) -> Ubig {
    assert!(bits >= 2, "cannot generate a prime under 2 bits");
    loop {
        let byte_len = bits.div_ceil(8);
        let mut buf = vec![0u8; byte_len];
        rand_bytes(&mut buf);
        let mut candidate = Ubig::from_bytes_be(&buf);
        // Clamp to exactly `bits` bits and force odd.
        candidate = candidate.rem(&Ubig::one().shl(bits));
        let top = Ubig::one().shl(bits - 1);
        if candidate < top {
            candidate = candidate.add(&top);
        }
        if candidate.is_even() {
            candidate = candidate.add(&Ubig::one());
        }
        if candidate.bits() != bits {
            continue;
        }
        if is_probable_prime(&candidate, 24, rand_bytes) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift byte source for tests.
    fn test_rng() -> impl FnMut(&mut [u8]) {
        let mut state = 0x1234_5678_9abc_def0u64;
        move |buf: &mut [u8]| {
            for b in buf {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = state as u8;
            }
        }
    }

    #[test]
    fn known_primes() {
        let mut rng = test_rng();
        for p in [2u64, 3, 5, 97, 101, 7919, 104729, 2147483647] {
            assert!(
                is_probable_prime(&Ubig::from(p), 16, &mut rng),
                "{p} is prime"
            );
        }
    }

    #[test]
    fn known_composites() {
        let mut rng = test_rng();
        for c in [
            1u64, 4, 100, 561, /* Carmichael */
            1105, 6601, 2147483649,
        ] {
            assert!(
                !is_probable_prime(&Ubig::from(c), 16, &mut rng),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn group_parameters_are_prime() {
        // The hard-coded 512-bit test group modulus and subgroup order.
        let p = Ubig::from_hex(
            "8531e8f3107b5a791d0c1781cbcd1ffd26b646b02f4044977eefe934e2e2e04d\
             725275f0f099503d7efe7366b8c00b1fbfbe58df5928a69eda0f0645cf6428bd",
        )
        .unwrap();
        let q = Ubig::from_hex("89c591c94db4d9b86ac43d68a1fe3f49b10406476d285bf673f4256432bbd1ed")
            .unwrap();
        let mut rng = test_rng();
        assert!(is_probable_prime(&p, 12, &mut rng));
        assert!(is_probable_prime(&q, 12, &mut rng));
        // q divides p - 1 (the subgroup structure Schnorr needs).
        assert!(p.sub(&Ubig::one()).rem(&q).is_zero());
    }

    #[test]
    fn gen_prime_small() {
        let mut rng = test_rng();
        let p = gen_prime(48, &mut rng);
        assert_eq!(p.bits(), 48);
        assert!(is_probable_prime(&p, 16, &mut rng));
    }
}
