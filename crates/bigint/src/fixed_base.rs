//! Fixed-base modular exponentiation tables.
//!
//! Schnorr verification exponentiates the same two bases — the group
//! generator `g` and the issuer public key `y` — on every single proof.
//! A radix-2^w table trades a one-time precomputation (every window's
//! digit powers of the base) for exponentiations with **zero squarings**:
//! writing the exponent as digits `d_j` base 2^w,
//!
//! ```text
//! base^e = ∏_j (base^(2^(w·j)))^(d_j) = ∏_j table[j][d_j − 1]
//! ```
//!
//! so a 256-bit exponent at w = 4 costs at most 64 modular multiplies,
//! versus ~300 for sliding-window and ~380 for square-and-multiply.  The
//! table is immutable after construction and safe to share across
//! threads.

use crate::Ubig;

/// Default window width: 4 bits balances table size (15 entries per
/// window — ~960 entries / ~120 KiB for a 256-bit exponent over a
/// 1024-bit modulus) against multiplies per exponentiation (≤ 64).
const DEFAULT_WINDOW: usize = 4;

/// A precomputed radix-2^w fixed-base exponentiation table.
///
/// Built once per (base, modulus) pair for exponents up to a declared bit
/// length; [`FixedBaseTable::power`] then computes `base^e mod m` with no
/// squarings.  Exponents wider than the table was sized for fall back to
/// generic sliding-window `modpow`, so the table is always *correct*,
/// merely fastest inside its design range.
pub struct FixedBaseTable {
    base: Ubig,
    modulus: Ubig,
    window: usize,
    max_bits: usize,
    /// `table[j][d - 1] = base^(d · 2^(w·j)) mod m` for digits `d ∈ 1..2^w`.
    table: Vec<Vec<Ubig>>,
}

impl FixedBaseTable {
    /// Builds a table for exponents up to `max_exp_bits` bits with the
    /// default window width.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn new(base: &Ubig, modulus: &Ubig, max_exp_bits: usize) -> FixedBaseTable {
        Self::with_window(base, modulus, max_exp_bits, DEFAULT_WINDOW)
    }

    /// Builds a table with an explicit window width `w ∈ 1..=8`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or `window` is outside `1..=8`.
    pub fn with_window(
        base: &Ubig,
        modulus: &Ubig,
        max_exp_bits: usize,
        window: usize,
    ) -> FixedBaseTable {
        assert!(!modulus.is_zero(), "fixed-base table with zero modulus");
        assert!((1..=8).contains(&window), "window width must be 1..=8");
        let base = base.rem(modulus);
        let max_bits = max_exp_bits.max(1);
        let windows = max_bits.div_ceil(window);
        let mut table = Vec::with_capacity(windows);
        // `cur` walks the window bases: base^(2^(w·j)).
        let mut cur = base.clone();
        for _ in 0..windows {
            let mut row = Vec::with_capacity((1usize << window) - 1);
            row.push(cur.clone());
            for d in 2..(1usize << window) {
                let next = row[d - 2].mulm(&cur, modulus);
                row.push(next);
            }
            // base^(2^(w·(j+1))) = base^((2^w − 1)·2^(w·j)) · base^(2^(w·j)).
            cur = row[row.len() - 1].mulm(&cur, modulus);
            table.push(row);
        }
        FixedBaseTable {
            base,
            modulus: modulus.clone(),
            window,
            max_bits,
            table,
        }
    }

    /// Computes `base^exp mod modulus`.
    ///
    /// Squaring-free for exponents within the table's design width;
    /// wider exponents take the generic `modpow` fallback.
    pub fn power(&self, exp: &Ubig) -> Ubig {
        if exp.bits() > self.max_bits {
            return self.base.modpow(exp, &self.modulus);
        }
        let w = self.window;
        let mut result = Ubig::one();
        for (j, row) in self.table.iter().enumerate() {
            let lo = j * w;
            let mut digit = 0usize;
            for k in 0..w {
                digit |= (exp.bit(lo + k) as usize) << k;
            }
            if digit != 0 {
                result = result.mulm(&row[digit - 1], &self.modulus);
            }
        }
        result
    }

    /// The (reduced) base this table exponentiates.
    pub fn base(&self) -> &Ubig {
        &self.base
    }

    /// The modulus the table reduces by.
    pub fn modulus(&self) -> &Ubig {
        &self.modulus
    }

    /// Widest exponent (in bits) served without falling back.
    pub fn max_exp_bits(&self) -> usize {
        self.max_bits
    }

    /// Total precomputed entries (sizing diagnostics for docs/benches).
    pub fn entries(&self) -> usize {
        self.table.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(x: u64) -> Ubig {
        Ubig::from(x)
    }

    #[test]
    fn known_answers_small() {
        // 4^13 mod 497 = 445.
        let t = FixedBaseTable::new(&n(4), &n(497), 8);
        assert_eq!(t.power(&n(13)), n(445));
        assert_eq!(t.power(&n(0)), Ubig::one());
        assert_eq!(t.power(&n(1)), n(4));
    }

    #[test]
    fn matches_modpow_across_windows() {
        let m = Ubig::from_hex("89c591c94db4d9b86ac43d68a1fe3f49b10406476d285bf673f4256432bbd1ed")
            .unwrap();
        let base = Ubig::from_hex("1234567890abcdef").unwrap();
        for w in 1..=8 {
            let t = FixedBaseTable::with_window(&base, &m, 256, w);
            for hex in ["1", "2", "ff", "deadbeef", "ffffffffffffffff"] {
                let e = Ubig::from_hex(hex).unwrap();
                assert_eq!(t.power(&e), base.modpow(&e, &m), "w={w} e={hex}");
            }
        }
    }

    #[test]
    fn oversized_exponent_falls_back() {
        let m = n(1_000_003);
        let t = FixedBaseTable::new(&n(7), &m, 16);
        let e = Ubig::from_hex("123456789abcdef0123456789").unwrap();
        assert_eq!(t.power(&e), n(7).modpow(&e, &m));
    }
}
