//! Modular exponentiation, inverse, and gcd.

use crate::Ubig;

/// Computes `base^exp mod m` by left-to-right square-and-multiply.
///
/// Kept as the reference implementation: the sliding-window [`modpow`]
/// below is cross-checked against it by proptests, and callers that want
/// a table-free, precomputation-free path (e.g. constant-shape reference
/// verification) can reach it through `Ubig::modpow_basic`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub(crate) fn modpow_basic(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero(), "modpow with zero modulus");
    if m.is_one() {
        return Ubig::zero();
    }
    let mut result = Ubig::one();
    let base = base.rem(m);
    let nbits = exp.bits();
    for i in (0..nbits).rev() {
        result = result.mulm(&result, m);
        if exp.bit(i) {
            result = result.mulm(&base, m);
        }
    }
    result
}

/// Window width for a sliding-window exponentiation of `nbits` bits.
///
/// Chosen so the 2^(w-1) odd-power precomputation amortizes: roughly
/// w ≈ lg(nbits) − 1, which for the 256-bit exponents on the Schnorr hot
/// path yields w = 5 (16 precomputed odd powers, ~43 window multiplies
/// instead of ~128 square-and-multiply multiplies).
fn window_for(nbits: usize) -> usize {
    match nbits {
        0..=23 => 1,
        24..=79 => 3,
        80..=239 => 4,
        240..=767 => 5,
        _ => 6,
    }
}

/// Computes `base^exp mod m` by left-to-right sliding-window
/// exponentiation over precomputed odd powers of the base.
///
/// Same contract as [`modpow_basic`] (and proptest-checked equal to it);
/// this is the default `Ubig::modpow`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub(crate) fn modpow(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero(), "modpow with zero modulus");
    if m.is_one() {
        return Ubig::zero();
    }
    let nbits = exp.bits();
    if nbits <= 4 {
        return modpow_basic(base, exp, m);
    }
    let base = base.rem(m);
    let w = window_for(nbits);
    // odd[i] = base^(2i+1) mod m.
    let sq = base.mulm(&base, m);
    let mut odd = Vec::with_capacity(1usize << (w - 1));
    odd.push(base);
    for i in 1..(1usize << (w - 1)) {
        let next = odd[i - 1].mulm(&sq, m);
        odd.push(next);
    }
    let mut result = Ubig::one();
    let mut i = nbits as isize - 1;
    while i >= 0 {
        if !exp.bit(i as usize) {
            result = result.mulm(&result, m);
            i -= 1;
            continue;
        }
        // Take the widest window [j..=i] (≤ w bits) ending on a set bit,
        // so the multiplied-in value is an odd power.
        let mut j = (i - w as isize + 1).max(0);
        while !exp.bit(j as usize) {
            j += 1;
        }
        let mut digit = 0usize;
        for k in (j..=i).rev() {
            digit = (digit << 1) | exp.bit(k as usize) as usize;
        }
        for _ in 0..(i - j + 1) {
            result = result.mulm(&result, m);
        }
        result = result.mulm(&odd[digit >> 1], m);
        i = j - 1;
    }
    result
}

/// Computes the modular inverse of `a` mod `m` via the extended Euclidean
/// algorithm, or `None` when `gcd(a, m) != 1`.
pub(crate) fn modinv(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    // Track Bezout coefficients for `a` only, in sign-magnitude form.
    let mut r0 = m.clone();
    let mut r1 = a.rem(m);
    let mut t0 = (Ubig::zero(), false); // (magnitude, negative?)
    let mut t1 = (Ubig::one(), false);

    while !r1.is_zero() {
        let (q, r2) = r0.divrem(&r1);
        // t2 = t0 - q * t1  (signed arithmetic in sign-magnitude form)
        let qt1 = q.mul(&t1.0);
        let t2 = signed_sub(&t0, &(qt1, t1.1));
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    if !r0.is_one() {
        return None;
    }
    let (mag, neg) = t0;
    let mag = mag.rem(m);
    Some(if neg && !mag.is_zero() {
        m.sub(&mag)
    } else {
        mag
    })
}

/// Signed subtraction over sign-magnitude pairs: returns `a - b`.
fn signed_sub(a: &(Ubig, bool), b: &(Ubig, bool)) -> (Ubig, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b.
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b).
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a.
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

/// Binary-free Euclidean gcd.
pub(crate) fn gcd(a: &Ubig, b: &Ubig) -> Ubig {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = a.rem(&b);
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modpow_known() {
        // 4^13 mod 497 = 445.
        assert_eq!(
            modpow(&Ubig::from(4u64), &Ubig::from(13u64), &Ubig::from(497u64)),
            Ubig::from(445u64)
        );
    }

    #[test]
    fn modpow_mod_one() {
        assert_eq!(
            modpow(&Ubig::from(5u64), &Ubig::from(5u64), &Ubig::one()),
            Ubig::zero()
        );
        assert_eq!(
            modpow_basic(&Ubig::from(5u64), &Ubig::from(5u64), &Ubig::one()),
            Ubig::zero()
        );
    }

    #[test]
    fn sliding_window_matches_basic_known_answers() {
        // Exponents long enough to exercise every window width.
        let m = Ubig::from_hex("89c591c94db4d9b86ac43d68a1fe3f49b10406476d285bf673f4256432bbd1ed")
            .unwrap();
        let base = Ubig::from_hex("1234567890abcdef1234567890abcdef").unwrap();
        for hex in [
            "1",
            "2",
            "ff",
            "deadbeef",
            "ffffffffffffffff",
            "80000000000000000000000000000001",
            "89c591c94db4d9b86ac43d68a1fe3f49b10406476d285bf673f4256432bbd1ec",
        ] {
            let e = Ubig::from_hex(hex).unwrap();
            assert_eq!(modpow(&base, &e, &m), modpow_basic(&base, &e, &m), "e={hex}");
        }
    }

    #[test]
    fn sliding_window_fermat() {
        // 2^(p-1) = 1 mod p for a 256-bit prime p.
        let p = Ubig::from_hex("89c591c94db4d9b86ac43d68a1fe3f49b10406476d285bf673f4256432bbd1ed")
            .unwrap();
        let e = p.sub(&Ubig::one());
        assert_eq!(modpow(&Ubig::from(2u64), &e, &p), Ubig::one());
    }

    #[test]
    fn modinv_exhaustive_prime() {
        let p = Ubig::from(97u64);
        for a in 1..97u64 {
            let inv = modinv(&Ubig::from(a), &p).unwrap();
            assert_eq!(Ubig::from(a).mulm(&inv, &p), Ubig::one());
        }
    }

    #[test]
    fn modinv_large() {
        let p = Ubig::from_hex("89c591c94db4d9b86ac43d68a1fe3f49b10406476d285bf673f4256432bbd1ed")
            .unwrap();
        let a = Ubig::from_hex("1234567890abcdef").unwrap();
        let inv = modinv(&a, &p).unwrap();
        assert_eq!(a.mulm(&inv, &p), Ubig::one());
    }

    #[test]
    fn modinv_composite_fails() {
        assert!(modinv(&Ubig::from(4u64), &Ubig::from(8u64)).is_none());
        assert!(modinv(&Ubig::from(3u64), &Ubig::one()).is_none());
    }
}
