//! Modular exponentiation, inverse, and gcd.

use crate::Ubig;

/// Computes `base^exp mod m` by left-to-right square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero.
pub(crate) fn modpow(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero(), "modpow with zero modulus");
    if m.is_one() {
        return Ubig::zero();
    }
    let mut result = Ubig::one();
    let base = base.rem(m);
    let nbits = exp.bits();
    for i in (0..nbits).rev() {
        result = result.mulm(&result, m);
        if exp.bit(i) {
            result = result.mulm(&base, m);
        }
    }
    result
}

/// Computes the modular inverse of `a` mod `m` via the extended Euclidean
/// algorithm, or `None` when `gcd(a, m) != 1`.
pub(crate) fn modinv(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    // Track Bezout coefficients for `a` only, in sign-magnitude form.
    let mut r0 = m.clone();
    let mut r1 = a.rem(m);
    let mut t0 = (Ubig::zero(), false); // (magnitude, negative?)
    let mut t1 = (Ubig::one(), false);

    while !r1.is_zero() {
        let (q, r2) = r0.divrem(&r1);
        // t2 = t0 - q * t1  (signed arithmetic in sign-magnitude form)
        let qt1 = q.mul(&t1.0);
        let t2 = signed_sub(&t0, &(qt1, t1.1));
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    if !r0.is_one() {
        return None;
    }
    let (mag, neg) = t0;
    let mag = mag.rem(m);
    Some(if neg && !mag.is_zero() {
        m.sub(&mag)
    } else {
        mag
    })
}

/// Signed subtraction over sign-magnitude pairs: returns `a - b`.
fn signed_sub(a: &(Ubig, bool), b: &(Ubig, bool)) -> (Ubig, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b.
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b).
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a.
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

/// Binary-free Euclidean gcd.
pub(crate) fn gcd(a: &Ubig, b: &Ubig) -> Ubig {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = a.rem(&b);
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modpow_known() {
        // 4^13 mod 497 = 445.
        assert_eq!(
            modpow(&Ubig::from(4u64), &Ubig::from(13u64), &Ubig::from(497u64)),
            Ubig::from(445u64)
        );
    }

    #[test]
    fn modpow_mod_one() {
        assert_eq!(
            modpow(&Ubig::from(5u64), &Ubig::from(5u64), &Ubig::one()),
            Ubig::zero()
        );
    }

    #[test]
    fn modinv_exhaustive_prime() {
        let p = Ubig::from(97u64);
        for a in 1..97u64 {
            let inv = modinv(&Ubig::from(a), &p).unwrap();
            assert_eq!(Ubig::from(a).mulm(&inv, &p), Ubig::one());
        }
    }

    #[test]
    fn modinv_large() {
        let p = Ubig::from_hex("89c591c94db4d9b86ac43d68a1fe3f49b10406476d285bf673f4256432bbd1ed")
            .unwrap();
        let a = Ubig::from_hex("1234567890abcdef").unwrap();
        let inv = modinv(&a, &p).unwrap();
        assert_eq!(a.mulm(&inv, &p), Ubig::one());
    }

    #[test]
    fn modinv_composite_fails() {
        assert!(modinv(&Ubig::from(4u64), &Ubig::from(8u64)).is_none());
        assert!(modinv(&Ubig::from(3u64), &Ubig::one()).is_none());
    }
}
