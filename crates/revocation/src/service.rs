//! The validator service: the authority that *distributes* revocation.
//!
//! A [`ValidatorService`] owns the revocation state for one validator key:
//! which certificates are dead, the current signed [`Crl`], and the
//! one-time [`Revalidation`]s it is willing to mint.  It serves both pull
//! (fetch the current CRL, request a revalidation — including over RMI via
//! [`ValidatorObject`]) and push: subscribers registered through
//! [`ValidatorService::subscribe`] receive a signed [`RevocationDelta`]
//! the moment a certificate is revoked, over whatever sink they choose —
//! an in-process freshness agent, an mpsc channel, or a framed
//! [`Transport`] to another host.
//!
//! This is the production shape of Vanadium-style third-party validators:
//! short-lived signed artifacts minted centrally, cached and refreshed at
//! every verifier.

use crate::delta::RevocationDelta;
use snowflake_channel::Transport;
use snowflake_core::sync::LockExt;
use snowflake_core::{Crl, Principal, Revalidation, Time, Validity};
use snowflake_crypto::{HashVal, KeyPair, PublicKey};
use snowflake_rmi::{CallerInfo, Invocation, RemoteObject, RmiFault};
use snowflake_runtime::BoundedQueue;
use snowflake_sexpr::Sexp;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Default CRL validity window (seconds).  Short enough that a verifier
/// cut off from both push and pull fails closed quickly; long enough that
/// refresh traffic stays cheap.
pub const DEFAULT_CRL_WINDOW: u64 = 300;

/// Default revalidation validity window (seconds) — one-time revalidations
/// are deliberately much shorter than CRLs.
pub const DEFAULT_REVALIDATION_WINDOW: u64 = 30;

/// The registry name [`ValidatorObject`] is conventionally bound to.
pub const VALIDATOR_OBJECT: &str = "revocation-validator";

/// A push-notification sink.  Returning `false` unsubscribes the sink
/// (dead transports and dropped agents clean themselves up this way).
///
/// `push` runs with the validator's subscriber list locked and so must
/// **not block indefinitely**: transport-backed sinks hand the delta to a
/// per-subscriber forwarder thread instead of writing the socket inline,
/// so one stalled remote verifier cannot halt revocation distribution
/// for the whole fleet.
pub trait PushSink: Send {
    /// Delivers one delta; `false` drops the subscription.
    fn push(&mut self, delta: &RevocationDelta) -> bool;
}

/// A sink forwarding deltas into an in-process mpsc channel.
pub struct ChannelSink(Sender<RevocationDelta>);

impl PushSink for ChannelSink {
    fn push(&mut self, delta: &RevocationDelta) -> bool {
        self.0.send(delta.clone()).is_ok()
    }
}

/// Bounded queue depth between the validator and each transport
/// subscriber's forwarder: a subscriber this far behind is treated as
/// stalled and dropped rather than allowed to buffer without bound.
pub const TRANSPORT_SINK_QUEUE: usize = 64;

/// Per-subscriber state shared between the validator's broadcast path
/// and the forwarder thread.
struct SinkShared {
    queue: BoundedQueue<RevocationDelta>,
    /// The transport died or the subscriber stalled; the next broadcast
    /// drops the subscription.
    dead: AtomicBool,
}

/// A sink writing each delta as one canonical S-expression frame on a
/// [`Transport`] — how a validator pushes to verifiers on other hosts.
///
/// `push` only enqueues onto a bounded per-subscriber queue; the socket
/// writes happen on a **dedicated forwarder**
/// ([`snowflake_runtime::spawn_thread`] — a transport `send` can block
/// indefinitely on a dead-but-open peer, so it must own its thread
/// rather than pin a shared pool worker).  A stalled or slow remote
/// therefore blocks only its own forwarder, never the validator's
/// broadcast or other subscribers: its queue fills (each refusal counted
/// by the queue's drop counter) and the subscription is dropped.
pub struct TransportSink {
    shared: Arc<SinkShared>,
}

impl TransportSink {
    /// Wraps a connected transport, starting its forwarder (which exits
    /// when the sink is dropped or the transport dies).
    pub fn new(mut transport: Box<dyn Transport>) -> TransportSink {
        let shared = Arc::new(SinkShared {
            queue: BoundedQueue::new(TRANSPORT_SINK_QUEUE),
            dead: AtomicBool::new(false),
        });
        let forwarder = Arc::clone(&shared);
        snowflake_runtime::spawn_thread("sf-push-forwarder", move || {
            // pop() parks until a delta arrives or the queue closes
            // (sink dropped) and drains what was accepted before then.
            while let Some(delta) = forwarder.queue.pop() {
                if transport.send(&delta.to_sexp().canonical()).is_err() {
                    forwarder.dead.store(true, Ordering::SeqCst);
                    return;
                }
            }
        });
        TransportSink { shared }
    }
}

impl PushSink for TransportSink {
    fn push(&mut self, delta: &RevocationDelta) -> bool {
        if self.shared.dead.load(Ordering::SeqCst) {
            return false;
        }
        // Full queue = stalled subscriber.  The subscription is dropped
        // (visibly: the refusal is counted by the queue's drop counter,
        // and the verifier's pull refresh takes over) rather than letting
        // a revocation sit undelivered for an unbounded time.
        if self.shared.queue.try_push(delta.clone()).is_err() {
            self.shared.dead.store(true, Ordering::SeqCst);
            return false;
        }
        true
    }
}

impl Drop for TransportSink {
    fn drop(&mut self) {
        // Closing the queue ends the forwarder once it has written
        // everything already accepted (or immediately, if it is stuck in
        // a send the OS will eventually fail).
        self.shared.queue.close();
    }
}

/// A sink delivering deltas through the connection reactor: the socket
/// parks in the reactor's epoll set and is written nonblocking, so a
/// remote subscriber costs no thread at all (compare [`TransportSink`],
/// which dedicates a forwarder thread per subscriber).
///
/// Frames are byte-identical to [`TransportSink`] over TCP — a 4-byte
/// big-endian length prefix around the delta's canonical S-expression —
/// so [`read_delta`] on the verifier side cannot tell which one the
/// validator used.  A remote that stalls past the reactor's per-sink
/// buffer cap is shed (counted per-surface in the runtime's shed ledger
/// under `revocation-push`) and its socket closed; the next broadcast
/// then sees `push` fail and drops the subscription, exactly like a
/// stalled [`TransportSink`].
pub struct ReactorSink {
    handle: snowflake_runtime::SinkHandle,
}

impl ReactorSink {
    /// Parks `stream` in `runtime`'s reactor as a write-only push sink.
    pub fn new(
        stream: std::net::TcpStream,
        runtime: &Arc<snowflake_runtime::ServerRuntime>,
    ) -> std::io::Result<ReactorSink> {
        let surface = snowflake_runtime::Surface::new("revocation-push");
        let handle = runtime.reactor().adopt_sink(stream, surface)?;
        Ok(ReactorSink { handle })
    }
}

impl PushSink for ReactorSink {
    fn push(&mut self, delta: &RevocationDelta) -> bool {
        let frame = delta.to_sexp().canonical();
        let mut buf = Vec::with_capacity(4 + frame.len());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&frame);
        self.handle.send(&buf)
    }
}

/// Counters exposed for the freshness benchmarks and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ValidatorStats {
    /// Certificates revoked so far.
    pub revocations: u64,
    /// Signed CRLs issued (initial + reissues + per-revocation).
    pub crls_issued: u64,
    /// Revalidations minted.
    pub revalidations: u64,
    /// Deltas delivered to subscribers (one per subscriber per event).
    pub deltas_pushed: u64,
    /// Subscribers dropped after a failed push.
    pub subscribers_dropped: u64,
}

struct State {
    revoked: BTreeSet<HashVal>,
    serial: u64,
    cached: Option<Crl>,
    /// Durable authority state; `None` for an ephemeral validator.
    store: Option<crate::persist::ValidatorStore>,
}

/// Owns revocation state for one validator key and distributes it.
pub struct ValidatorService {
    key: KeyPair,
    clock: fn() -> Time,
    crl_window: u64,
    reval_window: u64,
    state: Mutex<State>,
    subscribers: Mutex<Vec<Box<dyn PushSink>>>,
    stats: Mutex<ValidatorStats>,
    rng: Mutex<Box<dyn FnMut(&mut [u8]) + Send>>,
}

impl ValidatorService {
    /// Creates a validator with the default windows, wall-clock time, and
    /// OS entropy.
    pub fn new(key: KeyPair) -> Arc<ValidatorService> {
        Self::with_clock(key, Time::now, Box::new(snowflake_crypto::rand_bytes))
    }

    /// Creates a validator with injected clock and entropy (tests/benches).
    pub fn with_clock(
        key: KeyPair,
        clock: fn() -> Time,
        rng: Box<dyn FnMut(&mut [u8]) + Send>,
    ) -> Arc<ValidatorService> {
        Self::with_windows(key, clock, rng, DEFAULT_CRL_WINDOW, DEFAULT_REVALIDATION_WINDOW)
    }

    /// Full-control constructor: CRL and revalidation windows in seconds.
    pub fn with_windows(
        key: KeyPair,
        clock: fn() -> Time,
        rng: Box<dyn FnMut(&mut [u8]) + Send>,
        crl_window: u64,
        reval_window: u64,
    ) -> Arc<ValidatorService> {
        Self::build(key, clock, rng, crl_window, reval_window, None)
    }

    /// A validator whose authority state (revoked set + CRL serial
    /// high-water mark) lives in a [`crate::ValidatorStore`]: a restart
    /// resumes the revoked set and can never sign a serial at or below
    /// one it signed before the crash.
    pub fn with_store(
        key: KeyPair,
        clock: fn() -> Time,
        rng: Box<dyn FnMut(&mut [u8]) + Send>,
        crl_window: u64,
        reval_window: u64,
        store: crate::persist::ValidatorStore,
    ) -> Arc<ValidatorService> {
        Self::build(key, clock, rng, crl_window, reval_window, Some(store))
    }

    fn build(
        key: KeyPair,
        clock: fn() -> Time,
        rng: Box<dyn FnMut(&mut [u8]) + Send>,
        crl_window: u64,
        reval_window: u64,
        store: Option<crate::persist::ValidatorStore>,
    ) -> Arc<ValidatorService> {
        let (revoked, serial) = store.as_ref().map_or_else(
            || (BTreeSet::new(), 0),
            |s| (s.revoked().clone(), s.serial_high_water()),
        );
        Arc::new(ValidatorService {
            key,
            clock,
            crl_window,
            reval_window,
            state: Mutex::new(State {
                revoked,
                serial,
                cached: None,
                store,
            }),
            subscribers: Mutex::new(Vec::new()),
            stats: Mutex::new(ValidatorStats::default()),
            rng: Mutex::new(rng),
        })
    }

    /// The validator's public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.key.public
    }

    /// The validator's key hash — what certificates name in their
    /// [`snowflake_core::RevocationPolicy`].
    pub fn validator_hash(&self) -> HashVal {
        self.key.public.hash()
    }

    /// Current statistics.
    pub fn stats(&self) -> ValidatorStats {
        *self.stats.plock()
    }

    /// Is this certificate hash currently revoked?
    pub fn is_revoked(&self, cert_hash: &HashVal) -> bool {
        self.state.plock().revoked.contains(cert_hash)
    }

    /// Registers a scrape-time callback exposing [`ValidatorStats`]
    /// under `sf_validator_*` — the same counters
    /// [`stats`](Self::stats) reads (collector id `"validator"`).
    pub fn register_metrics(self: &Arc<Self>, registry: &snowflake_metrics::Registry) {
        use snowflake_metrics::Sample;
        registry.set_help(
            "sf_validator_revocations_total",
            "Certificates revoked by this validator authority",
        );
        let svc = Arc::downgrade(self);
        registry.register_collector(
            "validator",
            Arc::new(move |out: &mut Vec<Sample>| {
                let Some(svc) = svc.upgrade() else { return };
                let s = svc.stats();
                out.push(Sample::counter("sf_validator_revocations_total", &[], s.revocations));
                out.push(Sample::counter("sf_validator_crls_issued_total", &[], s.crls_issued));
                out.push(Sample::counter(
                    "sf_validator_revalidations_total",
                    &[],
                    s.revalidations,
                ));
                out.push(Sample::counter(
                    "sf_validator_deltas_pushed_total",
                    &[],
                    s.deltas_pushed,
                ));
                out.push(Sample::counter(
                    "sf_validator_subscribers_dropped_total",
                    &[],
                    s.subscribers_dropped,
                ));
            }),
        );
    }

    /// Issues (and caches) a CRL for the current state, bumping the serial.
    ///
    /// With a durable store the new serial is persisted **before** the
    /// signature is made: a crash between the two burns a serial number,
    /// never reuses one.  A store write failure panics — this validator
    /// *is* the revocation authority, and signing a CRL whose serial
    /// might repeat after a restart would let a stale list outrank a
    /// newer one; refusing to sign is the fail-closed outcome.
    fn issue_locked(&self, state: &mut State, now: Time) -> Crl {
        if let Some(store) = &mut state.store {
            store
                .advance(state.serial + 1)
                .expect("validator store unwritable: refusing to sign a CRL");
        }
        state.serial += 1;
        let revoked: Vec<HashVal> = state.revoked.iter().cloned().collect();
        let crl = {
            let mut rng = self.rng.plock();
            Crl::issue_with_serial(
                &self.key,
                state.serial,
                revoked,
                Validity::between(now, now.plus(self.crl_window)),
                &mut **rng,
            )
        };
        state.cached = Some(crl.clone());
        self.stats.plock().crls_issued += 1;
        crl
    }

    /// The current signed CRL, reissued when the cached one is no longer
    /// current (so pull clients always receive a full freshness window).
    pub fn current_crl(&self) -> Crl {
        let now = (self.clock)();
        let mut state = self.state.plock();
        if let Some(crl) = &state.cached {
            // Serve the cached list through the first half of its window;
            // refreshing pullers then always get ≥ half a window of margin.
            let fresh_until = Time(crl.validity.not_before.map_or(0, |t| t.0) + self.crl_window / 2);
            if crl.validity.contains(now) && now <= fresh_until {
                return crl.clone();
            }
        }
        self.issue_locked(&mut state, now)
    }

    /// Revokes a certificate: updates state, issues a fresh CRL, and
    /// broadcasts a signed delta to every subscriber.  Returns the delta
    /// (idempotent: revoking an already-dead certificate re-broadcasts).
    pub fn revoke(&self, cert_hash: HashVal) -> RevocationDelta {
        let now = (self.clock)();
        let delta = {
            let mut state = self.state.plock();
            // Persist the revocation before anything observes it; a
            // write failure panics for the same fail-closed reason as
            // `issue_locked` — a revocation that could silently vanish
            // on restart is worse than a dead validator.
            if let Some(store) = &mut state.store {
                store
                    .record_revoked(&cert_hash)
                    .expect("validator store unwritable: refusing to revoke volatilely");
            }
            state.revoked.insert(cert_hash.clone());
            let crl = self.issue_locked(&mut state, now);
            RevocationDelta {
                newly_revoked: vec![cert_hash],
                crl,
            }
        };
        self.stats.plock().revocations += 1;
        self.broadcast(&delta);
        delta
    }

    /// Mints a one-time revalidation for a live certificate; refuses for a
    /// revoked one.
    pub fn revalidate(&self, cert_hash: &HashVal) -> Result<Revalidation, String> {
        if self.is_revoked(cert_hash) {
            return Err("certificate has been revoked".into());
        }
        let now = (self.clock)();
        let reval = {
            let mut rng = self.rng.plock();
            Revalidation::issue(
                &self.key,
                cert_hash.clone(),
                Validity::between(now, now.plus(self.reval_window)),
                &mut **rng,
            )
        };
        self.stats.plock().revalidations += 1;
        Ok(reval)
    }

    /// Registers a push subscriber and immediately sends it a snapshot
    /// delta (everything currently revoked + the current CRL), so late
    /// subscribers converge without waiting for the next event.
    ///
    /// The subscriber list is locked across snapshot-build, push, and
    /// registration: a revocation racing the subscription is therefore
    /// either inside the snapshot (it updated state before the snapshot
    /// read it) or broadcast to the now-registered sink afterwards —
    /// never lost in between.
    pub fn subscribe(&self, mut sink: Box<dyn PushSink>) {
        let mut sinks = self.subscribers.plock();
        let snapshot = {
            let now = (self.clock)();
            let mut state = self.state.plock();
            let crl = match &state.cached {
                Some(c) if c.validity.contains(now) => c.clone(),
                _ => self.issue_locked(&mut state, now),
            };
            RevocationDelta {
                newly_revoked: state.revoked.iter().cloned().collect(),
                crl,
            }
        };
        if sink.push(&snapshot) {
            self.stats.plock().deltas_pushed += 1;
            sinks.push(sink);
        } else {
            self.stats.plock().subscribers_dropped += 1;
        }
    }

    /// Subscribes via an in-process channel; the caller drains the
    /// receiver (colocated verifiers and tests).
    pub fn subscribe_channel(&self) -> Receiver<RevocationDelta> {
        let (tx, rx) = channel();
        self.subscribe(Box::new(ChannelSink(tx)));
        rx
    }

    /// Subscribes a remote verifier over a framed transport: every delta
    /// is sent as one canonical S-expression frame, written by the
    /// subscriber's dedicated forwarder behind a bounded queue.
    pub fn subscribe_transport(&self, transport: Box<dyn Transport>) {
        self.subscribe(Box::new(TransportSink::new(transport)));
    }

    /// Subscribes a remote verifier's TCP connection through the
    /// connection reactor: the socket parks there and every delta is
    /// written nonblocking, so the subscription holds no thread and no
    /// pool worker.  Wire-compatible with
    /// [`ValidatorService::subscribe_transport`] over TCP.
    pub fn subscribe_reactor(
        &self,
        stream: std::net::TcpStream,
        runtime: &Arc<snowflake_runtime::ServerRuntime>,
    ) -> std::io::Result<()> {
        let sink = ReactorSink::new(stream, runtime)?;
        self.subscribe(Box::new(sink));
        Ok(())
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.plock().len()
    }

    fn broadcast(&self, delta: &RevocationDelta) {
        let mut sinks = self.subscribers.plock();
        let before = sinks.len();
        sinks.retain_mut(|s| s.push(delta));
        let delivered = sinks.len() as u64;
        let dropped = (before - sinks.len()) as u64;
        let mut stats = self.stats.plock();
        stats.deltas_pushed += delivered;
        stats.subscribers_dropped += dropped;
    }
}

/// The validator served as an RMI remote object — `crl` returns the
/// current signed list, `revalidate <cert-hash>` mints a one-time
/// revalidation.  Both artifacts are signed statements, so the object is
/// safe to register *open* (no authorization needed to read public
/// revocation data): `server.register_open(VALIDATOR_OBJECT, obj)`.
pub struct ValidatorObject(pub Arc<ValidatorService>);

impl RemoteObject for ValidatorObject {
    fn issuer(&self) -> Principal {
        Principal::key(self.0.public_key())
    }

    fn invoke(&self, invocation: &Invocation, _caller: &CallerInfo) -> Result<Sexp, RmiFault> {
        match invocation.method.as_str() {
            "crl" => Ok(self.0.current_crl().to_sexp()),
            "revalidate" => {
                let hash_sexp = invocation
                    .args
                    .first()
                    .ok_or_else(|| RmiFault::Application("revalidate needs a cert hash".into()))?;
                let cert_hash = HashVal::from_sexp(hash_sexp)
                    .map_err(|e| RmiFault::Application(format!("bad cert hash: {e}")))?;
                self.0
                    .revalidate(&cert_hash)
                    .map(|r| r.to_sexp())
                    .map_err(RmiFault::Application)
            }
            other => Err(RmiFault::NoSuchMethod(other.into())),
        }
    }
}

/// Reads one pushed delta frame from a transport (the verifier side of
/// [`ValidatorService::subscribe_transport`]).
pub fn read_delta(transport: &mut dyn Transport) -> std::io::Result<RevocationDelta> {
    let frame = transport.recv()?;
    let sexp = Sexp::parse(&frame)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    RevocationDelta::from_sexp(&sexp)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::{DetRng, Group};

    fn fixed_clock() -> Time {
        Time(1_000)
    }

    fn validator(seed: &str) -> Arc<ValidatorService> {
        let mut kr = DetRng::new(seed.as_bytes());
        let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
        let mut sr = DetRng::new(b"svc-rng");
        ValidatorService::with_clock(key, fixed_clock, Box::new(move |b| sr.fill(b)))
    }

    #[test]
    fn crl_serials_increase_and_cache_serves() {
        let v = validator("serial");
        let c1 = v.current_crl();
        let c2 = v.current_crl();
        assert_eq!(c1, c2, "cached list served while fresh");
        let delta = v.revoke(HashVal::of(b"dead"));
        assert!(delta.crl.serial > c1.serial);
        assert!(delta.crl.revokes(&HashVal::of(b"dead")));
        assert!(v.current_crl().revokes(&HashVal::of(b"dead")));
        assert!(v
            .current_crl()
            .check(&v.validator_hash(), fixed_clock())
            .is_ok());
    }

    #[test]
    fn revalidation_refused_for_revoked() {
        let v = validator("reval");
        let cert = HashVal::of(b"cert");
        let r = v.revalidate(&cert).unwrap();
        assert!(r.check(&v.validator_hash(), &cert, fixed_clock()).is_ok());
        v.revoke(cert.clone());
        assert!(v.revalidate(&cert).is_err());
    }

    #[test]
    fn channel_subscription_gets_snapshot_and_events() {
        let v = validator("subs");
        v.revoke(HashVal::of(b"already-dead"));
        let rx = v.subscribe_channel();
        // Snapshot delta covers pre-subscription revocations.
        let snapshot = rx.try_recv().unwrap();
        assert_eq!(snapshot.newly_revoked, vec![HashVal::of(b"already-dead")]);
        // Live event arrives as its own delta.
        v.revoke(HashVal::of(b"newly-dead"));
        let event = rx.try_recv().unwrap();
        assert_eq!(event.newly_revoked, vec![HashVal::of(b"newly-dead")]);
        assert!(event.crl.revokes(&HashVal::of(b"already-dead")));
        assert!(event.crl.serial > snapshot.crl.serial);
        // Dropping the receiver unsubscribes on the next push.
        drop(rx);
        v.revoke(HashVal::of(b"third"));
        assert_eq!(v.subscriber_count(), 0);
    }

    #[test]
    fn transport_subscription_frames_deltas() {
        use snowflake_channel::PipeTransport;
        let v = validator("transport");
        let (server_end, mut client_end) = PipeTransport::pair();
        v.subscribe_transport(Box::new(server_end));
        // Snapshot frame first.
        let snapshot = read_delta(&mut client_end).unwrap();
        assert!(snapshot.newly_revoked.is_empty());
        v.revoke(HashVal::of(b"gone"));
        let event = read_delta(&mut client_end).unwrap();
        assert_eq!(event.newly_revoked, vec![HashVal::of(b"gone")]);
        assert!(event.check(&v.validator_hash(), fixed_clock()).is_ok());
    }

    /// A restarted validator resumes its revoked set and its serial
    /// high-water mark from the store: the first CRL signed after the
    /// restart outranks everything signed before the crash.
    #[test]
    fn stored_validator_restart_keeps_revocations_and_serial_monotonic() {
        use crate::persist::ValidatorStore;
        let dir = std::env::temp_dir().join(format!("sf-valsvc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("authority.log");
        let _ = std::fs::remove_file(&path);
        let svc = |store: ValidatorStore| {
            let mut kr = DetRng::new(b"stored");
            let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
            let mut sr = DetRng::new(b"stored-rng");
            ValidatorService::with_store(
                key,
                fixed_clock,
                Box::new(move |b| sr.fill(b)),
                DEFAULT_CRL_WINDOW,
                DEFAULT_REVALIDATION_WINDOW,
                store,
            )
        };
        let pre_crash_serial = {
            let v = svc(ValidatorStore::open(&path).unwrap());
            v.revoke(HashVal::of(b"dead"));
            v.current_crl().serial
        };
        // "Restart": a fresh service over the recovered store.
        let v = svc(ValidatorStore::open(&path).unwrap());
        assert!(v.is_revoked(&HashVal::of(b"dead")), "revocation survived");
        assert!(v.revalidate(&HashVal::of(b"dead")).is_err());
        let crl = v.current_crl();
        assert!(
            crl.serial > pre_crash_serial,
            "post-restart serial {} must outrank pre-crash {}",
            crl.serial,
            pre_crash_serial
        );
        assert!(crl.revokes(&HashVal::of(b"dead")));
    }

    #[test]
    fn rmi_object_serves_crl_and_revalidation() {
        let v = validator("rmi");
        let obj = ValidatorObject(Arc::clone(&v));
        let caller = CallerInfo {
            speaker: Principal::message(b"anyone"),
            channel: snowflake_core::ChannelId {
                kind: "test".into(),
                id: HashVal::of(b"ch"),
            },
        };
        let inv = |method: &str, args: Vec<Sexp>| Invocation {
            object: VALIDATOR_OBJECT.into(),
            method: method.into(),
            args,
            quoting: None,
        };
        let crl = Crl::from_sexp(&obj.invoke(&inv("crl", vec![]), &caller).unwrap()).unwrap();
        assert!(crl.check(&v.validator_hash(), fixed_clock()).is_ok());

        let cert = HashVal::of(b"cert");
        let r = Revalidation::from_sexp(
            &obj.invoke(&inv("revalidate", vec![cert.to_sexp()]), &caller)
                .unwrap(),
        )
        .unwrap();
        assert!(r.check(&v.validator_hash(), &cert, fixed_clock()).is_ok());

        v.revoke(cert.clone());
        assert!(matches!(
            obj.invoke(&inv("revalidate", vec![cert.to_sexp()]), &caller),
            Err(RmiFault::Application(_))
        ));
        assert!(matches!(
            obj.invoke(&inv("nope", vec![]), &caller),
            Err(RmiFault::NoSuchMethod(_))
        ));
    }
}
