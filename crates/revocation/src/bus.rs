//! The revocation bus: fanning push notifications into warm caches.
//!
//! Verification rejecting *new* proofs is only half the freshness story:
//! the concurrency work left several warm paths that never re-verify —
//! prover shortcut edges, established MAC sessions, the servlet's
//! identical-request cache, and the RMI server's proof cache.  Each of
//! those layers records the certificate hashes its entries were built
//! from, and implements [`RevocationBus`] so a freshness agent can evict
//! exactly the entries a revoked certificate poisoned — no flush, no
//! restart.

use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent};
use snowflake_core::{ChainMemo, Time};
use snowflake_crypto::HashVal;
use snowflake_http::{MacSessionStore, ProtectedServlet, SnowflakeService};
use snowflake_prover::Prover;
use snowflake_rmi::RmiServer;
use std::sync::Arc;

/// A warm cache that can evict everything built from one certificate.
pub trait RevocationBus: Send + Sync {
    /// Evicts all state depending on the certificate with this hash and
    /// returns how many entries were dropped.
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize;
}

impl RevocationBus for Prover {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        self.invalidate_cert(cert_hash)
    }
}

impl RevocationBus for ChainMemo {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        self.evict_cert(cert_hash)
    }
}

impl RevocationBus for MacSessionStore {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        self.evict_by_cert(cert_hash)
    }
}

impl RevocationBus for RmiServer {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        self.invalidate_cert(cert_hash)
    }
}

impl<S: SnowflakeService> RevocationBus for ProtectedServlet<S> {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        self.invalidate_cert(cert_hash)
    }
}

// A shared handle to a bus is a bus, so subsystems that live behind an
// `Arc` (the prover, a topic broker) drop straight into a `FanoutBus`
// without a wrapper type.
impl<T: RevocationBus + ?Sized> RevocationBus for Arc<T> {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        (**self).certificate_revoked(cert_hash)
    }
}

/// A bus broadcasting to several others (useful when one subscription
/// must reach caches owned by different subsystems).
pub struct FanoutBus(pub Vec<Arc<dyn RevocationBus>>);

impl RevocationBus for FanoutBus {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        self.0
            .iter()
            .map(|b| b.certificate_revoked(cert_hash))
            .sum()
    }
}

/// A bus that makes revocations first-class audit events: every push it
/// forwards is recorded as a [`Decision::Revoke`] naming the dead
/// certificate and how many warm-cache entries died with it, *after* the
/// inner bus has evicted them (the audit record describes completed
/// invalidation, not intent).
pub struct AuditedBus {
    inner: Arc<dyn RevocationBus>,
    emitter: Arc<dyn AuditEmitter>,
    clock: fn() -> Time,
}

impl AuditedBus {
    /// Wraps `inner`, reporting through `emitter` with wall-clock time.
    pub fn new(inner: Arc<dyn RevocationBus>, emitter: Arc<dyn AuditEmitter>) -> AuditedBus {
        Self::with_clock(inner, emitter, Time::now)
    }

    /// Wraps with an injected clock (tests, benches).
    pub fn with_clock(
        inner: Arc<dyn RevocationBus>,
        emitter: Arc<dyn AuditEmitter>,
        clock: fn() -> Time,
    ) -> AuditedBus {
        AuditedBus {
            inner,
            emitter,
            clock,
        }
    }
}

impl RevocationBus for AuditedBus {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        let evicted = self.inner.certificate_revoked(cert_hash);
        self.emitter.emit(
            DecisionEvent::new(
                (self.clock)(),
                "revocation",
                Decision::Revoke,
                &format!("cert:{}", cert_hash.short_hex()),
                "invalidate",
                &format!("evicted {evicted} warm-cache entries"),
            )
            .with_certs(vec![cert_hash.clone()]),
        );
        evicted
    }
}
