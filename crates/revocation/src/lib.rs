//! Live revocation for Snowflake (paper §4.1, made distributed).
//!
//! `snowflake-core` expresses SPKI revocation — CRLs and one-time
//! revalidations — as signed statements in the logic, but statements do
//! not distribute themselves.  This crate is the subsystem that moves
//! them:
//!
//! * [`ValidatorService`] — the authority side.  Owns revocation state for
//!   one validator key, serves signed [`snowflake_core::Crl`]s and
//!   [`snowflake_core::Revalidation`]s over direct calls, RMI
//!   ([`ValidatorObject`]), or framed channel transports, accepts push
//!   subscriptions, and broadcasts a signed [`RevocationDelta`] to every
//!   subscriber the moment a certificate is revoked.
//! * [`FreshnessAgent`] — the verifier side.  Caches artifacts keyed by
//!   validator, refreshes each CRL before its validity window closes
//!   (with per-agent jitter so a fleet does not stampede one validator),
//!   and implements [`snowflake_core::RevocationSource`] so proof
//!   checking consults the cache without ever blocking on a fetch.
//! * [`RevocationBus`] — the cache-invalidation fabric.  The warm paths
//!   that never re-verify (prover shortcut edges, MAC sessions, verified
//!   identical-request entries, RMI proof caches) each record the
//!   certificate hashes they were built from; a push delta evicts exactly
//!   the poisoned entries, so one revocation takes effect everywhere
//!   without a flush or a restart.
//!
//! The lifecycle, end to end: a certificate opts in by naming a validator
//! in its [`snowflake_core::RevocationPolicy`]; verifiers attach a
//! freshness agent to their verify contexts and subscribe it (plus their
//! caches' buses) to the validator; when the validator revokes, the push
//! lands, the caches evict, and the very next request — over any boundary
//! — is denied.

#![deny(missing_docs)]

mod bus;
mod delta;
mod freshness;
mod persist;
mod service;

pub use bus::{AuditedBus, FanoutBus, RevocationBus};
pub use delta::RevocationDelta;
pub use persist::ValidatorStore;
pub use freshness::{
    spawn_push_listener, AgentSink, FreshnessAgent, FreshnessStats, InProcessValidator,
    RmiValidatorClient, ValidatorClient, DEFAULT_MAX_JITTER, DEFAULT_REFRESH_LEAD,
};
pub use service::{
    read_delta, ChannelSink, PushSink, ReactorSink, TransportSink, ValidatorObject, ValidatorService,
    ValidatorStats, DEFAULT_CRL_WINDOW, DEFAULT_REVALIDATION_WINDOW, TRANSPORT_SINK_QUEUE,
    VALIDATOR_OBJECT,
};
