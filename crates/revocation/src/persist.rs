//! Durable validator state: the CRL serial high-water mark and the
//! revoked set.
//!
//! The serial is a **monotonicity promise**: verifiers treat a CRL with a
//! higher serial as strictly newer, so a validator that restarted with an
//! amnesiac serial counter could sign a "fresh" list that omits a
//! revocation an older, higher-serialed list carried — and every cache
//! would prefer the stale one.  [`ValidatorStore`] therefore persists the
//! serial **before** it is used in a signature (write-ahead), and
//! [`ValidatorStore::advance`] refuses any serial at or below the
//! persisted high-water mark: a restarted validator can never re-sign the
//! past.
//!
//! The store is a line-per-record append-only file of transport-encoded
//! S-expressions — `(crl-serial n)` and `(cert-revoked (hash …))` — with
//! the same recovery contract as the reldb WAL: a torn final line (the
//! write the crash interrupted) is truncated on open; a hole anywhere
//! else is corruption and fails the open.

use snowflake_core::durable::{CrashPoint, Durable, RecoveryReport};
use snowflake_crypto::HashVal;
use snowflake_sexpr::Sexp;
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Append-only persistence for one validator's revocation authority.
pub struct ValidatorStore {
    path: PathBuf,
    file: File,
    serial: u64,
    revoked: BTreeSet<HashVal>,
    recovery: RecoveryReport,
    crash: CrashPoint,
}

impl ValidatorStore {
    /// Opens (creating or recovering) the store at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<ValidatorStore, String> {
        Self::with_crash_point(path, CrashPoint::inert())
    }

    /// [`ValidatorStore::open`] with a fault-injection hook threaded
    /// through every durable write (the crash harness).
    pub fn with_crash_point(
        path: impl Into<PathBuf>,
        crash: CrashPoint,
    ) -> Result<ValidatorStore, String> {
        let path: PathBuf = path.into();
        let data = match std::fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };

        let mut serial = 0u64;
        let mut revoked = BTreeSet::new();
        let mut recovery = RecoveryReport::default();
        let mut clean = 0u64;
        let mut pos = 0usize;
        while let Some(nl) = data[pos..].iter().position(|&b| b == b'\n') {
            let line = &data[pos..pos + nl];
            pos += nl + 1;
            if line.iter().all(u8::is_ascii_whitespace) {
                clean = pos as u64;
                continue;
            }
            // A bad line starts the torn tail; it and everything after it
            // is the interrupted final write and gets truncated.  (Any
            // *good* line after it never existed: appends are sequential
            // and fsynced, so the stream is damaged only at its end.)
            let Ok(record) = Sexp::parse(line) else { break };
            match record.tag_name() {
                Some("crl-serial") => {
                    let Some(n) = record
                        .tag_body()
                        .and_then(|b| b.first())
                        .and_then(Sexp::as_u64)
                    else {
                        break;
                    };
                    if n <= serial && serial != 0 {
                        return Err(format!(
                            "{}: serial went backwards ({serial} then {n})",
                            path.display()
                        ));
                    }
                    serial = n;
                }
                Some("cert-revoked") => {
                    let Some(Ok(h)) = record
                        .tag_body()
                        .and_then(|b| b.first())
                        .map(HashVal::from_sexp)
                    else {
                        break;
                    };
                    revoked.insert(h);
                }
                _ => break,
            }
            recovery.replayed += 1;
            clean = pos as u64;
        }
        recovery.truncated_bytes = data.len() as u64 - clean;

        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        if recovery.truncated_bytes > 0 {
            file.set_len(clean)
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("truncate {}: {e}", path.display()))?;
        }
        file.seek(SeekFrom::Start(clean))
            .map_err(|e| format!("seek {}: {e}", path.display()))?;

        Ok(ValidatorStore {
            path,
            file,
            serial,
            revoked,
            recovery,
            crash,
        })
    }

    /// The highest CRL serial ever persisted (0 before the first).
    pub fn serial_high_water(&self) -> u64 {
        self.serial
    }

    /// The persisted revoked set.
    pub fn revoked(&self) -> &BTreeSet<HashVal> {
        &self.revoked
    }

    /// Crash-guarded durable line write: bytes, then fsync.
    fn write_line(&mut self, record: Sexp) -> Result<(), String> {
        let mut line = record.transport().into_bytes();
        line.push(b'\n');
        self.crash
            .write_all(&mut self.file, &line)
            .and_then(|()| self.crash.check())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("append {}: {e}", self.path.display()))
    }

    /// Persists `serial` as the new high-water mark — **before** anything
    /// is signed with it.  Refuses a serial at or below the mark: that is
    /// the monotonicity the verifiers' "higher serial wins" rule depends
    /// on.
    pub fn advance(&mut self, serial: u64) -> Result<(), String> {
        if serial <= self.serial {
            return Err(format!(
                "serial {serial} not above persisted high-water mark {}",
                self.serial
            ));
        }
        self.write_line(Sexp::tagged("crl-serial", vec![Sexp::int(serial)]))?;
        self.serial = serial;
        Ok(())
    }

    /// Persists one revoked certificate hash (idempotent).
    pub fn record_revoked(&mut self, cert_hash: &HashVal) -> Result<(), String> {
        if self.revoked.contains(cert_hash) {
            return Ok(());
        }
        self.write_line(Sexp::tagged("cert-revoked", vec![cert_hash.to_sexp()]))?;
        self.revoked.insert(cert_hash.clone());
        Ok(())
    }
}

impl Durable for ValidatorStore {
    fn storage(&self) -> &Path {
        &self.path
    }

    fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    fn sync(&mut self) -> Result<(), String> {
        self.file.sync_data().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sf-valstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn state_survives_reopen() {
        let path = store_path("reopen");
        {
            let mut s = ValidatorStore::open(&path).unwrap();
            s.advance(1).unwrap();
            s.record_revoked(&HashVal::of(b"dead")).unwrap();
            s.advance(2).unwrap();
        }
        let s = ValidatorStore::open(&path).unwrap();
        assert_eq!(s.serial_high_water(), 2);
        assert!(s.revoked().contains(&HashVal::of(b"dead")));
        assert_eq!(s.recovery().replayed, 3);
    }

    #[test]
    fn advance_refuses_non_monotonic_serials() {
        let path = store_path("monotonic");
        let mut s = ValidatorStore::open(&path).unwrap();
        s.advance(5).unwrap();
        assert!(s.advance(5).is_err());
        assert!(s.advance(4).is_err());
        s.advance(6).unwrap();
        // …and the refusal survives a restart.
        drop(s);
        let mut s = ValidatorStore::open(&path).unwrap();
        assert!(s.advance(6).is_err());
        s.advance(7).unwrap();
    }

    #[test]
    fn crash_at_every_byte_of_an_advance_is_pre_or_post() {
        // The exact line a (crl-serial 3) append writes.
        let line_len = {
            let mut l = Sexp::tagged("crl-serial", vec![Sexp::int(3)])
                .transport()
                .into_bytes();
            l.push(b'\n');
            l.len()
        };
        for cut in 0..=line_len {
            let path = store_path(&format!("crash-{cut}"));
            {
                let mut s = ValidatorStore::open(&path).unwrap();
                s.advance(1).unwrap();
                s.advance(2).unwrap();
            }
            {
                let mut s = ValidatorStore::with_crash_point(
                    &path,
                    CrashPoint::after_bytes(cut as u64),
                )
                .unwrap();
                let r = s.advance(3);
                assert_eq!(r.is_err(), cut < line_len, "cut {cut}");
            }
            let s = ValidatorStore::open(&path).unwrap();
            let expected = if cut < line_len { 2 } else { 3 };
            assert_eq!(s.serial_high_water(), expected, "cut {cut}");
            // Either way the next signable serial is above everything
            // that could have been signed before the crash.
            assert!(s.serial_high_water() >= 2);
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_durable() {
        let path = store_path("torn");
        {
            let mut s = ValidatorStore::open(&path).unwrap();
            s.advance(1).unwrap();
            s.record_revoked(&HashVal::of(b"x")).unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        let s = ValidatorStore::open(&path).unwrap();
        assert_eq!(s.serial_high_water(), 1);
        assert!(s.revoked().is_empty(), "torn revocation line dropped");
        assert!(s.recovery().truncated_bytes > 0);
        let s = ValidatorStore::open(&path).unwrap();
        assert_eq!(s.recovery().truncated_bytes, 0);
    }
}
