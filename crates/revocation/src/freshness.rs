//! The verifier-side freshness agent.
//!
//! A [`FreshnessAgent`] keeps one verifier's revocation knowledge warm: it
//! caches CRLs and revalidations keyed by validator, refreshes each CRL
//! *before* its validity window closes (with per-agent jitter so a fleet
//! of verifiers does not stampede one validator at the same instant), and
//! implements [`RevocationSource`] so a [`VerifyCtx`] can consult the
//! cache during proof checking without ever blocking on a network fetch.
//!
//! The agent is also the landing point for push: [`FreshnessAgent::apply_delta`]
//! installs a pushed CRL immediately and fans the newly revoked
//! certificate hashes into every registered [`RevocationBus`] — targeted
//! prover shortcut invalidation, MAC session eviction, RMI proof-cache
//! eviction — closing the gap between "the validator knows" and "the warm
//! caches know".

use crate::bus::RevocationBus;
use crate::delta::RevocationDelta;
use crate::service::{PushSink, ValidatorService};
use snowflake_channel::Transport;
use snowflake_core::sync::LockExt;
use snowflake_core::{Crl, Revalidation, RevocationSource, Time, VerifyCtx};
use snowflake_crypto::{verify_batch, BatchEntry, BatchOutcome, HashVal};
use snowflake_rmi::{RmiClient, RmiError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, Weak};

/// Default refresh lead (seconds): how long before a CRL's window closes
/// the agent tries to fetch a successor.
pub const DEFAULT_REFRESH_LEAD: u64 = 30;

/// Default maximum per-agent refresh jitter (seconds).
pub const DEFAULT_MAX_JITTER: u64 = 10;

/// A pull connection to one validator.
///
/// Implementations may block (they run from the agent's refresh path, not
/// the verify hot path).
pub trait ValidatorClient: Send + Sync {
    /// Fetches the validator's current signed CRL.
    fn fetch_crl(&self) -> Result<Crl, String>;

    /// Requests a one-time revalidation of the certificate with this hash.
    fn fetch_revalidation(&self, cert_hash: &HashVal) -> Result<Revalidation, String>;
}

/// A colocated validator consulted by direct call.
pub struct InProcessValidator(pub Arc<ValidatorService>);

impl ValidatorClient for InProcessValidator {
    fn fetch_crl(&self) -> Result<Crl, String> {
        Ok(self.0.current_crl())
    }

    fn fetch_revalidation(&self, cert_hash: &HashVal) -> Result<Revalidation, String> {
        self.0.revalidate(cert_hash)
    }
}

/// A validator reached over RMI (see [`crate::service::ValidatorObject`]).
pub struct RmiValidatorClient {
    rmi: Mutex<RmiClient>,
    object: String,
}

impl RmiValidatorClient {
    /// Wraps an RMI client; `object` is the validator's registry name
    /// (conventionally [`crate::service::VALIDATOR_OBJECT`]).
    pub fn new(rmi: RmiClient, object: &str) -> RmiValidatorClient {
        RmiValidatorClient {
            rmi: Mutex::new(rmi),
            object: object.to_string(),
        }
    }

    fn invoke(&self, method: &str, args: Vec<snowflake_sexpr::Sexp>) -> Result<snowflake_sexpr::Sexp, String> {
        self.rmi
            .plock()
            .invoke(&self.object, method, args)
            .map_err(|e: RmiError| e.to_string())
    }
}

impl ValidatorClient for RmiValidatorClient {
    fn fetch_crl(&self) -> Result<Crl, String> {
        let sexp = self.invoke("crl", vec![])?;
        Crl::from_sexp(&sexp).map_err(|e| format!("bad CRL: {e}"))
    }

    fn fetch_revalidation(&self, cert_hash: &HashVal) -> Result<Revalidation, String> {
        let sexp = self.invoke("revalidate", vec![cert_hash.to_sexp()])?;
        Revalidation::from_sexp(&sexp).map_err(|e| format!("bad revalidation: {e}"))
    }
}

/// Counters exposed for tests and the freshness benchmarks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FreshnessStats {
    /// Successful CRL refreshes (pull).
    pub refreshes: u64,
    /// Failed refresh attempts.
    pub refresh_errors: u64,
    /// Push deltas applied.
    pub deltas_applied: u64,
    /// Push deltas rejected (bad signature, unknown validator, stale
    /// serial).
    pub deltas_rejected: u64,
    /// Warm-cache entries invalidated through the buses.
    pub bus_invalidations: u64,
    /// Revalidations fetched and cached.
    pub revalidations: u64,
}

struct ValidatorEntry {
    client: Arc<dyn ValidatorClient>,
    crl: Option<Arc<Crl>>,
}

struct AgentState {
    validators: HashMap<HashVal, ValidatorEntry>,
    /// Cached revalidations keyed by certificate hash.
    revalidations: HashMap<HashVal, Revalidation>,
}

/// Caches revocation artifacts for one verifier and keeps them fresh.
pub struct FreshnessAgent {
    clock: fn() -> Time,
    lead: u64,
    max_jitter: u64,
    jitter_seed: u64,
    state: Mutex<AgentState>,
    buses: Mutex<Vec<Arc<dyn RevocationBus>>>,
    stats: Mutex<FreshnessStats>,
}

impl FreshnessAgent {
    /// Creates an agent with default pacing and a per-process jitter seed
    /// drawn from OS entropy (so a fleet of verifiers spreads its refresh
    /// instants).
    pub fn new(clock: fn() -> Time) -> Arc<FreshnessAgent> {
        let mut seed_bytes = [0u8; 8];
        snowflake_crypto::rand_bytes(&mut seed_bytes);
        Self::with_pacing(
            clock,
            DEFAULT_REFRESH_LEAD,
            DEFAULT_MAX_JITTER,
            u64::from_be_bytes(seed_bytes),
        )
    }

    /// Creates an agent with explicit refresh lead, maximum jitter, and
    /// jitter seed (tests and benches inject these for determinism).
    pub fn with_pacing(
        clock: fn() -> Time,
        lead: u64,
        max_jitter: u64,
        jitter_seed: u64,
    ) -> Arc<FreshnessAgent> {
        Arc::new(FreshnessAgent {
            clock,
            lead,
            max_jitter,
            jitter_seed,
            state: Mutex::new(AgentState {
                validators: HashMap::new(),
                revalidations: HashMap::new(),
            }),
            buses: Mutex::new(Vec::new()),
            stats: Mutex::new(FreshnessStats::default()),
        })
    }

    /// Current statistics.
    pub fn stats(&self) -> FreshnessStats {
        *self.stats.plock()
    }

    /// Registers a scrape-time callback exposing [`FreshnessStats`]
    /// under `sf_freshness_*` — the same counters
    /// [`stats`](Self::stats) reads (collector id `"freshness"`).
    pub fn register_metrics(self: &Arc<Self>, registry: &snowflake_metrics::Registry) {
        use snowflake_metrics::Sample;
        registry.set_help(
            "sf_freshness_deltas_applied_total",
            "Revocation push deltas applied by the verifier-side freshness agent",
        );
        let agent = Arc::downgrade(self);
        registry.register_collector(
            "freshness",
            Arc::new(move |out: &mut Vec<Sample>| {
                let Some(agent) = agent.upgrade() else { return };
                let s = agent.stats();
                out.push(Sample::counter("sf_freshness_refreshes_total", &[], s.refreshes));
                out.push(Sample::counter(
                    "sf_freshness_refresh_errors_total",
                    &[],
                    s.refresh_errors,
                ));
                out.push(Sample::counter(
                    "sf_freshness_deltas_applied_total",
                    &[],
                    s.deltas_applied,
                ));
                out.push(Sample::counter(
                    "sf_freshness_deltas_rejected_total",
                    &[],
                    s.deltas_rejected,
                ));
                out.push(Sample::counter(
                    "sf_freshness_bus_invalidations_total",
                    &[],
                    s.bus_invalidations,
                ));
                out.push(Sample::counter(
                    "sf_freshness_revalidations_total",
                    &[],
                    s.revalidations,
                ));
            }),
        );
    }

    /// Registers a validator this agent keeps fresh.  No fetch happens
    /// here; call [`FreshnessAgent::refresh_due`] (or apply a push delta)
    /// to load the first CRL.
    pub fn register_validator(&self, validator: HashVal, client: Arc<dyn ValidatorClient>) {
        self.state
            .plock()
            .validators
            .insert(validator, ValidatorEntry { client, crl: None });
    }

    /// Registers a warm-cache invalidation target.  Every newly revoked
    /// certificate in an applied push delta is fanned into each bus.
    pub fn add_bus(&self, bus: Arc<dyn RevocationBus>) {
        self.buses.plock().push(bus);
    }

    /// This agent's deterministic refresh jitter for one validator, in
    /// `[0, max_jitter]`: derived from the agent seed and the validator
    /// hash so each (verifier, validator) pair refreshes at its own
    /// instant instead of the whole fleet stampeding at `not_after -
    /// lead`.
    pub fn jitter_for(&self, validator: &HashVal) -> u64 {
        if self.max_jitter == 0 {
            return 0;
        }
        let mut h = self.jitter_seed ^ 0xcbf2_9ce4_8422_2325;
        for &b in &validator.bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h % (self.max_jitter + 1)
    }

    /// When the cached CRL for `validator` is due for refresh.
    fn deadline(&self, validator: &HashVal, crl: &Crl) -> Time {
        match crl.validity.not_after {
            Some(t) => Time(t.0.saturating_sub(self.lead + self.jitter_for(validator))),
            // Unbounded lists never need refreshing.
            None => Time(u64::MAX),
        }
    }

    /// The earliest instant any registered validator needs a refresh
    /// (`None` when nothing is registered; `Some(now)` or earlier when a
    /// validator has no CRL yet).  Deployment loops sleep until this.
    pub fn next_refresh(&self) -> Option<Time> {
        let state = self.state.plock();
        state
            .validators
            .iter()
            .map(|(v, e)| match &e.crl {
                Some(crl) => self.deadline(v, crl),
                None => Time(0),
            })
            .min()
    }

    /// Refreshes every validator whose CRL is missing or inside its
    /// refresh deadline, returning how many were refreshed.  Fetches run
    /// without holding the agent lock, so verifies proceed concurrently.
    pub fn refresh_due(&self) -> usize {
        let now = (self.clock)();
        let due: Vec<(HashVal, Arc<dyn ValidatorClient>)> = {
            let state = self.state.plock();
            state
                .validators
                .iter()
                .filter(|(v, e)| match &e.crl {
                    Some(crl) => self.deadline(v, crl) <= now,
                    None => true,
                })
                .map(|(v, e)| (v.clone(), Arc::clone(&e.client)))
                .collect()
        };
        let mut refreshed = 0;
        for (validator, client) in due {
            match client.fetch_crl() {
                Ok(crl) => {
                    if self.install_crl(&validator, crl, now) {
                        refreshed += 1;
                        self.stats.plock().refreshes += 1;
                    } else {
                        self.stats.plock().refresh_errors += 1;
                    }
                }
                Err(_) => self.stats.plock().refresh_errors += 1,
            }
        }
        refreshed
    }

    /// Installs a CRL after checking signature, signer identity, currency,
    /// and serial monotonicity.  Returns whether it was accepted.
    fn install_crl(&self, validator: &HashVal, crl: Crl, now: Time) -> bool {
        if crl.check(validator, now).is_err() {
            return false;
        }
        self.install_checked_crl(validator, crl)
    }

    /// Installs a CRL whose signature has already been verified (the
    /// batched delta path checks a whole burst in one multi-exponentiation
    /// first); still enforces serial monotonicity.
    fn install_checked_crl(&self, validator: &HashVal, crl: Crl) -> bool {
        let mut state = self.state.plock();
        let Some(entry) = state.validators.get_mut(validator) else {
            return false;
        };
        if let Some(old) = &entry.crl {
            // Never roll knowledge backwards: the serial is signed.
            if crl.serial < old.serial {
                return false;
            }
        }
        entry.crl = Some(Arc::new(crl));
        true
    }

    /// Fetches and caches a one-time revalidation for `cert_hash` from the
    /// validator it names.  Verifiers facing `Revalidate` policies call
    /// this ahead of verification (it may block; the verify path then
    /// answers from cache).
    pub fn fetch_revalidation(
        &self,
        validator: &HashVal,
        cert_hash: &HashVal,
    ) -> Result<(), String> {
        let client = {
            let state = self.state.plock();
            let entry = state
                .validators
                .get(validator)
                .ok_or("validator not registered")?;
            Arc::clone(&entry.client)
        };
        let reval = client.fetch_revalidation(cert_hash)?;
        let now = (self.clock)();
        reval.check(validator, cert_hash, now)?;
        self.state
            .plock()
            .revalidations
            .insert(cert_hash.clone(), reval);
        self.stats.plock().revalidations += 1;
        Ok(())
    }

    /// Applies one push delta: verifies it against the registered
    /// validator, installs the embedded CRL, and fans the newly revoked
    /// hashes into every bus.  Returns the number of warm-cache entries
    /// invalidated.
    ///
    /// A delta whose CRL is *older* than the installed one (deltas for
    /// concurrent revocations can arrive out of order) does not roll the
    /// CRL back, but its `newly_revoked` hashes still fan into the buses:
    /// the signature was checked, revocation is monotone, and eviction is
    /// idempotent — dropping the fan-out would leave warm caches honoring
    /// a certificate the newer list also revokes.
    pub fn apply_delta(&self, delta: &RevocationDelta) -> Result<usize, String> {
        self.apply_deltas(std::slice::from_ref(delta))
            .pop()
            .expect("one result per delta")
    }

    /// Applies a burst of push deltas, checking every embedded CRL
    /// signature as **one** Schnorr batch (a catch-up replay or fan-in
    /// from several validators pays one multi-exponentiation, not one
    /// full verification per delta).  Structurally bad deltas — wrong
    /// validator, stale window, unregistered signer — are rejected before
    /// the batch; if the batch equation fails, the individual fallback
    /// inside `verify_batch` pinpoints exactly the forged members, so one
    /// bad delta never poisons its honest neighbors.  Returns one result
    /// per delta, in order, each as [`FreshnessAgent::apply_delta`] would.
    pub fn apply_deltas(&self, deltas: &[RevocationDelta]) -> Vec<Result<usize, String>> {
        let now = (self.clock)();
        let mut results: Vec<Option<Result<usize, String>>> = vec![None; deltas.len()];
        // Structural pass: cheap checks first, survivors go to the batch.
        let mut live: Vec<(usize, HashVal)> = Vec::new();
        for (i, delta) in deltas.iter().enumerate() {
            let validator = delta.crl.signer.hash();
            if !self.state.plock().validators.contains_key(&validator) {
                self.stats.plock().deltas_rejected += 1;
                results[i] = Some(Err("delta from unregistered validator".into()));
                continue;
            }
            if let Err(e) = delta.crl.check_unsigned(&validator, now) {
                self.stats.plock().deltas_rejected += 1;
                results[i] = Some(Err(e));
                continue;
            }
            live.push((i, validator));
        }
        // Signature pass: one batch over every surviving CRL.
        let messages: Vec<Vec<u8>> = live
            .iter()
            .map(|&(i, _)| deltas[i].crl.signed_bytes())
            .collect();
        let entries: Vec<BatchEntry<'_>> = live
            .iter()
            .zip(&messages)
            .map(|(&(i, _), m)| BatchEntry {
                key: &deltas[i].crl.signer,
                message: m,
                sig: &deltas[i].crl.signature,
            })
            .collect();
        let forged: std::collections::HashSet<usize> = match verify_batch(&entries) {
            BatchOutcome::AllValid => Default::default(),
            BatchOutcome::Invalid(bad) => bad.into_iter().collect(),
        };
        for (pos, (i, validator)) in live.into_iter().enumerate() {
            if forged.contains(&pos) {
                self.stats.plock().deltas_rejected += 1;
                results[i] = Some(Err("CRL signature invalid".into()));
            } else {
                results[i] = Some(Ok(self.apply_checked_delta(&deltas[i], &validator)));
            }
        }
        results.into_iter().map(|r| r.expect("every delta resolved")).collect()
    }

    /// The post-signature-check tail of delta application: install the
    /// CRL, drop dependent revalidations, fan out to the buses.
    fn apply_checked_delta(&self, delta: &RevocationDelta, validator: &HashVal) -> usize {
        self.install_checked_crl(validator, delta.crl.clone());
        // A revoked certificate's cached revalidations must die with it.
        {
            let mut state = self.state.plock();
            for cert in &delta.newly_revoked {
                state.revalidations.remove(cert);
            }
        }
        // Fan out to the warm caches — outside every agent lock.
        let buses: Vec<Arc<dyn RevocationBus>> = self.buses.plock().clone();
        let mut invalidated = 0;
        for cert in &delta.newly_revoked {
            for bus in &buses {
                invalidated += bus.certificate_revoked(cert);
            }
        }
        let mut stats = self.stats.plock();
        stats.deltas_applied += 1;
        stats.bus_invalidations += invalidated as u64;
        invalidated
    }

    /// Drives this agent's refreshes from a
    /// [`ServerRuntime`](snowflake_runtime::ServerRuntime), so
    /// deployments no longer poll `refresh_due`/`next_refresh` by hand —
    /// the background refresh driver.
    ///
    /// Each scheduler tick is non-blocking: it hands the actual
    /// [`FreshnessAgent::refresh_due`] pass (which performs validator
    /// I/O) to the runtime's worker pool, so a hung validator can stall
    /// at most one pool worker — never the timer thread every scheduled
    /// job shares, and never a shutdown joining it.  At most one refresh
    /// pass is in flight at a time; while one runs (or the pool refuses
    /// one), the driver re-checks at `min_interval`.
    ///
    /// The driver is *self-pacing*: each tick sleeps until
    /// [`FreshnessAgent::next_refresh`] (interpreted as seconds on the
    /// agent's clock), clamped to `[min_interval, max_interval]`.  The
    /// clamp floor keeps a validator outage (refresh perpetually due)
    /// from busy-looping; the ceiling bounds how stale the schedule can
    /// get when a new validator is registered between ticks.
    ///
    /// The driver holds only a [`Weak`] reference: dropping the agent
    /// retires the task on its next tick.  Cancel explicitly via the
    /// returned [`snowflake_runtime::TaskHandle`] to stop it sooner.
    pub fn start_refresh_driver(
        self: &Arc<Self>,
        runtime: &snowflake_runtime::ServerRuntime,
        min_interval: std::time::Duration,
        max_interval: std::time::Duration,
    ) -> snowflake_runtime::TaskHandle {
        let weak = Arc::downgrade(self);
        let pool = Arc::clone(runtime.pool());
        let in_flight = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let min = min_interval.max(std::time::Duration::from_millis(1));
        let max = max_interval.max(min);
        runtime
            .scheduler()
            .schedule_repeating(std::time::Duration::ZERO, move || {
                use std::sync::atomic::Ordering;
                let agent = weak.upgrade()?;
                if !in_flight.swap(true, Ordering::SeqCst) {
                    let job_agent = Arc::clone(&agent);
                    let job_flag = Arc::clone(&in_flight);
                    let submitted = pool.submit(move || {
                        // Clear the flag even if the refresh panics, or
                        // the driver would never refresh again.
                        struct Reset(Arc<std::sync::atomic::AtomicBool>);
                        impl Drop for Reset {
                            fn drop(&mut self) {
                                self.0.store(false, std::sync::atomic::Ordering::SeqCst);
                            }
                        }
                        let _reset = Reset(job_flag);
                        job_agent.refresh_due();
                    });
                    if submitted.is_err() {
                        // Saturated or shutting down: retry at the floor.
                        in_flight.store(false, Ordering::SeqCst);
                        return Some(min);
                    }
                }
                let now = (agent.clock)();
                let delay = match agent.next_refresh() {
                    Some(t) => std::time::Duration::from_secs(t.0.saturating_sub(now.0)),
                    // Nothing registered yet: idle at the ceiling.
                    None => max,
                };
                Some(delay.clamp(min, max))
            })
    }

    /// Copies every cached current artifact into `ctx` (the hand-loading
    /// path; attaching the agent as a [`RevocationSource`] is equivalent
    /// and stays live).
    pub fn populate(&self, ctx: &mut VerifyCtx) {
        let state = self.state.plock();
        for entry in state.validators.values() {
            if let Some(crl) = &entry.crl {
                ctx.install_crl((**crl).clone());
            }
        }
        for reval in state.revalidations.values() {
            ctx.install_revalidation(reval.clone());
        }
    }
}

impl RevocationSource for FreshnessAgent {
    fn crl(&self, validator: &HashVal, now: Time) -> Option<Arc<Crl>> {
        let state = self.state.plock();
        state
            .validators
            .get(validator)
            .and_then(|e| e.crl.as_ref())
            .filter(|c| c.validity.contains(now))
            .map(Arc::clone)
    }

    fn revalidation(&self, cert_hash: &HashVal, now: Time) -> Option<Revalidation> {
        let state = self.state.plock();
        state
            .revalidations
            .get(cert_hash)
            .filter(|r| r.validity.contains(now))
            .cloned()
    }
}

/// A push sink delivering deltas straight into a colocated agent.  Holds a
/// weak reference, so dropping the agent unsubscribes on the next push.
pub struct AgentSink(Weak<FreshnessAgent>);

impl AgentSink {
    /// Wraps an agent.
    pub fn new(agent: &Arc<FreshnessAgent>) -> AgentSink {
        AgentSink(Arc::downgrade(agent))
    }
}

impl PushSink for AgentSink {
    fn push(&mut self, delta: &RevocationDelta) -> bool {
        match self.0.upgrade() {
            // A rejected delta (stale, unknown validator) is not a dead
            // sink; keep the subscription.
            Some(agent) => {
                let _ = agent.apply_delta(delta);
                true
            }
            None => false,
        }
    }
}

/// Spawns a listener applying pushed delta frames from `transport` to
/// `agent` until the transport closes; returns the number of deltas
/// applied.  The remote-verifier side of
/// [`ValidatorService::subscribe_transport`].
///
/// The listener spends its life parked in `recv()`, so it runs on a
/// dedicated [`snowflake_runtime::spawn_thread`] rather than pinning a
/// pool worker forever.
///
/// A malformed frame is skipped, not treated as end-of-stream: one bad
/// frame must not silently kill the push subscription while the
/// validator keeps sending into a void.
pub fn spawn_push_listener(
    agent: Arc<FreshnessAgent>,
    mut transport: Box<dyn Transport>,
) -> std::thread::JoinHandle<usize> {
    snowflake_runtime::spawn_thread("sf-push-listener", move || {
        let mut applied = 0;
        loop {
            match crate::service::read_delta(&mut *transport) {
                Ok(delta) => {
                    if agent.apply_delta(&delta).is_ok() {
                        applied += 1;
                    }
                }
                // Parse failures poison one frame, not the subscription.
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => continue,
                Err(_) => return applied,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::{DetRng, Group, KeyPair};

    fn fixed_clock() -> Time {
        Time(1_000)
    }

    fn validator(seed: &str) -> Arc<ValidatorService> {
        let mut kr = DetRng::new(seed.as_bytes());
        let key = KeyPair::generate(Group::test512(), &mut |b| kr.fill(b));
        let mut sr = DetRng::new(b"agent-test-rng");
        ValidatorService::with_clock(key, fixed_clock, Box::new(move |b| sr.fill(b)))
    }

    #[test]
    fn refresh_loads_and_source_answers() {
        let v = validator("refresh");
        let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
        agent.register_validator(v.validator_hash(), Arc::new(InProcessValidator(Arc::clone(&v))));
        assert_eq!(agent.next_refresh(), Some(Time(0)), "no CRL yet: due now");
        assert_eq!(agent.refresh_due(), 1);
        assert_eq!(agent.refresh_due(), 0, "fresh CRL: nothing due");
        let crl = agent.crl(&v.validator_hash(), fixed_clock()).unwrap();
        assert!(crl.check(&v.validator_hash(), fixed_clock()).is_ok());
        // The source answers nothing for strangers or stale instants.
        assert!(agent.crl(&HashVal::of(b"stranger"), fixed_clock()).is_none());
        assert!(agent.crl(&v.validator_hash(), Time(999_999)).is_none());
    }

    #[test]
    fn jitter_spreads_a_fleet() {
        let v = validator("jitter");
        let vh = v.validator_hash();
        // Ten verifiers with different seeds must not all share one
        // refresh instant.
        let jitters: std::collections::HashSet<u64> = (0..10u64)
            .map(|seed| FreshnessAgent::with_pacing(fixed_clock, 30, 10, seed).jitter_for(&vh))
            .collect();
        assert!(jitters.len() > 1, "jitter must vary by agent seed");
        assert!(jitters.iter().all(|&j| j <= 10));
        // And each agent is deterministic.
        let a = FreshnessAgent::with_pacing(fixed_clock, 30, 10, 7);
        assert_eq!(a.jitter_for(&vh), a.jitter_for(&vh));
    }

    #[test]
    fn push_installs_immediately_and_rejects_stale() {
        let v = validator("push");
        let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
        agent.register_validator(v.validator_hash(), Arc::new(InProcessValidator(Arc::clone(&v))));
        v.subscribe(Box::new(AgentSink::new(&agent)));
        // The subscription snapshot already installed a CRL.
        assert!(agent.crl(&v.validator_hash(), fixed_clock()).is_some());

        let d1 = v.revoke(HashVal::of(b"one"));
        let d2 = v.revoke(HashVal::of(b"two"));
        let crl = agent.crl(&v.validator_hash(), fixed_clock()).unwrap();
        assert_eq!(crl.serial, d2.crl.serial);
        assert!(crl.revokes(&HashVal::of(b"one")));
        assert!(crl.revokes(&HashVal::of(b"two")));

        // A replayed older delta must not roll the CRL back…
        assert!(agent.apply_delta(&d1).is_ok());
        assert_eq!(
            agent.crl(&v.validator_hash(), fixed_clock()).unwrap().serial,
            d2.crl.serial
        );
        // …but its (signed, monotone) newly_revoked still reaches the
        // buses: out-of-order delivery of concurrent revocations must not
        // skip warm-cache eviction.
        struct Recorder(std::sync::Mutex<Vec<HashVal>>);
        impl crate::bus::RevocationBus for Recorder {
            fn certificate_revoked(&self, h: &HashVal) -> usize {
                self.0.lock().unwrap().push(h.clone());
                1
            }
        }
        let recorder = Arc::new(Recorder(std::sync::Mutex::new(Vec::new())));
        agent.add_bus(recorder.clone());
        assert!(agent.apply_delta(&d1).is_ok());
        assert_eq!(*recorder.0.lock().unwrap(), vec![HashVal::of(b"one")]);

        // Deltas from unregistered validators are rejected.
        let stranger = validator("stranger");
        let foreign = stranger.revoke(HashVal::of(b"x"));
        assert!(agent.apply_delta(&foreign).is_err());
        assert_eq!(agent.stats().deltas_rejected, 1);
    }

    #[test]
    fn revalidation_cache_round_trips_and_dies_on_revoke() {
        let v = validator("reval-cache");
        let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
        agent.register_validator(v.validator_hash(), Arc::new(InProcessValidator(Arc::clone(&v))));
        v.subscribe(Box::new(AgentSink::new(&agent)));
        let cert = HashVal::of(b"cert");
        agent.fetch_revalidation(&v.validator_hash(), &cert).unwrap();
        assert!(agent.revalidation(&cert, fixed_clock()).is_some());
        v.revoke(cert.clone());
        assert!(
            agent.revalidation(&cert, fixed_clock()).is_none(),
            "revoking must drop the cached revalidation"
        );
        assert!(agent.fetch_revalidation(&v.validator_hash(), &cert).is_err());
    }

    #[test]
    fn populate_matches_source() {
        let v = validator("populate");
        let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
        agent.register_validator(v.validator_hash(), Arc::new(InProcessValidator(Arc::clone(&v))));
        agent.refresh_due();
        let mut hand_loaded = VerifyCtx::at(fixed_clock());
        agent.populate(&mut hand_loaded);
        // Installed map and source return the same CRL.
        let from_source = agent.crl(&v.validator_hash(), fixed_clock()).unwrap();
        let sourced_ctx =
            VerifyCtx::at(fixed_clock()).with_revocation_source(Arc::clone(&agent) as _);
        // Both contexts exist; equivalence over certificates is covered by
        // the property test in tests/freshness_props.rs.
        drop((hand_loaded, sourced_ctx, from_source));
    }
}
