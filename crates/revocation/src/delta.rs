//! The push-notification wire form: a signed revocation delta.
//!
//! When a certificate is revoked, the validator broadcasts one frame to
//! every subscriber: the hashes that just became invalid (so warm caches
//! can evict *exactly* the dependent state) together with the freshly
//! issued CRL (so verifiers can start rejecting new proofs immediately,
//! without a round trip back to the validator).  Authenticity rides on the
//! CRL's signature — the delta adds no trust of its own, and a forged
//! `newly` list can at worst evict caches that honest re-verification
//! would repopulate.

use snowflake_core::{Crl, Time};
use snowflake_crypto::HashVal;
use snowflake_sexpr::{ParseError, Sexp};

/// One push notification: what was just revoked, plus the current CRL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationDelta {
    /// Certificate hashes revoked by the event this delta announces.  On a
    /// new subscription the validator sends a *snapshot* delta listing
    /// everything currently revoked, so late subscribers converge.
    pub newly_revoked: Vec<HashVal>,
    /// The full signed list as of this event (its `serial` orders deltas;
    /// verifiers drop any delta older than what they already hold).
    pub crl: Crl,
}

impl RevocationDelta {
    /// Checks the embedded CRL against the expected validator at `now`.
    pub fn check(&self, expected_validator: &HashVal, now: Time) -> Result<(), String> {
        self.crl.check(expected_validator, now)
    }

    /// Serializes to `(revocation-delta (newly <hash>…) <crl-signed …>)`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "revocation-delta",
            vec![
                Sexp::tagged(
                    "newly",
                    self.newly_revoked.iter().map(HashVal::to_sexp).collect(),
                ),
                self.crl.to_sexp(),
            ],
        )
    }

    /// Parses the form produced by [`RevocationDelta::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<RevocationDelta, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("revocation-delta") {
            return Err(bad("expected (revocation-delta …)"));
        }
        let body = e.tag_body().ok_or_else(|| bad("revocation-delta body"))?;
        if body.len() != 2 {
            return Err(bad("revocation-delta takes newly + crl"));
        }
        let newly = body[0]
            .tag_body()
            .filter(|_| body[0].tag_name() == Some("newly"))
            .ok_or_else(|| bad("expected (newly …)"))?;
        let newly_revoked: Result<Vec<HashVal>, ParseError> =
            newly.iter().map(HashVal::from_sexp).collect();
        Ok(RevocationDelta {
            newly_revoked: newly_revoked?,
            crl: Crl::from_sexp(&body[1])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_core::Validity;
    use snowflake_crypto::{DetRng, Group, KeyPair};

    #[test]
    fn delta_sexp_roundtrip() {
        let mut r = DetRng::new(b"delta");
        let mut rng = move |b: &mut [u8]| r.fill(b);
        let validator = KeyPair::generate(Group::test512(), &mut rng);
        let bad = HashVal::of(b"bad cert");
        let delta = RevocationDelta {
            newly_revoked: vec![bad.clone()],
            crl: Crl::issue_with_serial(
                &validator,
                3,
                vec![bad],
                Validity::between(Time(10), Time(100)),
                &mut rng,
            ),
        };
        let back = RevocationDelta::from_sexp(&delta.to_sexp()).unwrap();
        assert_eq!(back, delta);
        assert!(back.check(&validator.public.hash(), Time(50)).is_ok());
        assert!(back.check(&validator.public.hash(), Time(500)).is_err());
        // And through the transport (frame) encoding.
        let framed = delta.to_sexp().canonical();
        let back = RevocationDelta::from_sexp(&Sexp::parse(&framed).unwrap()).unwrap();
        assert_eq!(back, delta);
    }
}
