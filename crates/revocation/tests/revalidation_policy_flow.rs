//! The **revalidation** revocation policy, end to end across the
//! webserver boundary: a delegation whose certificate demands a fresh
//! one-time revalidation is honored over real HTTP (proxy → challenge →
//! signed request → servlet) only while the validator still revalidates
//! it.  Revoking mid-session makes the freshness agent drop the cached
//! revalidation and refuse to fetch a new one, so the very next request
//! is denied — with no restart and no effect on other users.
//!
//! This is the revalidate-flavored sibling of the CRL flows in
//! `revoke_mid_session.rs`; the webserver is served from the bounded
//! runtime pool, the production accept path.

use snowflake_apps::vfs::Vfs;
use snowflake_apps::webserver::ProtectedWebService;
use snowflake_core::{
    Certificate, Delegation, Principal, Proof, RevocationPolicy, Time, Validity,
};
use snowflake_crypto::{DetRng, Group, HashVal, KeyPair};
use snowflake_http::client::ProxyError;
use snowflake_http::{
    bounded_duplex, HttpClient, HttpRequest, HttpServer, MacSessionStore, SnowflakeProxy,
    DEFAULT_STREAM_CAPACITY,
};
use snowflake_prover::Prover;
use snowflake_revocation::{AgentSink, FreshnessAgent, InProcessValidator, ValidatorService};
use snowflake_runtime::{PoolConfig, ServerRuntime};
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> Box<dyn FnMut(&mut [u8]) + Send> {
    let mut r = DetRng::new(seed.as_bytes());
    Box::new(move |b: &mut [u8]| r.fill(b))
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

/// Issues `subject ⇒ issuer_key` under a **Revalidate** policy naming the
/// validator, and returns (cert hash, prover holding the chain).
fn revalidated_grant(
    issuer_key: &KeyPair,
    subject: &KeyPair,
    tag: snowflake_core::Tag,
    validator: &ValidatorService,
    seed: &str,
) -> (HashVal, Arc<Prover>) {
    let mut rng = DetRng::new(seed.as_bytes());
    let cert = Certificate::issue_with_revocation(
        issuer_key,
        Delegation {
            subject: Principal::key(&subject.public),
            issuer: Principal::key(&issuer_key.public),
            tag,
            validity: Validity::always(),
            delegable: true,
        },
        Some(RevocationPolicy::Revalidate {
            validator: validator.validator_hash(),
        }),
        &mut |b| rng.fill(b),
    );
    let hash = cert.hash();
    let prover = Arc::new(Prover::with_rng(det(&format!("{seed}-prover"))));
    prover.add_proof(Proof::signed_cert(cert));
    prover.add_key(subject.clone());
    (hash, prover)
}

#[test]
fn revalidation_policy_revoke_mid_session_over_http() {
    let owner = kp("reval-owner");
    let issuer = Principal::key(&owner.public);
    let validator = ValidatorService::with_clock(kp("reval-validator"), fixed_clock, det("v-rng"));
    let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
    agent.register_validator(
        validator.validator_hash(),
        Arc::new(InProcessValidator(Arc::clone(&validator))),
    );
    validator.subscribe(Box::new(AgentSink::new(&agent)));

    // The protected web app, mounted and served from the runtime pool.
    let vfs = Arc::new(Vfs::new());
    vfs.write("/docs/a.html", b"<p>a</p>".to_vec());
    let service = ProtectedWebService::new(issuer.clone(), "files", vfs);
    let subtree = service.subtree_tag("/docs/");
    let http = HttpServer::new();
    let servlet = service.mount(
        &http,
        "/docs",
        Arc::new(MacSessionStore::new()),
        fixed_clock,
        det("reval-servlet"),
    );
    servlet.set_revocation_source(agent.clone());
    agent.add_bus(servlet.clone());

    let runtime = ServerRuntime::new(PoolConfig::new("reval-web", 2, 4));
    let connect = |label: &str| {
        let (client_stream, mut server_stream) = bounded_duplex(DEFAULT_STREAM_CAPACITY);
        let h = Arc::clone(&http);
        runtime
            .pool()
            .submit(move || {
                let _ = h.serve_stream(&mut server_stream);
            })
            .unwrap_or_else(|e| panic!("pool admits connection {label}: {e}"));
        HttpClient::new(Box::new(client_stream))
    };

    // Alice and Bob each hold a revalidate-policy delegation.
    let (alice_cert, alice_prover) = revalidated_grant(
        &owner,
        &kp("reval-alice"),
        subtree.clone(),
        &validator,
        "reval-grant-alice",
    );
    let (bob_cert, bob_prover) = revalidated_grant(
        &owner,
        &kp("reval-bob"),
        subtree.clone(),
        &validator,
        "reval-grant-bob",
    );
    let alice_proxy = SnowflakeProxy::with_clock(alice_prover, fixed_clock, det("alice-proxy"));
    let bob_proxy = SnowflakeProxy::with_clock(bob_prover, fixed_clock, det("bob-proxy"));
    let mut alice = connect("alice");
    let mut bob = connect("bob");

    // Distinct users' requests must hash apart (the request hash excludes
    // only the Authorization header — same discipline as the CRL flows),
    // or one user's verified-request entry would answer for the other.
    let get = |user: &str| {
        let mut req = HttpRequest::get("/docs/a.html");
        req.set_header("X-User", user);
        req
    };

    // 1. Without a revalidation in the agent's cache the chain cannot
    //    verify: the policy demands a fresh artifact, not just "absent
    //    from a CRL".
    match alice_proxy.execute(&mut alice, get("alice")) {
        Err(ProxyError::Rejected(msg)) => {
            assert!(msg.contains("revalidation"), "unexpected rejection: {msg}")
        }
        other => panic!("expected rejection without a revalidation, got {other:?}"),
    }

    // 2. The agent prefetches revalidations (the blocking step lives off
    //    the request path); both users' requests then verify and serve.
    agent
        .fetch_revalidation(&validator.validator_hash(), &alice_cert)
        .unwrap();
    agent
        .fetch_revalidation(&validator.validator_hash(), &bob_cert)
        .unwrap();
    let resp = alice_proxy
        .execute(&mut alice, get("alice"))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let resp = bob_proxy
        .execute(&mut bob, get("bob"))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(servlet.stats().proof_verifications, 2);

    // 3. Revoke Alice mid-session.  The push drops her cached
    //    revalidation and evicts her warm verified-request entry; the
    //    validator refuses to mint a replacement.
    validator.revoke(alice_cert.clone());
    assert!(agent
        .fetch_revalidation(&validator.validator_hash(), &alice_cert)
        .is_err());

    // 4. Her very next request — same bytes, same session — is denied at
    //    the webserver boundary.
    match alice_proxy.execute(&mut alice, get("alice")) {
        Err(ProxyError::Rejected(msg)) => {
            assert!(msg.contains("revalidation"), "unexpected rejection: {msg}")
        }
        other => panic!("expected denial after revocation, got {other:?}"),
    }

    // 5. Bob is untouched: his revalidation still stands, his requests
    //    still serve.  Targeted revocation, not a flush.
    let resp = bob_proxy
        .execute(&mut bob, get("bob"))
        .unwrap();
    assert_eq!(resp.status, 200);

    // Hang up and drain the serving pool.
    drop((alice, bob));
    runtime.shutdown();
    assert_eq!(runtime.stats().completed, 2);
}

/// A revalidation expires on its own clock: even *without* a revocation
/// event, a certificate under the revalidate policy stops verifying once
/// the cached artifact's window closes, until the agent fetches a fresh
/// one — the fail-closed property CRLs only approximate.
#[test]
fn stale_revalidation_fails_closed() {
    let owner = kp("stale-owner");
    let issuer = Principal::key(&owner.public);
    // Revalidations live 30 s (the service default used here is injected
    // explicitly for clarity).
    let validator = ValidatorService::with_windows(
        kp("stale-validator"),
        fixed_clock,
        det("stale-v-rng"),
        300,
        30,
    );
    let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
    agent.register_validator(
        validator.validator_hash(),
        Arc::new(InProcessValidator(Arc::clone(&validator))),
    );

    let vfs = Arc::new(Vfs::new());
    vfs.write("/docs/a.html", b"<p>a</p>".to_vec());
    let service = ProtectedWebService::new(issuer.clone(), "files", vfs);
    let subtree = service.subtree_tag("/docs/");
    let (cert, prover) =
        revalidated_grant(&owner, &kp("stale-carol"), subtree.clone(), &validator, "stale-grant");
    agent.fetch_revalidation(&validator.validator_hash(), &cert).unwrap();

    // Within the window the chain verifies against the agent's cache…
    let subject = Principal::message(b"some request");
    let proof = prover
        .complete_proof(
            &subject,
            &issuer,
            &service.file_tag("/docs/a.html"),
            Validity::until(fixed_clock().plus(300)),
            fixed_clock(),
        )
        .expect("prover builds the chain");
    let live_ctx = snowflake_core::VerifyCtx::at(fixed_clock())
        .with_revocation_source(Arc::clone(&agent) as _);
    proof.verify(&live_ctx).expect("fresh revalidation verifies");

    // …but 31 s later the artifact is stale and verification fails
    // closed, with no revocation ever issued.
    let later = Time(fixed_clock().0 + 31);
    let stale_ctx =
        snowflake_core::VerifyCtx::at(later).with_revocation_source(Arc::clone(&agent) as _);
    let err = proof.verify(&stale_ctx).unwrap_err();
    assert!(
        format!("{err}").contains("revalidation"),
        "stale revalidation must fail closed, got: {err}"
    );
}
