//! Revocation push through the connection reactor: a remote subscriber
//! is a parked write-only socket (no forwarder thread), frames on the
//! wire are identical to the transport sink's, a subscriber that stalls
//! past the reactor's buffer cap is shed into the runtime's ledger and
//! dropped, and shutdown closes the sink sockets.

use snowflake_channel::TcpTransport;
use snowflake_crypto::{DetRng, Group, HashVal, KeyPair};
use snowflake_revocation::{read_delta, ValidatorService};
use snowflake_runtime::{PoolConfig, ServerRuntime};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn validator() -> Arc<ValidatorService> {
    let mut rng = DetRng::new(b"reactor-push-validator");
    ValidatorService::new(KeyPair::generate(Group::test512(), &mut |b| rng.fill(b)))
}

/// Accepts one TCP connection and subscribes it through the reactor,
/// returning the client end.
fn subscribe_one(
    v: &Arc<ValidatorService>,
    runtime: &Arc<ServerRuntime>,
) -> TcpStream {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    let (served, _) = listener.accept().unwrap();
    v.subscribe_reactor(served, runtime).unwrap();
    client
}

/// The snapshot and subsequent event deltas arrive on the verifier side
/// exactly as `read_delta` expects, with the subscription holding no
/// thread — and shutdown closes the parked sink socket.
#[test]
fn deltas_reach_a_reactor_subscriber() {
    let v = validator();
    let runtime = ServerRuntime::new(PoolConfig::new("push-reactor", 2, 4));
    let client = subscribe_one(&v, &runtime);
    let mut verifier = TcpTransport::new(client);

    // The subscription snapshot arrives first (empty CRL, nothing revoked).
    let snapshot = read_delta(&mut verifier).unwrap();
    assert!(snapshot.newly_revoked.is_empty());
    assert_eq!(v.subscriber_count(), 1);
    assert_eq!(runtime.reactor_stats().open_sinks, 1);

    // A revocation is pushed as one framed delta.
    let victim = HashVal::of(b"revoked-cert");
    v.revoke(victim.clone());
    let event = read_delta(&mut verifier).unwrap();
    assert_eq!(event.newly_revoked, vec![victim]);
    assert!(event.crl.revoked.contains(&event.newly_revoked[0]));

    // Shutdown drains the reactor and closes the sink: the verifier sees
    // EOF, and the next broadcast drops the dead subscription.
    runtime.shutdown();
    assert!(read_delta(&mut verifier).is_err(), "sink closed at drain");
    v.revoke(HashVal::of(b"after-shutdown"));
    assert_eq!(v.subscriber_count(), 0);
}

/// A subscriber that never reads stalls: once the socket and the
/// reactor's per-sink buffer are full, the sink is shed — counted in the
/// runtime's ledger under its own surface — and the subscription drops,
/// without ever blocking the validator's broadcast path.
#[test]
fn stalled_reactor_subscriber_is_shed_and_dropped() {
    let v = validator();
    let runtime = ServerRuntime::new(PoolConfig::new("push-stall", 2, 4));
    // Never read from this end: the kernel buffers fill, then the
    // reactor's cap is the backstop.
    let _stalled = subscribe_one(&v, &runtime);
    assert_eq!(v.subscriber_count(), 1);

    // Each revocation grows the CRL, so the pushed deltas grow too; the
    // cap must trip well within this bound.
    let mut dropped_after = None;
    for i in 0..4_000u32 {
        v.revoke(HashVal::of(format!("cert-{i}").as_bytes()));
        if v.subscriber_count() == 0 {
            dropped_after = Some(i);
            break;
        }
    }
    assert!(
        dropped_after.is_some(),
        "a never-reading subscriber must be dropped"
    );
    assert!(
        runtime
            .sheds_by_surface()
            .contains(&("revocation-push".to_owned(), 1)),
        "the stall is one counted shed on the push surface: {:?}",
        runtime.sheds_by_surface()
    );
    assert_eq!(runtime.reactor_stats().open_sinks, 0);
    runtime.shutdown();
}
