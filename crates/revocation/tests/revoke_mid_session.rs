//! Revoke-mid-session, end to end: a delegation honored by the protected
//! web server (VFS-backed), by a live MAC session, and by the email
//! database over RMI is revoked at the validator; the push lands; and the
//! very next request is denied at each boundary — with no process restart
//! and no full-cache flush (unrelated warm entries keep answering).

use snowflake_apps::emaildb::{EmailDb, EMAIL_DB_OBJECT};
use snowflake_apps::vfs::Vfs;
use snowflake_apps::webserver::ProtectedWebService;
use snowflake_channel::LocalBroker;
use snowflake_core::{
    Certificate, Delegation, Principal, Proof, RevocationPolicy, Time, Validity,
};
use snowflake_crypto::{DetRng, Group, HashVal, KeyPair};
use snowflake_http::mac::ClientMacSession;
use snowflake_http::{auth, Handler, HttpRequest, ProtectedServlet, MAC_SESSION_PATH};
use snowflake_prover::Prover;
use snowflake_revocation::{AgentSink, FreshnessAgent, InProcessValidator, ValidatorService};
use snowflake_rmi::{RmiClient, RmiError};
use snowflake_sexpr::Sexp;
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> Box<dyn FnMut(&mut [u8]) + Send> {
    let mut r = DetRng::new(seed.as_bytes());
    Box::new(move |b: &mut [u8]| r.fill(b))
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

/// A validator with injected clock/entropy plus a freshness agent
/// subscribed to it (jitter 0 so tests are exact).
fn validator_and_agent(seed: &str) -> (Arc<ValidatorService>, Arc<FreshnessAgent>) {
    let validator = ValidatorService::with_clock(kp(seed), fixed_clock, det("validator-rng"));
    let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
    agent.register_validator(
        validator.validator_hash(),
        Arc::new(InProcessValidator(Arc::clone(&validator))),
    );
    validator.subscribe(Box::new(AgentSink::new(&agent)));
    (validator, agent)
}

/// Issues `subject ⇒ issuer_key` with a CRL revocation policy naming the
/// validator, delegable, and returns (cert hash, prover holding the chain).
fn revocable_grant(
    issuer_key: &KeyPair,
    subject: &KeyPair,
    tag: snowflake_core::Tag,
    validity: Validity,
    validator: &ValidatorService,
    seed: &str,
) -> (HashVal, Arc<Prover>) {
    let mut rng = DetRng::new(seed.as_bytes());
    let cert = Certificate::issue_with_revocation(
        issuer_key,
        Delegation {
            subject: Principal::key(&subject.public),
            issuer: Principal::key(&issuer_key.public),
            tag,
            validity,
            delegable: true,
        },
        Some(RevocationPolicy::Crl {
            validator: validator.validator_hash(),
        }),
        &mut |b| rng.fill(b),
    );
    let hash = cert.hash();
    let prover = Arc::new(Prover::with_rng(det(&format!("{seed}-prover"))));
    prover.add_proof(Proof::signed_cert(cert));
    prover.add_key(subject.clone());
    (hash, prover)
}

/// Builds a signed GET whose proof chain runs request ⇒ user ⇒ owner.
/// `user` is folded into a header so distinct users' requests hash apart
/// (the request hash excludes only the Authorization/MAC headers).
fn signed_get(
    path: &str,
    user: &str,
    prover: &Prover,
    issuer: &Principal,
    min_tag: &snowflake_core::Tag,
) -> HttpRequest {
    let mut req = HttpRequest::get(path);
    req.set_header("X-User", user);
    let subject = auth::request_principal(&req, snowflake_core::HashAlg::Sha256);
    let now = fixed_clock();
    let proof = prover
        .complete_proof(&subject, issuer, min_tag, Validity::until(now.plus(300)), now)
        .expect("prover must build the request proof");
    auth::attach_proof(&mut req, &proof);
    req
}

// ======================================================================
// Boundary 1: the protected web server (VFS-backed), signed requests
// ======================================================================

#[test]
fn webserver_denies_next_request_after_push() {
    let owner = kp("web-owner");
    let issuer = Principal::key(&owner.public);
    let (validator, agent) = validator_and_agent("web-validator");

    let vfs = Arc::new(Vfs::new());
    vfs.write("/docs/a.html", b"<p>a</p>".to_vec());
    let service = ProtectedWebService::new(issuer.clone(), "files", vfs);
    let subtree = service.subtree_tag("/docs/");
    let servlet = ProtectedServlet::with_clock(service, fixed_clock, det("web-servlet"));

    // Wire the subsystem: the agent feeds verification and invalidates the
    // servlet's warm caches on push.
    servlet.set_revocation_source(agent.clone());
    agent.add_bus(servlet.clone());

    // Alice and Bob each hold a revocable delegation from the owner.
    let (alice_cert, alice_prover) = revocable_grant(
        &owner,
        &kp("alice"),
        subtree.clone(),
        Validity::always(),
        &validator,
        "web-alice",
    );
    let (_bob_cert, bob_prover) = revocable_grant(
        &owner,
        &kp("bob"),
        subtree.clone(),
        Validity::always(),
        &validator,
        "web-bob",
    );
    agent.add_bus(alice_prover.clone());

    let min_tag = auth::web_tag("GET", "files", "/docs/a.html");
    let alice_req = signed_get("/docs/a.html", "alice", &alice_prover, &issuer, &min_tag);
    let bob_req = signed_get("/docs/a.html", "bob", &bob_prover, &issuer, &min_tag);

    // Both verified and served; identical retransmissions warm the cache.
    assert_eq!(servlet.handle(&alice_req).status, 200);
    assert_eq!(servlet.handle(&bob_req).status, 200);
    assert_eq!(servlet.handle(&alice_req).status, 200);
    let warm = servlet.stats();
    assert_eq!(warm.proof_verifications, 2);
    assert_eq!(warm.ident_hits, 1, "alice's retransmit hit the cache");

    // Revoke Alice's delegation at the validator; the push lands
    // synchronously through the subscription.
    validator.revoke(alice_cert.clone());

    // The *same bytes* that were warm a moment ago are now denied: the
    // verified-request entry was evicted by provenance, and the fresh
    // verification fails against the pushed CRL.
    let denied = servlet.handle(&alice_req);
    assert_eq!(denied.status, 403, "{}", String::from_utf8_lossy(&denied.body));
    assert!(String::from_utf8_lossy(&denied.body).contains("CRL"));

    // Alice's own prover was also invalidated: she cannot even build a
    // fresh proof for a new request.
    let mut fresh = HttpRequest::get("/docs/a.html");
    fresh.set_header("X-Fresh", "1");
    let subject = auth::request_principal(&fresh, snowflake_core::HashAlg::Sha256);
    assert!(alice_prover
        .complete_proof(&subject, &issuer, &min_tag, Validity::until(Time(1_000_300)), fixed_clock())
        .is_none());

    // No blanket flush: Bob's identical warm request still answers from
    // the cache, and his chain still verifies.
    let before = servlet.stats().ident_hits;
    assert_eq!(servlet.handle(&bob_req).status, 200);
    assert_eq!(servlet.stats().ident_hits, before + 1, "bob stayed warm");
}

// ======================================================================
// Boundary 2: an established MAC session
// ======================================================================

#[test]
fn mac_session_stops_authorizing_after_push() {
    let owner = kp("mac-owner");
    let issuer = Principal::key(&owner.public);
    let (validator, agent) = validator_and_agent("mac-validator");

    let vfs = Arc::new(Vfs::new());
    vfs.write("/docs/a.html", b"<p>a</p>".to_vec());
    let service = ProtectedWebService::new(issuer.clone(), "files", vfs);
    let subtree = service.subtree_tag("/docs/");
    let servlet = ProtectedServlet::with_clock(service, fixed_clock, det("mac-servlet"));
    servlet.set_revocation_source(agent.clone());
    agent.add_bus(servlet.clone());

    let establish = |seed: &str, prover: &Prover| -> ClientMacSession {
        let mut crng = DetRng::new(seed.as_bytes());
        let (body, dh) = ClientMacSession::request_body(&mut |b| crng.fill(b));
        let mut req = HttpRequest::post(MAC_SESSION_PATH, body);
        let subject = auth::request_principal(&req, snowflake_core::HashAlg::Sha256);
        let now = fixed_clock();
        let proof = prover
            .complete_proof(&subject, &issuer, &subtree, Validity::until(now.plus(300)), now)
            .expect("establishment proof");
        auth::attach_proof(&mut req, &proof);
        let resp = servlet.handle(&req);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        ClientMacSession::from_grant(&resp.body, &dh, Validity::until(now.plus(300))).unwrap()
    };
    let mac_get = |session: &ClientMacSession, path: &str| {
        let mut req = HttpRequest::get(path);
        let hash = auth::request_hash(&req, snowflake_core::HashAlg::Sha256);
        req.set_header(auth::MAC_ID_HEADER, &session.id_header());
        req.set_header(auth::MAC_HEADER, &session.authenticate(&hash));
        req
    };

    let (alice_cert, alice_prover) = revocable_grant(
        &owner,
        &kp("mac-alice"),
        subtree.clone(),
        Validity::until(fixed_clock().plus(3_000)),
        &validator,
        "mac-alice",
    );
    let (_bob_cert, bob_prover) = revocable_grant(
        &owner,
        &kp("mac-bob"),
        subtree.clone(),
        Validity::until(fixed_clock().plus(3_000)),
        &validator,
        "mac-bob",
    );

    // Two sessions established through two revocable chains.
    let alice_session = establish("mac-est-alice", &alice_prover);
    let bob_session = establish("mac-est-bob", &bob_prover);
    assert_eq!(servlet.mac_store().len(), 2);
    assert_eq!(servlet.handle(&mac_get(&alice_session, "/docs/a.html")).status, 200);
    assert_eq!(servlet.handle(&mac_get(&bob_session, "/docs/a.html")).status, 200);
    assert_eq!(servlet.stats().mac_hits, 2);

    // Revoke Alice's establishment chain: her session — which never
    // re-verifies a proof — is evicted by the push.
    validator.revoke(alice_cert);
    assert_eq!(servlet.mac_store().len(), 1, "exactly one session evicted");

    let denied = servlet.handle(&mac_get(&alice_session, "/docs/a.html"));
    assert_eq!(denied.status, 403, "{}", String::from_utf8_lossy(&denied.body));
    assert!(String::from_utf8_lossy(&denied.body).contains("unknown MAC session"));

    // Bob's session keeps working: targeted eviction, not a flush.
    assert_eq!(servlet.handle(&mac_get(&bob_session, "/docs/a.html")).status, 200);
}

// ======================================================================
// Boundary 3: the email database over RMI
// ======================================================================

#[test]
fn emaildb_denies_next_call_after_push() {
    let db_key = kp("db-server");
    let db_issuer = Principal::key(&db_key.public);
    let (validator, agent) = validator_and_agent("db-validator");

    let db_server = snowflake_rmi::RmiServer::with_clock(fixed_clock);
    let email = EmailDb::new(db_issuer.clone());
    {
        use snowflake_rmi::{CallerInfo, Invocation, RemoteObject};
        let caller = CallerInfo {
            speaker: Principal::message(b"setup"),
            channel: snowflake_core::ChannelId {
                kind: "setup".into(),
                id: HashVal::of(b"setup"),
            },
        };
        for (owner, sender) in [("alice", "bob"), ("bob", "alice")] {
            email
                .invoke(
                    &Invocation {
                        object: EMAIL_DB_OBJECT.into(),
                        method: "insert".into(),
                        args: vec![
                            Sexp::from(owner),
                            Sexp::from(sender),
                            Sexp::from("subject"),
                            Sexp::from("body"),
                            Sexp::from("inbox"),
                        ],
                        quoting: None,
                    },
                    &caller,
                )
                .unwrap();
        }
    }
    db_server.register(EMAIL_DB_OBJECT, Arc::new(email));
    db_server.set_revocation_source(agent.clone());
    agent.add_bus(db_server.clone());

    // Broker-vouched local channels for both users.
    let broker = LocalBroker::new("shared-host");
    let mut brng = DetRng::new(b"db-broker");
    let alice_session = broker.create_identity("alice", &mut |b| brng.fill(b));
    let bob_session = broker.create_identity("bob", &mut |b| brng.fill(b));
    broker.create_identity("database", &mut |b| brng.fill(b));

    // Grants go to the *session* keys directly (colocated clients are
    // their own identities, as in the §5.2 local-channel flow).
    let (alice_cert, alice_prover) = revocable_grant(
        &db_key,
        &alice_session,
        EmailDb::owner_tag("alice"),
        Validity::always(),
        &validator,
        "db-alice",
    );
    let (_bob_cert, bob_prover) = revocable_grant(
        &db_key,
        &bob_session,
        EmailDb::owner_tag("bob"),
        Validity::always(),
        &validator,
        "db-bob",
    );
    agent.add_bus(alice_prover.clone());

    let connect = |name: &str, session: &KeyPair, prover: &Arc<Prover>| {
        let (client_end, mut server_end) = broker.connect(name, "database").unwrap();
        let server = Arc::clone(&db_server);
        let handle = std::thread::spawn(move || {
            let _ = server.serve_connection(&mut server_end);
        });
        (
            RmiClient::with_clock(
                Box::new(client_end),
                session.clone(),
                Arc::clone(prover),
                fixed_clock,
            ),
            handle,
        )
    };
    let (mut alice, ah) = connect("alice", &alice_session, &alice_prover);
    let (mut bob, bh) = connect("bob", &bob_session, &bob_prover);

    // Both read their own mail; the db caches both verified chains.
    assert!(alice
        .invoke(EMAIL_DB_OBJECT, "select", vec![Sexp::from("alice")])
        .is_ok());
    assert!(bob
        .invoke(EMAIL_DB_OBJECT, "select", vec![Sexp::from("bob")])
        .is_ok());
    assert_eq!(db_server.cache_stats().proofs, 2);

    // Revoke Alice's grant: the push evicts her cached proof at the db
    // *and* her prover's warm edges.
    validator.revoke(alice_cert);
    assert_eq!(db_server.cache_stats().proofs, 1, "only alice's proof evicted");

    // Her next call faults NeedAuthorization; her prover — invalidated by
    // the same push — cannot rebuild the chain.
    match alice.invoke(EMAIL_DB_OBJECT, "select", vec![Sexp::from("alice")]) {
        Err(RmiError::NoProof { .. }) => {}
        other => panic!("expected NoProof after revocation, got {other:?}"),
    }
    assert!(alice_prover.stats().invalidated_edges > 0);

    // Bob's warm proof keeps answering — no restart, no flush.
    assert!(bob
        .invoke(EMAIL_DB_OBJECT, "select", vec![Sexp::from("bob")])
        .is_ok());

    drop(alice);
    drop(bob);
    ah.join().unwrap();
    bh.join().unwrap();
}

// ======================================================================
// Boundary 4: the quoting gateway (HTTP → RMI, paper §6.3)
// ======================================================================

#[test]
fn gateway_denies_next_request_after_push() {
    use snowflake_apps::QuotingGateway;
    use snowflake_http::{duplex, HttpClient, HttpServer, SnowflakeProxy};

    let db_key = kp("gw-db");
    let db_issuer = Principal::key(&db_key.public);
    let (validator, agent) = validator_and_agent("gw-validator");

    // Database server with Alice's mail.
    let db_server = snowflake_rmi::RmiServer::with_clock(fixed_clock);
    let email = EmailDb::new(db_issuer.clone());
    {
        use snowflake_rmi::{CallerInfo, Invocation, RemoteObject};
        let caller = CallerInfo {
            speaker: Principal::message(b"setup"),
            channel: snowflake_core::ChannelId {
                kind: "setup".into(),
                id: HashVal::of(b"setup"),
            },
        };
        email
            .invoke(
                &Invocation {
                    object: EMAIL_DB_OBJECT.into(),
                    method: "insert".into(),
                    args: vec![
                        Sexp::from("alice"),
                        Sexp::from("bob"),
                        Sexp::from("lunch"),
                        Sexp::from("noon?"),
                        Sexp::from("inbox"),
                    ],
                    quoting: None,
                },
                &caller,
            )
            .unwrap();
    }
    db_server.register(EMAIL_DB_OBJECT, Arc::new(email));
    db_server.set_revocation_source(agent.clone());
    agent.add_bus(db_server.clone());

    // Gateway connected to the database over broker-vouched local channels.
    let broker = LocalBroker::new("gw-host");
    let mut brng = DetRng::new(b"gw-broker");
    let gw_kp = broker.create_identity("gateway", &mut |b| brng.fill(b));
    broker.create_identity("database", &mut |b| brng.fill(b));
    let (gw_end, mut db_end) = broker.connect("gateway", "database").unwrap();
    let db2 = Arc::clone(&db_server);
    // Not joined: the gateway keeps its channel end alive for the whole
    // test (matching the four_boundaries rig).
    let _db_thread = std::thread::spawn(move || {
        let _ = db2.serve_connection(&mut db_end);
    });
    let gateway_prover = Arc::new(Prover::with_rng(det("gw-prover")));
    agent.add_bus(gateway_prover.clone());
    let gateway_rmi = RmiClient::with_clock(
        Box::new(gw_end),
        gw_kp,
        Arc::clone(&gateway_prover),
        fixed_clock,
    );
    let http_server = HttpServer::new();
    http_server.route("/mail", Arc::new(QuotingGateway::new(gateway_rmi, fixed_clock)));

    // Alice's side: a revocable owner grant and her proxy.
    let alice = kp("gw-alice");
    let mut grng = DetRng::new(b"gw-grant");
    let grant = Certificate::issue_with_revocation(
        &db_key,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: db_issuer,
            tag: EmailDb::owner_tag("alice"),
            validity: Validity::always(),
            delegable: true,
        },
        Some(RevocationPolicy::Crl {
            validator: validator.validator_hash(),
        }),
        &mut |b| grng.fill(b),
    );
    let grant_hash = grant.hash();
    let alice_prover = Arc::new(Prover::with_rng(det("gw-alice-prover")));
    alice_prover.add_proof(Proof::signed_cert(grant));
    alice_prover.add_key(alice.clone());
    agent.add_bus(alice_prover.clone());
    let proxy = SnowflakeProxy::with_clock(alice_prover, fixed_clock, det("gw-proxy"));
    proxy.set_identity(Principal::key(&alice.public));

    let (client_stream, mut server_stream) = duplex();
    let hs = Arc::clone(&http_server);
    let http_thread = std::thread::spawn(move || {
        let _ = hs.serve_stream(&mut server_stream);
    });
    let mut client = HttpClient::new(Box::new(client_stream));

    // The full four-boundary flow works while the grant is live.
    let resp = proxy
        .execute(&mut client, HttpRequest::get("/mail/alice/inbox"))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert!(String::from_utf8_lossy(&resp.body).contains("noon?"));
    assert_eq!(db_server.cache_stats().proofs, 1);

    // Revoke mid-session: the push evicts the database's cached G|C ⇒ S
    // proof and invalidates both the gateway's and Alice's prover graphs.
    validator.revoke(grant_hash);
    assert_eq!(db_server.cache_stats().proofs, 0);

    // The next browser request cannot be authorized anywhere in the chain.
    let result = proxy.execute(&mut client, HttpRequest::get("/mail/alice/inbox"));
    assert!(
        !matches!(&result, Ok(resp) if resp.status == 200),
        "revoked delegation must not reach the database, got {result:?}"
    );

    drop(client);
    http_thread.join().unwrap();
}

// ======================================================================
// A re-issued certificate works again after its predecessor was revoked
// ======================================================================

#[test]
fn reissued_certificate_restores_access() {
    let owner = kp("reissue-owner");
    let issuer = Principal::key(&owner.public);
    let (validator, agent) = validator_and_agent("reissue-validator");

    let vfs = Arc::new(Vfs::new());
    vfs.write("/docs/a.html", b"<p>a</p>".to_vec());
    let service = ProtectedWebService::new(issuer.clone(), "files", vfs);
    let subtree = service.subtree_tag("/docs/");
    let servlet = ProtectedServlet::with_clock(service, fixed_clock, det("reissue-servlet"));
    servlet.set_revocation_source(agent.clone());
    agent.add_bus(servlet.clone());

    let carol = kp("carol");
    let (cert_hash, prover) = revocable_grant(
        &owner,
        &carol,
        subtree.clone(),
        Validity::always(),
        &validator,
        "reissue-carol",
    );
    agent.add_bus(prover.clone());

    let min_tag = auth::web_tag("GET", "files", "/docs/a.html");
    let req = signed_get("/docs/a.html", "carol", &prover, &issuer, &min_tag);
    assert_eq!(servlet.handle(&req).status, 200);

    validator.revoke(cert_hash);
    assert_eq!(servlet.handle(&req).status, 403);

    // The owner re-issues a (distinct) delegation; learning it makes the
    // prover answer again and the new proof verifies against the same CRL.
    let mut rng = DetRng::new(b"reissue-2");
    let cert2 = Certificate::issue_with_revocation(
        &owner,
        Delegation {
            subject: Principal::key(&carol.public),
            issuer: issuer.clone(),
            tag: subtree,
            validity: Validity::until(fixed_clock().plus(9_999)),
            delegable: true,
        },
        Some(RevocationPolicy::Crl {
            validator: validator.validator_hash(),
        }),
        &mut |b| rng.fill(b),
    );
    prover.add_proof(Proof::signed_cert(cert2));
    let req2 = signed_get("/docs/a.html", "carol-2", &prover, &issuer, &min_tag);
    let resp = servlet.handle(&req2);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
}
