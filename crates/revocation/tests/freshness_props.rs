//! Property: a `VerifyCtx` fed by a [`FreshnessAgent`] (attached as its
//! pluggable `RevocationSource`) answers `check_revocation` identically to
//! a context hand-loaded with the same CRLs and revalidations — for every
//! mix of revoked/live certificates, both policy kinds, and instants
//! inside and outside the freshness windows.

use proptest::prelude::*;
use snowflake_core::{
    Certificate, Delegation, Principal, RevocationPolicy, Time, Validity, VerifyCtx,
};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_revocation::{AgentSink, FreshnessAgent, InProcessValidator, ValidatorService};
use snowflake_tags::Tag;
use std::sync::{Arc, OnceLock};

fn fixed_clock() -> Time {
    Time(1_000_000)
}

/// Key generation dominates test time; share one owner/validator pair.
fn owner() -> &'static KeyPair {
    static K: OnceLock<KeyPair> = OnceLock::new();
    K.get_or_init(|| {
        let mut rng = DetRng::new(b"props-owner");
        KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
    })
}

fn validator_key() -> &'static KeyPair {
    static K: OnceLock<KeyPair> = OnceLock::new();
    K.get_or_init(|| {
        let mut rng = DetRng::new(b"props-validator");
        KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
    })
}

/// Issues cert `i` with the requested policy kind.
fn cert(i: usize, crl_policy: bool) -> Certificate {
    let mut rng = DetRng::new(format!("props-cert-{i}").as_bytes());
    let policy = if crl_policy {
        RevocationPolicy::Crl {
            validator: validator_key().public.hash(),
        }
    } else {
        RevocationPolicy::Revalidate {
            validator: validator_key().public.hash(),
        }
    };
    Certificate::issue_with_revocation(
        owner(),
        Delegation {
            subject: Principal::message(format!("subject-{i}").as_bytes()),
            issuer: Principal::key(&owner().public),
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: false,
        },
        Some(policy),
        &mut |b| rng.fill(b),
    )
}

/// Regression: an installed, still-current CRL must not shadow a *newer*
/// list the attached source holds — the common shape after `populate`
/// followed by a push — or a pushed revocation would be ignored for the
/// rest of the installed list's window.
#[test]
fn installed_crl_does_not_shadow_newer_pushed_crl() {
    let validator = ValidatorService::with_clock(validator_key().clone(), fixed_clock, {
        let mut r = DetRng::new(b"shadow-rng");
        Box::new(move |b: &mut [u8]| r.fill(b))
    });
    let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
    agent.register_validator(
        validator.validator_hash(),
        Arc::new(InProcessValidator(Arc::clone(&validator))),
    );
    validator.subscribe(Box::new(AgentSink::new(&agent)));

    let c = cert(0, true);
    // Hand-load the pre-revocation list AND attach the agent as source.
    let mut ctx = VerifyCtx::at(fixed_clock());
    agent.populate(&mut ctx);
    let ctx = ctx.with_revocation_source(agent.clone());
    assert!(ctx.check_revocation(&c).is_ok());

    // The push installs a newer list at the agent; the same ctx (whose
    // installed copy is still inside its window) must reject now.
    validator.revoke(c.hash());
    assert!(
        ctx.check_revocation(&c).is_err(),
        "newer pushed CRL must win over the older installed one"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn agent_fed_ctx_equals_hand_loaded_ctx(
        crl_flags in proptest::collection::vec(any::<bool>(), 6usize..7),
        revoke_flags in proptest::collection::vec(any::<bool>(), 6usize..7),
        reval_flags in proptest::collection::vec(any::<bool>(), 6usize..7),
        time_skew in 0u64..600,
    ) {
        let validator = ValidatorService::with_clock(
            validator_key().clone(),
            fixed_clock,
            {
                let mut r = DetRng::new(b"props-svc-rng");
                Box::new(move |b: &mut [u8]| r.fill(b))
            },
        );
        let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
        agent.register_validator(
            validator.validator_hash(),
            Arc::new(InProcessValidator(Arc::clone(&validator))),
        );
        validator.subscribe(Box::new(AgentSink::new(&agent)));

        // Build the world: certs with either policy, a random subset
        // revoked, a random subset pre-fetched as revalidations.
        let certs: Vec<Certificate> =
            (0..crl_flags.len()).map(|i| cert(i, crl_flags[i])).collect();
        for (i, c) in certs.iter().enumerate() {
            // Fetch revalidations before revoking (a revoked cert cannot
            // be revalidated), mirroring a verifier that cached them.
            if reval_flags[i] && !crl_flags[i] {
                agent
                    .fetch_revalidation(&validator.validator_hash(), &c.hash())
                    .unwrap();
            }
        }
        for (i, c) in certs.iter().enumerate() {
            if revoke_flags[i] {
                validator.revoke(c.hash());
            }
        }

        // The two contexts under comparison, at an instant possibly past
        // the freshness windows (time_skew pushes beyond the 300 s CRL
        // window and 30 s revalidation window in some cases).
        let now = Time(fixed_clock().0 + time_skew);
        let sourced = VerifyCtx::at(now).with_revocation_source(agent.clone());
        let mut hand_loaded = VerifyCtx::at(now);
        agent.populate(&mut hand_loaded);

        for c in &certs {
            let a = sourced.check_revocation(c);
            let b = hand_loaded.check_revocation(c);
            prop_assert_eq!(
                a.is_ok(),
                b.is_ok(),
                "sourced {:?} vs hand-loaded {:?} for {:?}",
                a,
                b,
                c
            );
        }
    }
}
