//! The background refresh driver: `FreshnessAgent` refreshes run from
//! the runtime scheduler, with no deployment code polling
//! `refresh_due`/`next_refresh` by hand.

use snowflake_core::{RevocationSource, Time};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_revocation::{FreshnessAgent, InProcessValidator, ValidatorService};
use snowflake_runtime::{PoolConfig, ServerRuntime};
use std::sync::Arc;
use std::time::Duration;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> Box<dyn FnMut(&mut [u8]) + Send> {
    let mut r = DetRng::new(seed.as_bytes());
    Box::new(move |b: &mut [u8]| r.fill(b))
}

fn fixed_clock() -> Time {
    Time(1_000)
}

fn wait_for(mut cond: impl FnMut() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(start.elapsed().as_secs() < 10, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// With the refresh lead covering the whole CRL window, a refresh is
/// always due — so a driven agent refreshes repeatedly with nobody
/// calling `refresh_due`, and cancelling the driver stops it.
#[test]
fn driver_refreshes_without_polling() {
    let validator = ValidatorService::with_clock(kp("driver-v"), fixed_clock, det("driver-rng"));
    // lead = the full default window: every tick finds the CRL due.
    let agent = FreshnessAgent::with_pacing(
        fixed_clock,
        snowflake_revocation::DEFAULT_CRL_WINDOW,
        0,
        0,
    );
    agent.register_validator(
        validator.validator_hash(),
        Arc::new(InProcessValidator(Arc::clone(&validator))),
    );

    let runtime = ServerRuntime::new(PoolConfig::new("refresh-driver", 1, 2));
    let handle = agent.start_refresh_driver(
        &runtime,
        Duration::from_millis(1),
        Duration::from_millis(50),
    );

    // The driver alone pulls CRLs — this test never calls refresh_due.
    wait_for(|| agent.stats().refreshes >= 3);
    assert!(
        agent.crl(&validator.validator_hash(), fixed_clock()).is_some(),
        "driven refreshes populate the cache the verify path reads"
    );

    // Cancelling the driver stops the cadence.
    handle.cancel();
    std::thread::sleep(Duration::from_millis(20));
    let settled = agent.stats().refreshes + 1; // one tick may be mid-flight
    std::thread::sleep(Duration::from_millis(60));
    assert!(
        agent.stats().refreshes <= settled,
        "a cancelled driver must not keep refreshing"
    );
    runtime.shutdown();
}

/// The driver holds only a weak reference: dropping the agent retires
/// the scheduled task instead of keeping the agent alive forever.
#[test]
fn driver_retires_when_agent_drops() {
    let validator = ValidatorService::with_clock(kp("retire-v"), fixed_clock, det("retire-rng"));
    let agent = FreshnessAgent::with_pacing(fixed_clock, 30, 0, 0);
    agent.register_validator(
        validator.validator_hash(),
        Arc::new(InProcessValidator(Arc::clone(&validator))),
    );
    let runtime = ServerRuntime::new(PoolConfig::new("refresh-retire", 1, 2));
    let _handle = agent.start_refresh_driver(
        &runtime,
        Duration::from_millis(1),
        Duration::from_millis(5),
    );
    wait_for(|| agent.stats().refreshes >= 1);

    let weak = Arc::downgrade(&agent);
    drop(agent);
    // The next tick fails to upgrade and retires; nothing holds the
    // agent alive and the scheduler goes idle.
    wait_for(|| weak.upgrade().is_none());
    wait_for(|| runtime.scheduler().pending() == 0);
    runtime.shutdown();
}
