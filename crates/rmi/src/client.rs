//! The client side: the rewritten stub and its `invoker` helper (Figure 4).

use crate::proto::{submit_proof_invocation, Invocation, RmiFault, RmiReply};
use crate::RmiError;
use snowflake_channel::AuthChannel;
use snowflake_core::{Principal, Time, Validity};
use snowflake_crypto::KeyPair;
use snowflake_prover::Prover;
use snowflake_sexpr::Sexp;
use std::sync::Arc;

/// An RMI client bound to one channel, one session key, and one Prover.
///
/// This is the paper's client-side scope: "in a `try … finally` block, it
/// establishes its own `SSHContext` and a `Prover` that holds its private
/// key `K_C`.  Any method called in the run-time scope of the try block will
/// inherit the established authority."  In Rust the scope is the lifetime of
/// the `RmiClient` value.
pub struct RmiClient {
    channel: Box<dyn AuthChannel>,
    prover: Arc<Prover>,
    /// The session key pair used in the channel handshake (`K₂`).
    session_key: KeyPair,
    /// When set, invocations quote this principal (gateway mode).
    quoting: Option<Principal>,
    clock: fn() -> Time,
}

impl RmiClient {
    /// Wraps an authenticated channel.
    ///
    /// `session_key` must be the key pair the channel was handshaken with;
    /// the Prover must be able to connect the client's identity key to any
    /// issuer the servers will demand.
    pub fn new(
        channel: Box<dyn AuthChannel>,
        session_key: KeyPair,
        prover: Arc<Prover>,
    ) -> RmiClient {
        Self::with_clock(channel, session_key, prover, Time::now)
    }

    /// Like [`RmiClient::new`] with an injected clock.
    pub fn with_clock(
        channel: Box<dyn AuthChannel>,
        session_key: KeyPair,
        prover: Arc<Prover>,
        clock: fn() -> Time,
    ) -> RmiClient {
        RmiClient {
            channel,
            prover,
            session_key,
            quoting: None,
            clock,
        }
    }

    /// Switches this client into quoting mode: subsequent invocations claim
    /// to quote `principal` (paper §6.3 — the gateway "intentionally quoting
    /// Alice in its requests").
    pub fn set_quoting(&mut self, principal: Option<Principal>) {
        self.quoting = principal;
    }

    /// The principal servers will attribute requests to.
    pub fn speaker(&self) -> Principal {
        match &self.quoting {
            None => Principal::key(&self.session_key.public),
            Some(q) => Principal::quoting(Principal::key(&self.session_key.public), q.clone()),
        }
    }

    /// The Prover backing this client.
    pub fn prover(&self) -> &Arc<Prover> {
        &self.prover
    }

    /// Invokes `method` on the named remote object, transparently handling
    /// the need-authorization retry protocol.
    ///
    /// On [`RmiFault::NeedAuthorization`] the invoker queries the Prover for
    /// (or completes) a proof of the required authority, submits it to the
    /// server's proof recipient, and retries the original call once.
    pub fn invoke(
        &mut self,
        object: &str,
        method: &str,
        args: Vec<Sexp>,
    ) -> Result<Sexp, RmiError> {
        let invocation = Invocation {
            object: object.to_string(),
            method: method.to_string(),
            args,
            quoting: self.quoting.clone(),
        };

        match self.round_trip(&invocation)? {
            RmiReply::Return(v) => Ok(v),
            RmiReply::Fault(RmiFault::NeedAuthorization { issuer, tag }) => {
                // The invoker inspects the exception to discover the issuer
                // it must speak for and the minimum restriction set.
                let now = (self.clock)();
                let subject = self.speaker();
                let proof = self
                    .prover
                    .complete_proof(
                        &subject,
                        &issuer,
                        &tag,
                        Validity::until(now.plus(3600)),
                        now,
                    )
                    .ok_or(RmiError::NoProof { issuer, tag })?;

                // Pass the proof to the server's proofRecipient…
                match self.round_trip(&submit_proof_invocation(&proof))? {
                    RmiReply::Return(_) => {}
                    RmiReply::Fault(f) => return Err(RmiError::Fault(f)),
                }

                // …and send the original invocation again.
                match self.round_trip(&invocation)? {
                    RmiReply::Return(v) => Ok(v),
                    RmiReply::Fault(f) => Err(RmiError::Fault(f)),
                }
            }
            RmiReply::Fault(f) => Err(RmiError::Fault(f)),
        }
    }

    /// One raw request/reply exchange.
    fn round_trip(&mut self, invocation: &Invocation) -> Result<RmiReply, RmiError> {
        if let Err(e) = self.channel.send(&invocation.to_sexp().canonical()) {
            // A server that sheds a connection says BUSY and hangs up; the
            // parting fault may already be buffered on our end.  Prefer it
            // to the raw I/O error so callers see *why* the peer is gone.
            if let Ok(frame) = self.channel.recv() {
                if let Ok(reply) = Sexp::parse(&frame).map_err(|_| ()).and_then(|s| {
                    RmiReply::from_sexp(&s).map_err(|_| ())
                }) {
                    return Ok(reply);
                }
            }
            return Err(e.into());
        }
        let frame = self.channel.recv()?;
        let sexp = Sexp::parse(&frame).map_err(|e| RmiError::Protocol(e.to_string()))?;
        RmiReply::from_sexp(&sexp).map_err(|e| RmiError::Protocol(e.to_string()))
    }
}
