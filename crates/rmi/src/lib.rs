//! RMI-style RPC with end-to-end authorization (paper §5.1.1, Figure 4).
//!
//! This crate reproduces the paper's Snowflake/RMI integration call-for-call:
//!
//! 1. The client invokes a method through an [`RmiClient`] (the paper's
//!    rewritten stub + `invoker` helper).
//! 2. The server-side skeleton ([`RmiServer`]) receives the invocation over
//!    an authenticated channel and calls `check_auth()` before running the
//!    implementation.
//! 3. `check_auth()` discovers the key `K₂` associated with the channel and
//!    looks for a cached, verified proof that `K₂ =T⇒ K_S`.  Missing proof →
//!    the call faults with [`RmiFault::NeedAuthorization`] carrying the
//!    issuer it must speak for and the minimum restriction set.
//! 4. The invoker catches the fault, asks its Prover to complete a proof
//!    (delegating from the client's identity key `K_C` to the session key
//!    `K₂`), submits it to the server's *proof recipient* object, and
//!    retries the original call.
//! 5. Future calls hit the proof cache and "are only slowed by the layer of
//!    encryption protecting the integrity of the ssh channel."
//!
//! Gateways set a *quoting* principal on their client: the server then
//! associates requests with the compound principal `channel | quotee`
//! (paper §4.2), enabling the §6.3 quoting-gateway pattern.

mod client;
mod proto;
mod server;

pub use client::RmiClient;
pub use proto::{Invocation, RmiFault, RmiReply, PROOF_RECIPIENT};
pub use server::{
    method_tag, session_validity, speaker_for, CallerInfo, FileObject, ProofCacheStats,
    RemoteObject, RmiServer,
};

/// Errors surfaced to RMI callers.
#[derive(Debug)]
pub enum RmiError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The peer sent something unparseable.
    Protocol(String),
    /// The server faulted and the client could not recover.
    Fault(RmiFault),
    /// The client's Prover could not produce the demanded proof.
    NoProof {
        /// The issuer the server demanded.
        issuer: snowflake_core::Principal,
        /// The minimum restriction set demanded.
        tag: snowflake_core::Tag,
    },
}

impl std::fmt::Display for RmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmiError::Io(e) => write!(f, "rmi transport error: {e}"),
            RmiError::Protocol(m) => write!(f, "rmi protocol error: {m}"),
            RmiError::Fault(fault) => write!(f, "rmi fault: {fault:?}"),
            RmiError::NoProof { issuer, tag } => {
                write!(
                    f,
                    "prover cannot show authority over {} re {:?}",
                    issuer.describe(),
                    tag
                )
            }
        }
    }
}

impl RmiError {
    /// Did the server shed this call ([`RmiFault::Busy`])?  Busy faults
    /// mean the request was not processed: safe to retry later or route
    /// elsewhere, and gateways translate them to HTTP 503.
    pub fn is_busy(&self) -> bool {
        matches!(self, RmiError::Fault(RmiFault::Busy(_)))
    }
}

impl std::error::Error for RmiError {}

impl From<std::io::Error> for RmiError {
    fn from(e: std::io::Error) -> Self {
        RmiError::Io(e)
    }
}
