//! The server side: skeleton dispatch, `check_auth`, and the proof cache.

use snowflake_core::sync::LockExt;
use crate::proto::{Invocation, RmiFault, RmiReply, PROOF_RECIPIENT};
use std::sync::Mutex;
use snowflake_channel::AuthChannel;
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent, EmitterSlot};
use snowflake_core::{
    ChainMemo, ChannelId, Delegation, Principal, Proof, Tag, Time, Validity, VerifyCtx,
};
use snowflake_crypto::PublicKey;
use snowflake_sexpr::Sexp;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// Information about the authenticated caller, passed to implementations.
#[derive(Debug, Clone)]
pub struct CallerInfo {
    /// The principal the request is attributed to (`K₂`, or
    /// `K₂ | quotee` for quoting callers).
    pub speaker: Principal,
    /// The channel the request arrived on.
    pub channel: ChannelId,
}

/// A remote object: issuer, method→restriction mapping, and implementation.
///
/// "The server programmer defines the object server key `K_S` and the
/// mapping from method invocation to restriction set (T) for a server
/// object, then prefixes each Remote method with calls to a generic
/// `checkAuth()`."  Here the framework itself calls `check_auth` before
/// `invoke`, which makes it impossible to leave a method unprotected — the
/// paper's motivation for automating the injection.
pub trait RemoteObject: Send + Sync {
    /// The principal that controls this object (the paper's `K_S`).
    fn issuer(&self) -> Principal;

    /// Maps an invocation to its minimum restriction set `T`.
    ///
    /// The default is the singleton request
    /// `(rmi (object o) (method m))`.
    fn restriction(&self, invocation: &Invocation) -> Tag {
        method_tag(&invocation.object, &invocation.method)
    }

    /// The implementation, called only after authorization succeeded.
    fn invoke(&self, invocation: &Invocation, caller: &CallerInfo) -> Result<Sexp, RmiFault>;
}

/// The standard restriction tag for an RMI method.
pub fn method_tag(object: &str, method: &str) -> Tag {
    Tag::named(
        "rmi",
        vec![
            Tag::named("object", vec![Tag::atom(object)]),
            Tag::named("method", vec![Tag::atom(method)]),
        ],
    )
}

/// Statistics about the server's proof cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProofCacheStats {
    /// Cached (verified) proofs held.
    pub proofs: usize,
    /// `check_auth` calls answered from cache.
    pub hits: u64,
    /// `check_auth` calls that faulted for want of proof.
    pub misses: u64,
}

/// One verified proof in the cache.
struct CachedProof {
    conclusion: Delegation,
    /// Hashes of the certificates the proof depends on — its revocation
    /// provenance, consulted by [`RmiServer::invalidate_cert`] and
    /// recorded in grant audit events.  Shared (`Arc`) so the hot path
    /// hands it out without an allocation inside the cache lock.
    certs: Arc<[snowflake_core::HashVal]>,
    #[expect(dead_code, reason = "retained for audit trails")]
    proof: Proof,
}

/// The RMI server: object registry, proof cache, and per-connection loop.
pub struct RmiServer {
    objects: Mutex<HashMap<String, Arc<dyn RemoteObject>>>,
    /// Objects served without authorization (the "basic RMI" baseline of
    /// the paper's Figure 6 measurements).
    open_objects: Mutex<HashMap<String, Arc<dyn RemoteObject>>>,
    /// Verified proofs keyed by subject principal.
    cache: Mutex<HashMap<Principal, Vec<CachedProof>>>,
    /// Bumped by `invalidate_cert` while holding the cache lock;
    /// `receive_proof` re-reads it under the same lock before caching, so
    /// a revocation push landing mid-verification cannot be resurrected
    /// by the subsequent insert.
    cache_epoch: std::sync::atomic::AtomicU64,
    stats: Mutex<ProofCacheStats>,
    /// Base context cloned per connection (carries revocation data).
    base_ctx: Mutex<VerifyCtx>,
    clock: fn() -> Time,
    /// Audit emitter; every `check_auth` verdict, proof receipt, and
    /// connection shed is recorded through it (surface `rmi`).
    audit: EmitterSlot,
    /// Invocation latency (`sf_request_duration_seconds{surface="rmi"}`),
    /// recorded around every dispatch.
    latency: Arc<snowflake_metrics::LatencyHistogram>,
}

impl RmiServer {
    /// Creates an empty server using wall-clock time.
    pub fn new() -> Arc<RmiServer> {
        Self::with_clock(Time::now)
    }

    /// Creates a server with an injected clock (tests and benches).
    pub fn with_clock(clock: fn() -> Time) -> Arc<RmiServer> {
        Arc::new(RmiServer {
            objects: Mutex::new(HashMap::new()),
            open_objects: Mutex::new(HashMap::new()),
            cache: Mutex::new(HashMap::new()),
            cache_epoch: std::sync::atomic::AtomicU64::new(0),
            stats: Mutex::new(ProofCacheStats::default()),
            // Proof verification goes through a verified-chain memo:
            // reconnecting clients re-submitting a known chain skip the
            // exponentiations.
            base_ctx: Mutex::new(
                VerifyCtx::at(clock()).with_chain_memo(Arc::new(ChainMemo::new(1024))),
            ),
            clock,
            audit: EmitterSlot::new(),
            latency: snowflake_metrics::request_histogram("rmi"),
        })
    }

    /// Attaches an audit emitter recording this server's decisions.
    pub fn set_audit_emitter(&self, emitter: Arc<dyn AuditEmitter>) {
        self.audit.set(emitter);
    }

    /// Emits an audit event, building it only when an emitter is attached.
    fn audit(&self, build: impl FnOnce() -> DecisionEvent) {
        self.audit.emit_with(build);
    }

    /// The revocation epoch this server currently decides against.
    fn revocation_epoch(&self) -> u64 {
        self.base_ctx.plock().revocation_epoch()
    }

    /// Registers an object served *without* authorization.
    ///
    /// Exists only to reproduce the paper's "basic RMI" baseline; real
    /// services should use [`RmiServer::register`].
    pub fn register_open(&self, name: &str, object: Arc<dyn RemoteObject>) {
        assert_ne!(name, PROOF_RECIPIENT, "{PROOF_RECIPIENT} is reserved");
        self.open_objects.plock().insert(name.to_string(), object);
    }

    /// Registers a remote object under `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` collides with the reserved proof-recipient object.
    pub fn register(&self, name: &str, object: Arc<dyn RemoteObject>) {
        assert_ne!(name, PROOF_RECIPIENT, "{PROOF_RECIPIENT} is reserved");
        self.objects.plock().insert(name.to_string(), object);
    }

    /// Installs revocation data shared by all connections.
    pub fn base_ctx(&self) -> std::sync::MutexGuard<'_, VerifyCtx> {
        self.base_ctx.plock()
    }

    /// Proof-cache statistics.
    pub fn cache_stats(&self) -> ProofCacheStats {
        let mut s = *self.stats.plock();
        s.proofs = self.cache.plock().values().map(Vec::len).sum();
        s
    }

    /// The verified-chain memo's counters — the operator-facing snapshot
    /// of this surface's memo hit ratio (zeroes if the memo was detached).
    pub fn memo_stats(&self) -> snowflake_core::MemoStats {
        self.chain_memo().map(|m| m.stats()).unwrap_or_default()
    }

    /// Registers scrape-time callbacks exposing [`ProofCacheStats`]
    /// under `sf_rmi_*` (collector id `"rmi"`) plus the server's
    /// verified-chain memo under `sf_chain_memo_*{surface="rmi"}` — the
    /// same counters [`cache_stats`](Self::cache_stats) and
    /// [`memo_stats`](Self::memo_stats) read.
    pub fn register_metrics(self: &Arc<Self>, registry: &snowflake_metrics::Registry) {
        use snowflake_metrics::Sample;
        registry.set_help(
            "sf_rmi_proof_cache_hits_total",
            "check_auth calls answered from the verified-proof cache",
        );
        let server = Arc::downgrade(self);
        registry.register_collector(
            "rmi",
            Arc::new(move |out: &mut Vec<Sample>| {
                let Some(server) = server.upgrade() else { return };
                let s = server.cache_stats();
                out.push(Sample::gauge("sf_rmi_proof_cache_entries", &[], s.proofs as f64));
                out.push(Sample::counter("sf_rmi_proof_cache_hits_total", &[], s.hits));
                out.push(Sample::counter("sf_rmi_proof_cache_misses_total", &[], s.misses));
            }),
        );
        if let Some(memo) = self.chain_memo() {
            memo.register_metrics(registry, "rmi");
        }
    }

    /// Drops all cached proofs (benchmarks use this to force re-submission).
    pub fn forget_proofs(&self) {
        self.cache.plock().clear();
    }

    /// Attaches a pluggable revocation source (e.g. a freshness agent)
    /// consulted by every connection's verification context.
    pub fn set_revocation_source(
        &self,
        source: std::sync::Arc<dyn snowflake_core::RevocationSource>,
    ) {
        self.base_ctx.plock().set_revocation_source(source);
    }

    /// Drops every cached proof that depended on the certificate with this
    /// hash, returning how many were evicted.  After a revocation push the
    /// `check_auth` fast path faults again, forcing clients to re-prove —
    /// which the verifier then rejects against the fresh CRL.  Unrelated
    /// cached proofs keep answering; no flush, no restart.
    pub fn invalidate_cert(&self, cert_hash: &snowflake_core::HashVal) -> usize {
        let mut cache = self.cache.plock();
        // Bumped under the lock: an in-flight `receive_proof` that read
        // the old epoch will re-check under this lock and skip caching.
        self.cache_epoch
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let mut evicted = 0;
        cache.retain(|_, entries| {
            let before = entries.len();
            entries.retain(|e| !e.certs.contains(cert_hash));
            evicted += before - entries.len();
            !entries.is_empty()
        });
        drop(cache);
        if let Some(memo) = self.base_ctx.plock().chain_memo() {
            evicted += memo.evict_cert(cert_hash);
        }
        evicted
    }

    /// The verified-chain memo this server's verifications consult
    /// (exposed for counters and shared wiring).
    pub fn chain_memo(&self) -> Option<Arc<ChainMemo>> {
        self.base_ctx.plock().chain_memo().cloned()
    }

    /// Hands a connection to the runtime's worker pool, the production
    /// accept path: each admitted connection runs
    /// [`RmiServer::serve_connection`] on a pooled worker.
    ///
    /// Admission is bounded.  When the pool is saturated (or shutting
    /// down) the connection is **shed**: the peer receives one
    /// [`RmiFault::Busy`] reply — the RMI analogue of HTTP 503 — and the
    /// channel is dropped, instead of queueing forever.  The shed is
    /// counted in the pool's [`snowflake_runtime::RuntimeStats`].
    ///
    /// One pooled job owns the connection for its lifetime, so an idle
    /// peer occupies a worker until it hangs up or its channel's `recv`
    /// fails.  Channels over TCP should therefore bound reads (e.g.
    /// `TcpTransport::set_read_timeout`) before being wrapped, or
    /// `workers` parked clients can exhaust the worker budget.
    pub fn serve_pooled(
        self: &Arc<Self>,
        pool: &snowflake_runtime::WorkerPool,
        mut channel: Box<dyn AuthChannel>,
    ) -> Result<(), snowflake_runtime::SubmitError> {
        match pool.try_permit() {
            Ok(permit) => {
                let server = Arc::clone(self);
                permit.submit(move || {
                    let _ = server.serve_connection(&mut *channel);
                });
                Ok(())
            }
            Err(e) => {
                // The permit was refused while we still hold the channel:
                // say BUSY on the wire before hanging up.
                self.audit(|| {
                    DecisionEvent::new(
                        (self.clock)(),
                        "rmi",
                        Decision::Shed,
                        "connection",
                        "serve",
                        &e.to_string(),
                    )
                });
                let reply = RmiReply::Fault(RmiFault::Busy(e.to_string()));
                let _ = channel.send(&reply.to_sexp().canonical());
                Err(e)
            }
        }
    }

    /// Serves one connection until the peer closes it.
    ///
    /// Each received frame is one invocation; each reply is one frame.
    pub fn serve_connection(self: &Arc<Self>, channel: &mut dyn AuthChannel) -> io::Result<()> {
        loop {
            let frame = match channel.recv() {
                Ok(f) => f,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            };
            let reply = self.handle_frame(&frame, channel);
            channel.send(&reply.to_sexp().canonical())?;
        }
    }

    /// Serves RMI over TCP through the connection reactor.
    ///
    /// The accept path is split to match where the cost is: the
    /// secure-channel handshake (public-key work, blocking reads) runs as
    /// one offloaded job on a pooled worker, and then the socket — with
    /// its established [`RecordCrypto`] — is adopted by the reactor,
    /// which parks it between invocations.  An idle authenticated peer
    /// costs a few kilobytes of reactor state instead of a worker, so the
    /// worker budget bounds *concurrent invocations*, not open sessions.
    ///
    /// Sheds stay on one ledger: a saturated pool at invocation time
    /// sends a sealed [`RmiFault::Busy`] (counted by the pool), while
    /// reactor-level refusals (parked cap, drain) are counted per-surface
    /// in the runtime's shed ledger, and every shed is audited under
    /// surface `rmi` exactly like [`RmiServer::serve_pooled`]'s.
    ///
    /// The returned handle [`waits`](snowflake_runtime::ListenerHandle::wait)
    /// until shutdown drains the listener.
    pub fn serve_reactor(
        self: &Arc<Self>,
        listener: std::net::TcpListener,
        runtime: &Arc<snowflake_runtime::ServerRuntime>,
        key: snowflake_crypto::KeyPair,
        session_cache: Option<snowflake_channel::SessionCache>,
    ) -> io::Result<snowflake_runtime::ListenerHandle> {
        use snowflake_channel::{SecureChannel, TcpTransport};
        use snowflake_runtime::{Accepted, Surface};

        let reactor = runtime.reactor();
        let audit_server = Arc::clone(self);
        let surface = Surface::new("rmi").with_on_shed(move |detail| {
            audit_server.audit(|| {
                DecisionEvent::new(
                    (audit_server.clock)(),
                    "rmi",
                    Decision::Shed,
                    "connection",
                    "serve",
                    detail,
                )
            });
        });
        let server = Arc::clone(self);
        reactor.register_listener(
            listener,
            surface,
            Box::new(move || {
                let server = Arc::clone(&server);
                let key = key.clone();
                let cache = session_cache.clone();
                Accepted::Offload(Box::new(move |stream, reactor, surface| {
                    // The handshake needs blocking reads; run it over a
                    // dup'd fd so the original can be handed (nonblocking)
                    // to the reactor afterwards.  The read timeout bounds
                    // how long a stalled handshake pins this worker; it is
                    // moot once the socket goes nonblocking under epoll.
                    let handshaken = stream.try_clone().and_then(|dup| {
                        let transport = TcpTransport::new(dup);
                        let _ = transport
                            .set_read_timeout(Some(std::time::Duration::from_secs(10)));
                        SecureChannel::server(
                            Box::new(transport),
                            &key,
                            cache.as_ref(),
                            &mut snowflake_crypto::rand_bytes,
                        )
                    });
                    match handshaken {
                        Ok(channel) => {
                            let parts = channel.into_parts();
                            drop(parts.transport); // the dup; the reactor keeps `stream`
                            let driver = RmiConnDriver {
                                server,
                                crypto: parts.crypto,
                                identity: IdentityChannel {
                                    id: parts.channel_id,
                                    peer: parts.peer_key,
                                    binding: parts.peer_binding,
                                },
                            };
                            // A refusal here (drain, parked cap) is shed,
                            // audited, and counted by `adopt` itself.
                            let _ = reactor.adopt(stream, surface, Box::new(driver));
                        }
                        Err(_) => {
                            // Handshake failure is the peer's problem, not
                            // load: drop the connection without a shed.
                        }
                    }
                }))
            }),
        )
    }

    /// Handles a single raw frame (exposed for benchmarks that drive the
    /// server without threads).
    pub fn handle_frame(self: &Arc<Self>, frame: &[u8], channel: &dyn AuthChannel) -> RmiReply {
        let sexp = match Sexp::parse(frame) {
            Ok(s) => s,
            Err(e) => return RmiReply::Fault(RmiFault::Application(format!("parse: {e}"))),
        };
        let invocation = match Invocation::from_sexp(&sexp) {
            Ok(i) => i,
            Err(e) => return RmiReply::Fault(RmiFault::Application(format!("decode: {e}"))),
        };
        self.dispatch(&invocation, channel)
    }

    /// Dispatches a decoded invocation.
    pub fn dispatch(
        self: &Arc<Self>,
        invocation: &Invocation,
        channel: &dyn AuthChannel,
    ) -> RmiReply {
        let _timer = self.latency.start_timer();
        if invocation.object == PROOF_RECIPIENT {
            return self.receive_proof(invocation, channel);
        }
        // Unprotected baseline objects bypass check_auth entirely.
        if let Some(object) = self.open_objects.plock().get(&invocation.object).cloned() {
            let caller = CallerInfo {
                speaker: Principal::Channel(channel.channel_id()),
                channel: channel.channel_id(),
            };
            return match object.invoke(invocation, &caller) {
                Ok(v) => RmiReply::Return(v),
                Err(f) => RmiReply::Fault(f),
            };
        }
        let Some(object) = self.objects.plock().get(&invocation.object).cloned() else {
            return RmiReply::Fault(RmiFault::NoSuchObject(invocation.object.clone()));
        };

        // The speaker: K₂ from the channel, wrapped in a Quoting principal
        // when the caller claims to quote someone (paper §4.2).
        let Some(peer) = channel.peer_key() else {
            self.audit(|| {
                DecisionEvent::new(
                    (self.clock)(),
                    "rmi",
                    Decision::Deny,
                    &invocation.object,
                    &invocation.method,
                    "need-authorization: unauthenticated channel",
                )
                .with_epoch(self.revocation_epoch())
            });
            return RmiReply::Fault(RmiFault::NeedAuthorization {
                issuer: object.issuer(),
                tag: object.restriction(invocation),
            });
        };
        let speaker = match &invocation.quoting {
            None => Principal::key(peer),
            Some(q) => Principal::quoting(Principal::key(peer), q.clone()),
        };

        // check_auth(): find a cached, already-verified proof for this
        // subject whose conclusion covers the request — the fast path
        // measured in Figure 6.
        let tag = object.restriction(invocation);
        let now = (self.clock)();
        let Some(certs) = self.check_auth(&speaker, &object.issuer(), &tag, now) else {
            self.stats.plock().misses += 1;
            self.audit(|| {
                DecisionEvent::new(
                    now,
                    "rmi",
                    Decision::Deny,
                    &invocation.object,
                    &invocation.method,
                    "need-authorization: no covering proof",
                )
                .with_subject(speaker.clone())
                .with_epoch(self.revocation_epoch())
            });
            return RmiReply::Fault(RmiFault::NeedAuthorization {
                issuer: object.issuer(),
                tag,
            });
        };
        self.stats.plock().hits += 1;
        self.audit(|| {
            DecisionEvent::new(
                now,
                "rmi",
                Decision::Grant,
                &invocation.object,
                &invocation.method,
                "proof-cache",
            )
            .with_subject(speaker.clone())
            .with_certs(certs.to_vec())
            .with_epoch(self.revocation_epoch())
        });

        let caller = CallerInfo {
            speaker,
            channel: channel.channel_id(),
        };
        match object.invoke(invocation, &caller) {
            Ok(v) => RmiReply::Return(v),
            Err(f) => RmiReply::Fault(f),
        }
    }

    /// Finds a cached, verified proof covering the request; the returned
    /// certificate hashes are the matched proof's provenance, recorded in
    /// the grant's audit event (an `Arc` clone, so the Figure 6 hot path
    /// allocates nothing under the cache lock).
    fn check_auth(
        &self,
        speaker: &Principal,
        issuer: &Principal,
        tag: &Tag,
        now: Time,
    ) -> Option<Arc<[snowflake_core::HashVal]>> {
        let cache = self.cache.plock();
        let entries = cache.get(speaker)?;
        entries
            .iter()
            .find(|e| {
                e.conclusion.issuer == *issuer
                    && e.conclusion.tag.permits(tag)
                    && e.conclusion.validity.contains(now)
            })
            .map(|e| Arc::clone(&e.certs))
    }

    /// The proof-recipient object: verifies a submitted proof against this
    /// connection's channel bindings and caches it by subject.
    fn receive_proof(
        self: &Arc<Self>,
        invocation: &Invocation,
        channel: &dyn AuthChannel,
    ) -> RmiReply {
        let Some(proof_sexp) = invocation.args.first() else {
            return RmiReply::Fault(RmiFault::Application("missing proof argument".into()));
        };
        let proof = match Proof::from_sexp(proof_sexp) {
            Ok(p) => p,
            Err(e) => return RmiReply::Fault(RmiFault::Application(format!("bad proof: {e}"))),
        };

        // Build this connection's verification context: base (revocation
        // data) + the channel binding this endpoint itself witnessed.
        let epoch = self.cache_epoch.load(std::sync::atomic::Ordering::SeqCst);
        let mut ctx = self.base_ctx.plock().clone();
        ctx.now = (self.clock)();
        if let Some(binding) = channel.peer_binding() {
            ctx.assume(&binding);
        }

        if let Err(e) = ctx.verify_cached(&proof) {
            self.audit(|| {
                DecisionEvent::new(
                    ctx.now,
                    "rmi",
                    Decision::Deny,
                    PROOF_RECIPIENT,
                    "receive-proof",
                    &format!("proof rejected: {e}"),
                )
                .with_subject(proof.conclusion().subject)
                .with_certs(proof.cert_hashes())
                .with_epoch(ctx.revocation_epoch())
            });
            return RmiReply::Fault(RmiFault::NotAuthorized(format!("proof rejected: {e}")));
        }
        let conclusion = proof.conclusion();
        let certs = proof.cert_hashes();
        self.audit(|| {
            DecisionEvent::new(
                ctx.now,
                "rmi",
                Decision::Grant,
                PROOF_RECIPIENT,
                "receive-proof",
                "proof verified and digested",
            )
            .with_subject(conclusion.subject.clone())
            .with_certs(certs.clone())
            .with_epoch(ctx.revocation_epoch())
        });
        {
            // Skip caching when an invalidation landed during
            // verification: the verdict used pre-revocation state.  The
            // next `check_auth` then faults and the client must re-prove
            // against the fresh CRL.
            let mut cache = self.cache.plock();
            if self.cache_epoch.load(std::sync::atomic::Ordering::SeqCst) == epoch {
                cache
                    .entry(conclusion.subject.clone())
                    .or_default()
                    .push(CachedProof {
                        conclusion,
                        certs: certs.into(),
                        proof,
                    });
            }
        }
        RmiReply::Return(Sexp::from("ok"))
    }
}

/// The identity facts of an established channel, detached from any
/// transport.
///
/// Under the reactor the socket bytes never pass through an
/// [`AuthChannel`]: the reactor owns I/O and the driver owns the record
/// crypto.  What [`RmiServer::dispatch`] still consumes from its channel
/// argument is only *who the peer is* — channel id, peer key, and the
/// `K_CH ⇒ K_peer` binding — which this adapter carries.  Its `send` and
/// `recv` are unreachable by construction and error out if called.
struct IdentityChannel {
    id: ChannelId,
    peer: Option<PublicKey>,
    binding: Option<Delegation>,
}

impl AuthChannel for IdentityChannel {
    fn send(&mut self, _msg: &[u8]) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "identity-only channel: the reactor owns the socket",
        ))
    }
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "identity-only channel: the reactor owns the socket",
        ))
    }
    fn channel_id(&self) -> ChannelId {
        self.id.clone()
    }
    fn peer_key(&self) -> Option<&PublicKey> {
        self.peer.as_ref()
    }
    fn peer_binding(&self) -> Option<Delegation> {
        self.binding.clone()
    }
}

/// Per-connection state the reactor keeps for an RMI session: the record
/// crypto from the handshake plus the peer's identity.  One frame is one
/// sealed invocation; one reply is one sealed record, and the connection
/// parks between them.
struct RmiConnDriver {
    server: Arc<RmiServer>,
    crypto: snowflake_channel::RecordCrypto,
    identity: IdentityChannel,
}

/// Wraps a sealed record in the `TcpTransport` wire format (4-byte
/// big-endian length prefix).
fn prefixed(record: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + record.len());
    out.extend_from_slice(&(record.len() as u32).to_be_bytes());
    out.extend_from_slice(record);
    out
}

impl snowflake_runtime::ConnDriver for RmiConnDriver {
    fn scan(&mut self, buf: &[u8]) -> snowflake_runtime::FrameScan {
        use snowflake_runtime::FrameScan;
        if buf.len() < 4 {
            return FrameScan::Partial;
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > snowflake_channel::transport::MAX_FRAME {
            return FrameScan::Invalid("frame exceeds MAX_FRAME");
        }
        if buf.len() < 4 + len {
            FrameScan::Partial
        } else {
            FrameScan::Complete(4 + len)
        }
    }

    fn handle(&mut self, frame: Vec<u8>) -> snowflake_runtime::ReadyOutcome {
        use snowflake_runtime::ReadyOutcome;
        // A record that fails to authenticate means the stream is corrupt
        // or hostile; there is no honest reply to give on it.
        let plaintext = match self.crypto.open(&frame[4..]) {
            Ok(p) => p,
            Err(_) => return ReadyOutcome::Close,
        };
        let reply = self.server.handle_frame(&plaintext, &self.identity);
        let sealed = self.crypto.seal(&reply.to_sexp().canonical());
        ReadyOutcome::Reply(prefixed(&sealed))
    }

    fn busy_reply(&mut self) -> Option<Vec<u8>> {
        let reply = RmiReply::Fault(RmiFault::Busy("worker pool saturated".into()));
        let sealed = self.crypto.seal(&reply.to_sexp().canonical());
        Some(prefixed(&sealed))
    }
}

/// A trivial remote object for tests and benchmarks: returns the contents
/// of named in-memory files (the paper's Figure 6 test operation is "a
/// Remote object that returns the contents of a file").
pub struct FileObject {
    issuer: Principal,
    files: HashMap<String, Vec<u8>>,
}

impl FileObject {
    /// Creates a file object controlled by `issuer` serving `files`.
    pub fn new(issuer: Principal, files: HashMap<String, Vec<u8>>) -> FileObject {
        FileObject { issuer, files }
    }
}

impl RemoteObject for FileObject {
    fn issuer(&self) -> Principal {
        self.issuer.clone()
    }

    fn invoke(&self, invocation: &Invocation, _caller: &CallerInfo) -> Result<Sexp, RmiFault> {
        match invocation.method.as_str() {
            "read" => {
                let name = invocation
                    .args
                    .first()
                    .and_then(Sexp::as_str)
                    .ok_or_else(|| RmiFault::Application("read needs a file name".into()))?;
                match self.files.get(name) {
                    Some(data) => Ok(Sexp::atom(data.clone())),
                    None => Err(RmiFault::Application(format!("no such file {name}"))),
                }
            }
            other => Err(RmiFault::NoSuchMethod(other.into())),
        }
    }
}

/// Helper: the default validity window for channel delegations issued by
/// clients (kept short; it covers a session, not a lifetime).
pub fn session_validity(now: Time) -> Validity {
    Validity::until(now.plus(3600))
}

/// Re-exported convenience: the speaker principal the server will derive for
/// a connection (used by clients to phrase delegations).
pub fn speaker_for(peer: &PublicKey, quoting: Option<&Principal>) -> Principal {
    match quoting {
        None => Principal::key(peer),
        Some(q) => Principal::quoting(Principal::key(peer), q.clone()),
    }
}
