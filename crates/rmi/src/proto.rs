//! The RMI wire protocol: invocations, replies, and faults as S-expressions.

use snowflake_core::{Principal, Proof, Tag};
use snowflake_sexpr::{ParseError, Sexp};

/// A method invocation on a named remote object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The remote object's registry name.
    pub object: String,
    /// The method to call.
    pub method: String,
    /// Arguments (application-defined S-expressions).
    pub args: Vec<Sexp>,
    /// When set, the caller claims to quote this principal (gateway mode);
    /// the server associates the request with `channel | quoting`.
    pub quoting: Option<Principal>,
}

impl Invocation {
    /// Serializes to `(invoke (object o) (method m) (args …) [(quoting p)])`.
    pub fn to_sexp(&self) -> Sexp {
        let mut body = vec![
            Sexp::tagged("object", vec![Sexp::from(self.object.as_str())]),
            Sexp::tagged("method", vec![Sexp::from(self.method.as_str())]),
            Sexp::tagged("args", self.args.clone()),
        ];
        if let Some(q) = &self.quoting {
            body.push(Sexp::tagged("quoting", vec![q.to_sexp()]));
        }
        Sexp::tagged("invoke", body)
    }

    /// Parses the form produced by [`Invocation::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Invocation, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("invoke") {
            return Err(bad("expected (invoke …)"));
        }
        let object = e
            .find_value("object")
            .and_then(Sexp::as_str)
            .ok_or_else(|| bad("missing object"))?
            .to_string();
        let method = e
            .find_value("method")
            .and_then(Sexp::as_str)
            .ok_or_else(|| bad("missing method"))?
            .to_string();
        let args = e
            .find("args")
            .and_then(Sexp::tag_body)
            .map(<[Sexp]>::to_vec)
            .unwrap_or_default();
        let quoting = e
            .find_value("quoting")
            .map(Principal::from_sexp)
            .transpose()?;
        Ok(Invocation {
            object,
            method,
            args,
            quoting,
        })
    }
}

/// Faults a server may raise instead of a return value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmiFault {
    /// The `SfNeedAuthorizationException` of Figure 4: the caller must prove
    /// it speaks for `issuer` regarding at least `tag`.
    NeedAuthorization {
        /// The issuer (`K_S`) the caller must speak for.
        issuer: Principal,
        /// The minimum restriction set (`T`).
        tag: Tag,
    },
    /// Authorization was presented but insufficient (403-equivalent).
    NotAuthorized(String),
    /// No object registered under the requested name.
    NoSuchObject(String),
    /// Object exists but has no such method.
    NoSuchMethod(String),
    /// Application-level error from the method implementation.
    Application(String),
    /// The server's runtime shed the connection or call (worker pool
    /// saturated or shutting down) — the RMI analogue of HTTP 503.  The
    /// request was *not* processed; the client may retry elsewhere or
    /// later.
    Busy(String),
}

impl RmiFault {
    /// Serializes to `(fault <kind> …)`.
    pub fn to_sexp(&self) -> Sexp {
        match self {
            RmiFault::NeedAuthorization { issuer, tag } => Sexp::tagged(
                "fault",
                vec![
                    Sexp::from("need-authorization"),
                    Sexp::tagged("issuer", vec![issuer.to_sexp()]),
                    tag.to_sexp(),
                ],
            ),
            RmiFault::NotAuthorized(m) => Sexp::tagged(
                "fault",
                vec![Sexp::from("not-authorized"), Sexp::from(m.as_str())],
            ),
            RmiFault::NoSuchObject(m) => Sexp::tagged(
                "fault",
                vec![Sexp::from("no-such-object"), Sexp::from(m.as_str())],
            ),
            RmiFault::NoSuchMethod(m) => Sexp::tagged(
                "fault",
                vec![Sexp::from("no-such-method"), Sexp::from(m.as_str())],
            ),
            RmiFault::Application(m) => Sexp::tagged(
                "fault",
                vec![Sexp::from("application"), Sexp::from(m.as_str())],
            ),
            RmiFault::Busy(m) => {
                Sexp::tagged("fault", vec![Sexp::from("busy"), Sexp::from(m.as_str())])
            }
        }
    }

    /// Parses the form produced by [`RmiFault::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<RmiFault, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        let body = e.tag_body().ok_or_else(|| bad("fault body"))?;
        let kind = body
            .first()
            .and_then(Sexp::as_str)
            .ok_or_else(|| bad("fault kind"))?;
        let text = || body.get(1).and_then(Sexp::as_str).unwrap_or("").to_string();
        match kind {
            "need-authorization" => {
                let issuer = Principal::from_sexp(
                    e.find_value("issuer").ok_or_else(|| bad("fault issuer"))?,
                )?;
                let tag = Tag::parse(e.find("tag").ok_or_else(|| bad("fault tag"))?)?;
                Ok(RmiFault::NeedAuthorization { issuer, tag })
            }
            "not-authorized" => Ok(RmiFault::NotAuthorized(text())),
            "no-such-object" => Ok(RmiFault::NoSuchObject(text())),
            "no-such-method" => Ok(RmiFault::NoSuchMethod(text())),
            "application" => Ok(RmiFault::Application(text())),
            "busy" => Ok(RmiFault::Busy(text())),
            _ => Err(bad("unknown fault kind")),
        }
    }
}

/// A server's reply to an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmiReply {
    /// Successful return value.
    Return(Sexp),
    /// Fault.
    Fault(RmiFault),
}

impl RmiReply {
    /// Serializes the reply.
    pub fn to_sexp(&self) -> Sexp {
        match self {
            RmiReply::Return(v) => Sexp::tagged("return", vec![v.clone()]),
            RmiReply::Fault(f) => f.to_sexp(),
        }
    }

    /// Parses a reply.
    pub fn from_sexp(e: &Sexp) -> Result<RmiReply, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        match e.tag_name() {
            Some("return") => {
                let body = e.tag_body().ok_or_else(|| bad("return body"))?;
                if body.len() != 1 {
                    return Err(bad("return takes one value"));
                }
                Ok(RmiReply::Return(body[0].clone()))
            }
            Some("fault") => Ok(RmiReply::Fault(RmiFault::from_sexp(e)?)),
            _ => Err(bad("expected return or fault")),
        }
    }
}

/// The reserved object name proofs are submitted to (Figure 4's
/// `proofRecipient`).
pub const PROOF_RECIPIENT: &str = "proof-recipient";

/// Builds the proof-submission invocation.
pub fn submit_proof_invocation(proof: &Proof) -> Invocation {
    Invocation {
        object: PROOF_RECIPIENT.into(),
        method: "submit".into(),
        args: vec![proof.to_sexp()],
        quoting: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_sexpr::sexp;

    #[test]
    fn invocation_roundtrip() {
        let inv = Invocation {
            object: "database".into(),
            method: "select".into(),
            args: vec![sexp!["where", ["owner", "alice"]]],
            quoting: None,
        };
        assert_eq!(Invocation::from_sexp(&inv.to_sexp()).unwrap(), inv);
    }

    #[test]
    fn invocation_with_quoting_roundtrip() {
        let inv = Invocation {
            object: "database".into(),
            method: "select".into(),
            args: vec![],
            quoting: Some(Principal::message(b"client-identity")),
        };
        let back = Invocation::from_sexp(&inv.to_sexp()).unwrap();
        assert_eq!(back, inv);
        assert!(back.quoting.is_some());
    }

    #[test]
    fn fault_roundtrips() {
        let faults = vec![
            RmiFault::NeedAuthorization {
                issuer: Principal::message(b"ks"),
                tag: Tag::named("db", vec![]),
            },
            RmiFault::NotAuthorized("proof expired".into()),
            RmiFault::NoSuchObject("ghost".into()),
            RmiFault::NoSuchMethod("frobnicate".into()),
            RmiFault::Application("row not found".into()),
            RmiFault::Busy("worker pool saturated".into()),
        ];
        for f in faults {
            let e = f.to_sexp();
            assert_eq!(RmiFault::from_sexp(&e).unwrap(), f);
            // And through RmiReply.
            let r = RmiReply::Fault(f.clone());
            assert_eq!(RmiReply::from_sexp(&r.to_sexp()).unwrap(), r);
        }
    }

    #[test]
    fn reply_return_roundtrip() {
        let r = RmiReply::Return(sexp!["rows", ["r1"], ["r2"]]);
        assert_eq!(RmiReply::from_sexp(&r.to_sexp()).unwrap(), r);
    }

    #[test]
    fn malformed_rejected() {
        for src in [
            "(invoke)",
            "(fault)",
            "(fault martian)",
            "(return a b)",
            "(other)",
        ] {
            let e = Sexp::parse(src.as_bytes()).unwrap();
            assert!(
                Invocation::from_sexp(&e).is_err() || src != "(invoke)",
                "{src} as invocation"
            );
            assert!(
                RmiReply::from_sexp(&e).is_err() || src.starts_with("(return"),
                "{src}"
            );
        }
    }
}
