//! RMI over real TCP through the connection reactor: the handshake runs
//! as an offloaded pool job, the socket is then adopted and parked
//! between invocations (no worker per connection), session resumption
//! survives the split accept path, and a saturated pool answers a
//! sealed `Busy` fault at *invocation* time.

use snowflake_channel::{SecureChannel, SessionCache, TcpTransport};
use snowflake_core::{Principal, Time};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_prover::Prover;
use snowflake_rmi::{CallerInfo, Invocation, RemoteObject, RmiClient, RmiFault, RmiServer};
use snowflake_runtime::{PoolConfig, ServerRuntime};
use snowflake_sexpr::Sexp;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn fixed_clock() -> Time {
    Time(1_000)
}

fn keypair(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

/// An open/closed gate plus a count of callers currently parked on it.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicUsize,
}

impl Gate {
    fn closed() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn wait_entered(&self, n: usize) {
        wait_for(|| self.entered.load(Ordering::SeqCst) >= n);
    }
}

fn wait_for(mut cond: impl FnMut() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(start.elapsed().as_secs() < 10, "condition not reached in time");
        std::thread::yield_now();
    }
}

/// `wait` parks on the gate; `ping` returns immediately.  Registered
/// open so the tests exercise connection mechanics, not proof search.
struct GatedObject(Arc<Gate>);

impl RemoteObject for GatedObject {
    fn issuer(&self) -> Principal {
        Principal::message(b"reactor-test")
    }

    fn invoke(&self, invocation: &Invocation, _caller: &CallerInfo) -> Result<Sexp, RmiFault> {
        match invocation.method.as_str() {
            "wait" => {
                self.0.wait();
                Ok(Sexp::from("waited"))
            }
            "ping" => Ok(Sexp::from("pong")),
            other => Err(RmiFault::NoSuchMethod(other.into())),
        }
    }
}

/// Handshakes a secure channel to `addr`, returning it un-boxed so the
/// caller can inspect resumption before wrapping it in a client.
fn secure_connect(
    addr: std::net::SocketAddr,
    seed: &str,
    resume: Option<(&SessionCache, &str)>,
) -> SecureChannel {
    let transport = TcpTransport::new(TcpStream::connect(addr).unwrap());
    let key = keypair(seed);
    let mut rng = DetRng::new(format!("{seed}-rng").as_bytes());
    SecureChannel::client(Box::new(transport), Some(&key), resume, &mut |b| {
        rng.fill(b)
    })
    .unwrap()
}

fn client_for(channel: SecureChannel, seed: &str) -> RmiClient {
    RmiClient::with_clock(
        Box::new(channel),
        keypair(seed),
        Arc::new(Prover::new()),
        fixed_clock,
    )
}

/// Several authenticated sessions invoke over one 4-worker runtime; the
/// connections park in the reactor between calls (no worker held), and a
/// reconnecting client resumes its cached session through the offloaded
/// handshake path.
#[test]
fn reactor_parks_sessions_between_invocations() {
    let gate = Gate::closed();
    let server = RmiServer::with_clock(fixed_clock);
    server.register_open("gated", Arc::new(GatedObject(Arc::clone(&gate))));
    let runtime = ServerRuntime::new(PoolConfig::new("rmi-reactor", 4, 8));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_cache = SessionCache::new();
    let handle = server
        .serve_reactor(listener, &runtime, keypair("server"), Some(server_cache))
        .unwrap();

    // Three sessions, each making two invocations on the same socket.
    let mut clients: Vec<RmiClient> = (0..3)
        .map(|i| {
            let seed = format!("client-{i}");
            client_for(secure_connect(addr, &seed, None), &seed)
        })
        .collect();
    for c in &mut clients {
        for _ in 0..2 {
            assert_eq!(c.invoke("gated", "ping", vec![]).unwrap(), Sexp::from("pong"));
        }
    }

    // Between invocations every session is parked: sockets open, zero
    // workers in flight.
    wait_for(|| runtime.reactor_stats().parked == 3 && runtime.stats().in_flight == 0);
    assert!(runtime.reactor_stats().frames_dispatched >= 6);

    // A fourth client with a warm cache reconnects twice; the second
    // handshake resumes (no public-key operations) even though it runs
    // as an offloaded job on the far side.
    let client_cache = SessionCache::new();
    let first = secure_connect(addr, "resumer", Some((&client_cache, "rmi")));
    assert!(!first.was_resumed());
    let mut c = client_for(first, "resumer");
    assert_eq!(c.invoke("gated", "ping", vec![]).unwrap(), Sexp::from("pong"));
    drop(c);
    let second = secure_connect(addr, "resumer", Some((&client_cache, "rmi")));
    assert!(second.was_resumed(), "offloaded handshake must honor tickets");

    runtime.shutdown();
    handle.wait();
}

/// With the one worker parked mid-invocation and the queue full, a
/// further invocation on an *established* session is shed with a sealed
/// `Busy` fault — counted once, by the pool's drop counter.
#[test]
fn saturated_pool_seals_busy_at_invocation_time() {
    let gate = Gate::closed();
    let server = RmiServer::with_clock(fixed_clock);
    server.register_open("gated", Arc::new(GatedObject(Arc::clone(&gate))));
    let runtime = ServerRuntime::new(PoolConfig::new("rmi-busy", 1, 1));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = server
        .serve_reactor(listener, &runtime, keypair("server"), None)
        .unwrap();

    // Handshake all three sessions while the pool is still free (the
    // handshake itself is a pool job).
    let mut a = client_for(secure_connect(addr, "busy-a", None), "busy-a");
    let mut b = client_for(secure_connect(addr, "busy-b", None), "busy-b");
    let mut c = client_for(secure_connect(addr, "busy-c", None), "busy-c");
    let handshakes = runtime.stats().submitted;

    // A occupies the only worker; B fills the one queue slot.
    let a_thread =
        std::thread::spawn(move || a.invoke("gated", "wait", vec![]).expect("gated call"));
    gate.wait_entered(1);
    let b_thread =
        std::thread::spawn(move || b.invoke("gated", "ping", vec![]).expect("queued call"));
    wait_for(|| runtime.stats().submitted == handshakes + 2);

    // C's invocation is shed: a Busy fault sealed on its own session.
    match c.invoke("gated", "ping", vec![]) {
        Err(e) if e.is_busy() => {}
        other => panic!("expected a sealed Busy fault, got {other:?}"),
    }
    assert_eq!(runtime.stats().shed, 1, "one counted drop, one ledger");

    gate.open();
    assert_eq!(a_thread.join().unwrap(), Sexp::from("waited"));
    assert_eq!(b_thread.join().unwrap(), Sexp::from("pong"));

    runtime.shutdown();
    handle.wait();
}
