//! The RMI server on the bounded runtime: overload shedding (a saturated
//! pool answers `RmiFault::Busy` instead of queueing forever) and
//! graceful shutdown (admitted connections drain; new ones are refused).

use snowflake_channel::{PipeTransport, PlainChannel};
use snowflake_core::{Principal, Time};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_prover::Prover;
use snowflake_rmi::{
    CallerInfo, Invocation, RemoteObject, RmiClient, RmiError, RmiFault, RmiServer,
};
use snowflake_runtime::{PoolConfig, SubmitError, WorkerPool};
use snowflake_sexpr::Sexp;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn fixed_clock() -> Time {
    Time(1_000)
}

/// An open/closed gate plus a count of callers currently parked on it.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicUsize,
}

impl Gate {
    fn closed() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn wait_entered(&self, n: usize) {
        let start = std::time::Instant::now();
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(start.elapsed().as_secs() < 10, "gate never reached {n} entries");
            std::thread::yield_now();
        }
    }
}

/// `wait` parks on the gate until the test releases it; `ping` returns
/// immediately.  Registered open (the unauthorized baseline) so the test
/// exercises admission, not proof search.
struct GatedObject(Arc<Gate>);

impl RemoteObject for GatedObject {
    fn issuer(&self) -> Principal {
        Principal::message(b"pool-test")
    }

    fn invoke(&self, invocation: &Invocation, _caller: &CallerInfo) -> Result<Sexp, RmiFault> {
        match invocation.method.as_str() {
            "wait" => {
                self.0.wait();
                Ok(Sexp::from("waited"))
            }
            "ping" => Ok(Sexp::from("pong")),
            other => Err(RmiFault::NoSuchMethod(other.into())),
        }
    }
}

fn session_key(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

/// Admits one client connection through `serve_pooled`, returning the
/// client and the submission verdict.
fn connect(
    server: &Arc<RmiServer>,
    pool: &WorkerPool,
    label: &str,
) -> (RmiClient, Result<(), SubmitError>) {
    let (ct, st) = PipeTransport::bounded_pair(8);
    let verdict = server.serve_pooled(
        pool,
        Box::new(PlainChannel::new(st, &format!("{label}-server"))),
    );
    let client = RmiClient::with_clock(
        Box::new(PlainChannel::new(ct, &format!("{label}-client"))),
        session_key(label),
        Arc::new(Prover::new()),
        fixed_clock,
    );
    (client, verdict)
}

fn rig(gate: &Arc<Gate>) -> Arc<RmiServer> {
    let server = RmiServer::with_clock(fixed_clock);
    server.register_open("gated", Arc::new(GatedObject(Arc::clone(gate))));
    server
}

/// A saturated pool sheds the extra connection with a `Busy` fault the
/// client can observe, and the drop counters account for it; admitted
/// connections are unaffected.
#[test]
fn saturated_pool_answers_busy() {
    let gate = Gate::closed();
    let server = rig(&gate);
    let pool = WorkerPool::new(PoolConfig::new("rmi-shed", 1, 1));

    // Connection A occupies the only worker (parked on the gate)…
    let (mut a, verdict) = connect(&server, &pool, "conn-a");
    verdict.expect("first connection admitted");
    let a_thread = std::thread::spawn(move || {
        // Dropping the client afterwards closes A's connection, freeing
        // its worker for the queued connection B.
        a.invoke("gated", "wait", vec![]).expect("gated call completes")
    });
    gate.wait_entered(1);

    // …connection B fills the queue…
    let (mut b, verdict) = connect(&server, &pool, "conn-b");
    verdict.expect("second connection queued");

    // …and connection C is shed with a Busy fault on its own wire.
    let (mut c, verdict) = connect(&server, &pool, "conn-c");
    assert_eq!(verdict, Err(SubmitError::Busy));
    match c.invoke("gated", "ping", vec![]) {
        Err(e) if e.is_busy() => {}
        other => panic!("expected a Busy fault, got {other:?}"),
    }
    let stats = pool.stats();
    assert_eq!(stats.shed, 1, "the shed is counted");
    assert_eq!(stats.submitted, 2);

    // Releasing the gate lets A finish; the worker then serves B.
    gate.open();
    assert_eq!(a_thread.join().unwrap(), Sexp::from("waited"));
    assert_eq!(b.invoke("gated", "ping", vec![]).unwrap(), Sexp::from("pong"));
}

/// Shutdown drains: the in-flight call and the queued connection both
/// complete, while connections arriving after shutdown begins hear Busy.
#[test]
fn shutdown_drains_admitted_connections() {
    let gate = Gate::closed();
    let server = rig(&gate);
    let pool = WorkerPool::new(PoolConfig::new("rmi-drain", 1, 4));

    // A: in flight (parked on the gate).  B: admitted, still queued.
    let (mut a, verdict) = connect(&server, &pool, "drain-a");
    verdict.unwrap();
    let a_thread = std::thread::spawn(move || a.invoke("gated", "wait", vec![]).is_ok());
    gate.wait_entered(1);
    let (mut b, verdict) = connect(&server, &pool, "drain-b");
    verdict.unwrap();
    let b_thread = std::thread::spawn(move || b.invoke("gated", "ping", vec![]).is_ok());

    // Begin shutdown on a side thread (it blocks until the drain ends).
    let pool2 = Arc::clone(&pool);
    let closer = std::thread::spawn(move || pool2.shutdown());
    let start = std::time::Instant::now();
    while !pool.is_shutting_down() {
        assert!(start.elapsed().as_secs() < 10);
        std::thread::yield_now();
    }

    // New connections are refused with a Busy fault on the wire.
    let (mut late, verdict) = connect(&server, &pool, "drain-late");
    assert_eq!(verdict, Err(SubmitError::ShuttingDown));
    match late.invoke("gated", "ping", vec![]) {
        Err(e) if e.is_busy() => {}
        Err(RmiError::Io(_)) => {} // reply raced the channel teardown
        other => panic!("expected Busy/closed for a late connection, got {other:?}"),
    }

    // Release the gate: A completes, B is then served, the drain ends.
    gate.open();
    assert!(a_thread.join().unwrap(), "in-flight call must complete");
    assert!(b_thread.join().unwrap(), "queued connection must be served");
    closer.join().unwrap();
    assert_eq!(pool.stats().completed, 2);
}
