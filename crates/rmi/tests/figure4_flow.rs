//! End-to-end tests of the Figure 4 RMI authorization flow over real
//! channels: secure (ssh-like), local (broker-vouched), and plain.

use snowflake_channel::{LocalBroker, PipeTransport, SecureChannel};
use snowflake_core::{Certificate, Delegation, Principal, Tag, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_prover::Prover;
use snowflake_rmi::{FileObject, RmiClient, RmiError, RmiFault, RmiServer};
use snowflake_sexpr::Sexp;
use std::collections::HashMap;
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn tag(src: &str) -> Tag {
    Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

/// Server setup: a file object controlled by `server_key`, with the server
/// owner having granted `client_identity` delegable access.
struct Rig {
    server: Arc<RmiServer>,
    server_key: KeyPair,
    prover: Arc<Prover>,
}

fn rig() -> Rig {
    let server_key = kp("server");
    let client_identity = kp("client-identity");
    let mut rng = DetRng::new(b"rig");

    let server = RmiServer::with_clock(fixed_clock);
    let mut files = HashMap::new();
    files.insert("X".to_string(), b"the contents of file X".to_vec());
    server.register(
        "files",
        Arc::new(FileObject::new(Principal::key(&server_key.public), files)),
    );

    // The resource owner grants the client's identity key access, delegable
    // so the client can extend it to session keys.
    let grant = Delegation {
        subject: Principal::key(&client_identity.public),
        issuer: Principal::key(&server_key.public),
        tag: tag("(rmi (object files))"),
        validity: Validity::always(),
        delegable: true,
    };
    let cert = Certificate::issue(&server_key, grant, &mut |b| rng.fill(b));

    let mut prng = DetRng::new(b"prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_proof(snowflake_core::Proof::signed_cert(cert));
    prover.add_key(client_identity.clone());

    Rig {
        server,
        server_key,
        prover,
    }
}

/// Connects a client and server over the secure channel, serving RMI on a
/// background thread.
fn secure_pair(r: &Rig, session_key: &KeyPair) -> (RmiClient, std::thread::JoinHandle<()>) {
    let (ct, st) = PipeTransport::pair();
    let server = Arc::clone(&r.server);
    let server_key = r.server_key.clone();
    let handle = std::thread::spawn(move || {
        let mut rng = DetRng::new(b"srv-chan");
        let mut channel =
            SecureChannel::server(Box::new(st), &server_key, None, &mut |b| rng.fill(b)).unwrap();
        let _ = server.serve_connection(&mut channel);
    });
    let mut rng = DetRng::new(b"cli-chan");
    let channel =
        SecureChannel::client(Box::new(ct), Some(session_key), None, &mut |b| rng.fill(b)).unwrap();
    let client = RmiClient::with_clock(
        Box::new(channel),
        session_key.clone(),
        Arc::clone(&r.prover),
        fixed_clock,
    );
    (client, handle)
}

#[test]
fn full_figure4_retry_protocol() {
    let r = rig();
    let session_key = kp("session-k2");
    let (mut client, handle) = secure_pair(&r, &session_key);

    // First call: server faults NeedAuthorization; invoker builds the proof
    // K₂ ⇒ K_C ⇒ K_S, submits it, retries — all inside invoke().
    let result = client
        .invoke("files", "read", vec![Sexp::from("X")])
        .unwrap();
    assert_eq!(result.as_atom().unwrap(), b"the contents of file X");

    let stats = r.server.cache_stats();
    assert_eq!(stats.misses, 1, "exactly one need-authorization fault");
    assert_eq!(stats.hits, 1, "the retry hit the cache");
    assert_eq!(stats.proofs, 1);

    // Subsequent calls: no exception, straight through the cache.
    for _ in 0..5 {
        let result = client
            .invoke("files", "read", vec![Sexp::from("X")])
            .unwrap();
        assert_eq!(result.as_atom().unwrap(), b"the contents of file X");
    }
    let stats = r.server.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 6);

    drop(client);
    handle.join().unwrap();
}

#[test]
fn unauthorized_client_rejected() {
    let r = rig();
    // A stranger whose Prover holds a key with no chain to the server.
    let stranger = kp("stranger");
    let mut prng = DetRng::new(b"stranger-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_key(stranger.clone());

    let (ct, st) = PipeTransport::pair();
    let server = Arc::clone(&r.server);
    let server_key = r.server_key.clone();
    let handle = std::thread::spawn(move || {
        let mut rng = DetRng::new(b"srv2");
        let mut channel =
            SecureChannel::server(Box::new(st), &server_key, None, &mut |b| rng.fill(b)).unwrap();
        let _ = server.serve_connection(&mut channel);
    });
    let mut rng = DetRng::new(b"cli2");
    let channel =
        SecureChannel::client(Box::new(ct), Some(&stranger), None, &mut |b| rng.fill(b)).unwrap();
    let mut client = RmiClient::with_clock(Box::new(channel), stranger, prover, fixed_clock);

    match client.invoke("files", "read", vec![Sexp::from("X")]) {
        Err(RmiError::NoProof { .. }) => {}
        other => panic!("expected NoProof, got {other:?}"),
    }
    drop(client);
    handle.join().unwrap();
}

#[test]
fn forged_proof_rejected_by_server() {
    // A client that delegates from a key with no authority: submission
    // succeeds in form but check_auth still faults, and the final retry
    // reports the failure.
    let r = rig();
    let session_key = kp("bad-session");
    let impostor_identity = kp("impostor");
    let mut prng = DetRng::new(b"imp-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    // The impostor pretends its own key chain reaches the server by
    // self-issuing a grant — the server will reject the signature chain.
    let mut rng = DetRng::new(b"imp");
    let fake_grant = Delegation {
        subject: Principal::key(&impostor_identity.public),
        issuer: Principal::key(&impostor_identity.public), // not the server!
        tag: tag("(rmi (object files))"),
        validity: Validity::always(),
        delegable: true,
    };
    prover.add_proof(snowflake_core::Proof::signed_cert(Certificate::issue(
        &impostor_identity,
        fake_grant,
        &mut |b| rng.fill(b),
    )));
    prover.add_key(impostor_identity);

    let (ct, st) = PipeTransport::pair();
    let server = Arc::clone(&r.server);
    let server_key = r.server_key.clone();
    let handle = std::thread::spawn(move || {
        let mut rng = DetRng::new(b"srv3");
        let mut channel =
            SecureChannel::server(Box::new(st), &server_key, None, &mut |b| rng.fill(b)).unwrap();
        let _ = server.serve_connection(&mut channel);
    });
    let mut crng = DetRng::new(b"cli3");
    let channel = SecureChannel::client(Box::new(ct), Some(&session_key), None, &mut |b| {
        crng.fill(b)
    })
    .unwrap();
    let mut client = RmiClient::with_clock(Box::new(channel), session_key, prover, fixed_clock);

    // The impostor's prover can't even build a chain to the real issuer.
    assert!(client
        .invoke("files", "read", vec![Sexp::from("X")])
        .is_err());
    drop(client);
    handle.join().unwrap();
}

#[test]
fn local_channel_skips_encryption_but_keeps_authorization() {
    // §5.2 + §6.3: colocated client and server use broker-vouched pipes;
    // the authorization protocol is identical.
    let server_key = kp("server");
    let broker = LocalBroker::new("host-jvm");
    let mut brng = DetRng::new(b"broker");
    let client_session = broker.create_identity("alice", &mut |b| brng.fill(b));
    // Register the server's channel identity too.
    broker.create_identity("file-server", &mut |b| brng.fill(b));

    let server = RmiServer::with_clock(fixed_clock);
    let mut files = HashMap::new();
    files.insert("X".to_string(), b"local file X".to_vec());
    server.register(
        "files",
        Arc::new(FileObject::new(Principal::key(&server_key.public), files)),
    );

    // Grant alice's *session* key directly (she is her own identity here).
    let mut rng = DetRng::new(b"grant");
    let grant = Delegation {
        subject: Principal::key(&client_session.public),
        issuer: Principal::key(&server_key.public),
        tag: tag("(rmi (object files))"),
        validity: Validity::always(),
        delegable: true,
    };
    let cert = Certificate::issue(&server_key, grant, &mut |b| rng.fill(b));
    let mut prng = DetRng::new(b"local-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_proof(snowflake_core::Proof::signed_cert(cert));
    prover.add_key(client_session.clone());

    let (client_end, mut server_end) = broker.connect("alice", "file-server").unwrap();
    let server2 = Arc::clone(&server);
    let handle = std::thread::spawn(move || {
        let _ = server2.serve_connection(&mut server_end);
    });

    let mut client =
        RmiClient::with_clock(Box::new(client_end), client_session, prover, fixed_clock);
    let result = client
        .invoke("files", "read", vec![Sexp::from("X")])
        .unwrap();
    assert_eq!(result.as_atom().unwrap(), b"local file X");
    drop(client);
    handle.join().unwrap();
}

#[test]
fn faults_propagate() {
    let r = rig();
    let session_key = kp("session-k2");
    let (mut client, handle) = secure_pair(&r, &session_key);

    // Unknown object.
    match client.invoke("ghost", "read", vec![]) {
        Err(RmiError::Fault(RmiFault::NoSuchObject(_))) => {}
        other => panic!("expected NoSuchObject, got {other:?}"),
    }
    // Known object, unknown method (after authorization).
    match client.invoke("files", "frobnicate", vec![]) {
        Err(RmiError::Fault(RmiFault::NoSuchMethod(_))) => {}
        other => panic!("expected NoSuchMethod, got {other:?}"),
    }
    // Application-level error.
    match client.invoke("files", "read", vec![Sexp::from("missing")]) {
        Err(RmiError::Fault(RmiFault::Application(_))) => {}
        other => panic!("expected Application fault, got {other:?}"),
    }
    drop(client);
    handle.join().unwrap();
}

#[test]
fn proof_survives_reconnection() {
    // "Future calls encounter no exception as long as the proof at the
    // server remains valid" — even across connections, because the proof is
    // keyed by the session key, not the channel.
    let r = rig();
    let session_key = kp("stable-session");

    let (mut c1, h1) = secure_pair(&r, &session_key);
    c1.invoke("files", "read", vec![Sexp::from("X")]).unwrap();
    drop(c1);
    h1.join().unwrap();

    let (mut c2, h2) = secure_pair(&r, &session_key);
    c2.invoke("files", "read", vec![Sexp::from("X")]).unwrap();
    let stats = r.server.cache_stats();
    assert_eq!(stats.misses, 1, "second connection reused the cached proof");
    drop(c2);
    h2.join().unwrap();
}
