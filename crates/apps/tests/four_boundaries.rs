//! The paper's culminating scenario (§6.3): a browser-side client proxy
//! talks HTTP to a quoting gateway, which talks RMI to the protected email
//! database — spanning administrative domains, network scales, levels of
//! abstraction, and protocols, while the database still sees the full
//! end-to-end chain `G|C ⇒ C ⇒ S`.

use snowflake_apps::emaildb::{EmailDb, EMAIL_DB_OBJECT};
use snowflake_apps::QuotingGateway;
use snowflake_channel::{LocalBroker, PipeTransport, SecureChannel};
use snowflake_core::{Certificate, Delegation, Principal, Proof, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::{duplex, HttpClient, HttpRequest, HttpServer, SnowflakeProxy};
use snowflake_prover::Prover;
use snowflake_rmi::{RmiClient, RmiServer};
use snowflake_sexpr::Sexp;
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

struct World {
    http_server: Arc<HttpServer>,
    db_server: Arc<RmiServer>,
    alice_proxy: SnowflakeProxy,
    _db_thread: std::thread::JoinHandle<()>,
}

/// Builds the whole world: database server, gateway (connected over the
/// secure channel or the broker-vouched local channel), and Alice's proxy.
fn world(colocated: bool) -> World {
    let db_key = kp("db-server");
    let alice = kp("alice-identity");
    let db_issuer = Principal::key(&db_key.public);

    // --- The database server, with some of Alice's and Bob's mail. -------
    let db_server = RmiServer::with_clock(fixed_clock);
    let email = EmailDb::new(db_issuer.clone());
    {
        use snowflake_rmi::{CallerInfo, Invocation, RemoteObject};
        let caller = CallerInfo {
            speaker: Principal::message(b"setup"),
            channel: snowflake_core::ChannelId {
                kind: "setup".into(),
                id: snowflake_core::HashVal::of(b"setup"),
            },
        };
        for (owner, sender, subject, body) in [
            ("alice", "bob", "lunch", "noon at the green?"),
            ("alice", "carol", "draft", "attached below"),
            ("bob", "alice", "re: lunch", "sounds good"),
        ] {
            email
                .invoke(
                    &Invocation {
                        object: EMAIL_DB_OBJECT.into(),
                        method: "insert".into(),
                        args: vec![
                            Sexp::from(owner),
                            Sexp::from(sender),
                            Sexp::from(subject),
                            Sexp::from(body),
                            Sexp::from("inbox"),
                        ],
                        quoting: None,
                    },
                    &caller,
                )
                .unwrap();
        }
    }
    db_server.register(EMAIL_DB_OBJECT, Arc::new(email));

    // --- The gateway's RMI connection to the database. -------------------
    let gateway_session = kp("gateway-session");
    let mut grng = DetRng::new(b"gw-prover");
    let gateway_prover = Arc::new(Prover::with_rng(Box::new(move |b| grng.fill(b))));

    let (gateway_rmi, db_thread) = if colocated {
        // §5.2: same-host parties ride broker-vouched pipes, no encryption.
        let broker = LocalBroker::new("shared-host");
        let mut brng = DetRng::new(b"broker");
        let gw_kp = broker.create_identity("gateway", &mut |b| brng.fill(b));
        broker.create_identity("database", &mut |b| brng.fill(b));
        let (gw_end, mut db_end) = broker.connect("gateway", "database").unwrap();
        let server = Arc::clone(&db_server);
        let handle = std::thread::spawn(move || {
            let _ = server.serve_connection(&mut db_end);
        });
        (
            RmiClient::with_clock(
                Box::new(gw_end),
                gw_kp,
                Arc::clone(&gateway_prover),
                fixed_clock,
            ),
            handle,
        )
    } else {
        let (ct, st) = PipeTransport::pair();
        let server = Arc::clone(&db_server);
        let db_key2 = db_key.clone();
        let handle = std::thread::spawn(move || {
            let mut rng = DetRng::new(b"db-chan");
            let mut channel =
                SecureChannel::server(Box::new(st), &db_key2, None, &mut |b| rng.fill(b)).unwrap();
            let _ = server.serve_connection(&mut channel);
        });
        let mut rng = DetRng::new(b"gw-chan");
        let channel = SecureChannel::client(Box::new(ct), Some(&gateway_session), None, &mut |b| {
            rng.fill(b)
        })
        .unwrap();
        (
            RmiClient::with_clock(
                Box::new(channel),
                gateway_session.clone(),
                Arc::clone(&gateway_prover),
                fixed_clock,
            ),
            handle,
        )
    };

    // --- The HTTP front: the gateway mounted at /mail. -------------------
    let gateway = QuotingGateway::new(gateway_rmi, fixed_clock);
    let http_server = HttpServer::new();
    http_server.route("/mail", Arc::new(gateway));

    // --- Alice's side: owner grant + proxy. -------------------------------
    // The database owner granted Alice's identity all ops on her rows,
    // delegable (she must extend it to gateways).
    let mut rng = DetRng::new(b"grant");
    let grant = Certificate::issue(
        &db_key,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: db_issuer,
            tag: EmailDb::owner_tag("alice"),
            validity: Validity::always(),
            delegable: true,
        },
        &mut |b| rng.fill(b),
    );
    let mut prng = DetRng::new(b"alice-prover");
    let alice_prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    alice_prover.add_proof(Proof::signed_cert(grant));
    alice_prover.add_key(alice.clone());
    let mut xrng = DetRng::new(b"alice-proxy");
    let alice_proxy =
        SnowflakeProxy::with_clock(alice_prover, fixed_clock, Box::new(move |b| xrng.fill(b)));
    alice_proxy.set_identity(Principal::key(&alice.public));

    World {
        http_server,
        db_server,
        alice_proxy,
        _db_thread: db_thread,
    }
}

fn connect(w: &World) -> (HttpClient, std::thread::JoinHandle<()>) {
    let (client_stream, mut server_stream) = duplex();
    let server = Arc::clone(&w.http_server);
    let handle = std::thread::spawn(move || {
        let _ = server.serve_stream(&mut server_stream);
    });
    (HttpClient::new(Box::new(client_stream)), handle)
}

#[test]
fn alice_reads_her_mail_through_the_gateway() {
    let w = world(false);
    let (mut client, handle) = connect(&w);

    let resp = w
        .alice_proxy
        .execute(&mut client, HttpRequest::get("/mail/alice/inbox"))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let html = String::from_utf8_lossy(&resp.body);
    assert!(html.contains("noon at the green?"), "{html}");
    assert!(html.contains("attached below"), "{html}");
    // Bob's mail does not leak into Alice's view.
    assert!(!html.contains("sounds good"), "{html}");

    // The database's proof cache now holds the G|C ⇒ S chain; its audit
    // trail includes the gateway's involvement (quoting) and Alice's grant.
    assert_eq!(w.db_server.cache_stats().proofs, 1);

    drop(client);
    handle.join().unwrap();
}

#[test]
fn alice_cannot_read_bobs_mail() {
    let w = world(false);
    let (mut client, handle) = connect(&w);

    // Alice asks the gateway for *Bob's* inbox: her prover cannot produce
    // G|Alice ⇒ S regarding (db … (owner bob)).
    let result = w
        .alice_proxy
        .execute(&mut client, HttpRequest::get("/mail/bob/inbox"));
    assert!(result.is_err(), "expected failure, got {result:?}");

    drop(client);
    handle.join().unwrap();
}

#[test]
fn gateway_works_identically_when_colocated() {
    // §6.3: "It can be colocated with the server, in which case its RMI
    // transactions automatically avoid encryption overhead by using the
    // local channels of Section 5.2."
    let w = world(true);
    let (mut client, handle) = connect(&w);

    let resp = w
        .alice_proxy
        .execute(&mut client, HttpRequest::get("/mail/alice/inbox"))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert!(String::from_utf8_lossy(&resp.body).contains("noon at the green?"));

    drop(client);
    handle.join().unwrap();
}

#[test]
fn subsequent_requests_skip_the_fanfare() {
    // "Subsequent requests are accepted without so much fanfare, since the
    // database server holds the appropriate proof of delegation."
    let w = world(false);
    let (mut client, handle) = connect(&w);

    for _ in 0..3 {
        let resp = w
            .alice_proxy
            .execute(&mut client, HttpRequest::get("/mail/alice/inbox"))
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    // One proof sufficed for all three transactions.
    let stats = w.db_server.cache_stats();
    assert_eq!(stats.proofs, 1, "{stats:?}");

    drop(client);
    handle.join().unwrap();
}

#[test]
fn alice_composes_mail_through_the_gateway() {
    // The gateway's write path: POST inserts, still quoting the client, so
    // the database applies the same end-to-end decision to mutations.
    let w = world(false);
    let (mut client, handle) = connect(&w);

    let compose = HttpRequest::post(
        "/mail/alice/drafts",
        b"note to self\n\nremember the milk".to_vec(),
    );
    let resp = w.alice_proxy.execute(&mut client, compose).unwrap();
    assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));

    // The draft is now visible through the read path.
    let resp = w
        .alice_proxy
        .execute(&mut client, HttpRequest::get("/mail/alice/drafts"))
        .unwrap();
    let html = String::from_utf8_lossy(&resp.body);
    assert!(html.contains("remember the milk"), "{html}");

    // But Alice cannot insert into Bob's mailbox.
    let forged = HttpRequest::post("/mail/bob/inbox", b"spam\n\nbuy things".to_vec());
    assert!(w.alice_proxy.execute(&mut client, forged).is_err());

    drop(client);
    handle.join().unwrap();
}

#[test]
fn anonymous_browser_gets_the_g_quoting_challenge() {
    let w = world(false);
    let (mut client, handle) = connect(&w);

    // A bare client (no proxy) sees the gateway's 401 with the quoter
    // principal advertised — the G|? challenge.
    let mut req = HttpRequest::get("/mail/alice/inbox");
    req.set_header("Connection", "keep-alive");
    let resp = client.send(&req).unwrap();
    assert_eq!(resp.status, 401);
    assert_eq!(resp.header("WWW-Authenticate"), Some("SnowflakeProof"));
    assert!(resp.header("Sf-Quoter").is_some());
    assert!(resp.header("Sf-ServiceIssuer").is_some());
    let tag_header = resp.header("Sf-MinimumTag").unwrap();
    let tag = snowflake_core::Tag::parse(&Sexp::parse(tag_header.as_bytes()).unwrap()).unwrap();
    assert_eq!(tag, EmailDb::op_tag("select", "alice"));

    drop(client);
    handle.join().unwrap();
}
