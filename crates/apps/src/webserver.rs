//! The protected web file server (paper §6.1).
//!
//! "One user establishes control over the file server by specifying the
//! hash of his public key when starting up the server; he may delegate to
//! others permission to read subtrees or individual files from the server."
//!
//! Subtree delegation falls out of the tag algebra: a delegation whose
//! `resourcePath` field is `(* prefix /docs/)` permits every concrete
//! request tag under that subtree.

use crate::vfs::Vfs;
use snowflake_core::{Principal, Tag};
use snowflake_http::{HttpRequest, HttpResponse, SnowflakeService};
use std::sync::Arc;

/// The Snowflake service mapping web requests to VFS reads.
pub struct ProtectedWebService {
    /// The principal controlling the server (typically a key hash, as in
    /// the paper).
    issuer: Principal,
    /// The service name embedded in restriction tags (Figure 5's
    /// `(service |…|)` field).
    service_name: String,
    vfs: Arc<Vfs>,
}

impl ProtectedWebService {
    /// Creates a service controlled by `issuer`, serving `vfs`.
    pub fn new(issuer: Principal, service_name: &str, vfs: Arc<Vfs>) -> ProtectedWebService {
        ProtectedWebService {
            issuer,
            service_name: service_name.to_string(),
            vfs,
        }
    }

    /// The tag granting read access to the subtree under `prefix` — what an
    /// owner delegates to share a directory.
    pub fn subtree_tag(&self, prefix: &str) -> Tag {
        Tag::named(
            "web",
            vec![
                Tag::named("method", vec![Tag::atom("GET")]),
                Tag::named("service", vec![Tag::atom(self.service_name.as_str())]),
                Tag::named(
                    "resourcePath",
                    vec![Tag::Prefix(prefix.as_bytes().to_vec())],
                ),
            ],
        )
    }

    /// The tag granting read access to exactly one file.
    pub fn file_tag(&self, path: &str) -> Tag {
        snowflake_http::auth::web_tag("GET", &self.service_name, path)
    }
}

impl SnowflakeService for ProtectedWebService {
    fn issuer(&self, _req: &HttpRequest) -> Principal {
        self.issuer.clone()
    }

    fn min_tag(&self, req: &HttpRequest) -> Tag {
        snowflake_http::auth::web_tag(&req.method, &self.service_name, &req.path)
    }

    fn serve(&self, req: &HttpRequest, _speaker: &Principal) -> HttpResponse {
        if req.method != "GET" {
            return HttpResponse::status(405, "Method Not Allowed", "GET only");
        }
        match self.vfs.read(&req.path) {
            Some(data) => HttpResponse::ok(content_type_for(&req.path), data),
            None => HttpResponse::not_found(),
        }
    }
}

fn content_type_for(path: &str) -> &'static str {
    if path.ends_with(".html") {
        "text/html"
    } else if path.ends_with(".txt") {
        "text/plain"
    } else {
        "application/octet-stream"
    }
}

// `service_name` is used through &str coercion above.
impl ProtectedWebService {
    /// The service's name as it appears in restriction tags.
    pub fn service_name(&self) -> &str {
        &self.service_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> ProtectedWebService {
        let vfs = Arc::new(Vfs::new());
        vfs.write("/docs/a.html", b"<p>a</p>".to_vec());
        vfs.write("/docs/deep/b.txt", b"b".to_vec());
        vfs.write("/private/key", b"secret".to_vec());
        ProtectedWebService::new(Principal::message(b"owner"), "files", vfs)
    }

    #[test]
    fn serves_files_with_content_types() {
        let s = service();
        let speaker = Principal::message(b"x");
        let resp = s.serve(&HttpRequest::get("/docs/a.html"), &speaker);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("Content-Type"), Some("text/html"));
        let resp = s.serve(&HttpRequest::get("/docs/deep/b.txt"), &speaker);
        assert_eq!(resp.header("Content-Type"), Some("text/plain"));
        assert_eq!(s.serve(&HttpRequest::get("/nope"), &speaker).status, 404);
        let mut post = HttpRequest::post("/docs/a.html", vec![]);
        post.set_header("X", "y");
        assert_eq!(s.serve(&post, &speaker).status, 405);
    }

    #[test]
    fn subtree_tag_covers_children_only() {
        let s = service();
        let subtree = s.subtree_tag("/docs/");
        let inside = s.min_tag(&HttpRequest::get("/docs/deep/b.txt"));
        let outside = s.min_tag(&HttpRequest::get("/private/key"));
        assert!(subtree.permits(&inside));
        assert!(!subtree.permits(&outside));
        // A single-file tag covers exactly that file.
        let one = s.file_tag("/docs/a.html");
        assert!(one.permits(&s.min_tag(&HttpRequest::get("/docs/a.html"))));
        assert!(!one.permits(&inside));
    }

    #[test]
    fn post_tags_differ_from_get() {
        let s = service();
        let mut post = HttpRequest::post("/docs/a.html", vec![]);
        post.set_header("X", "y");
        let get_tag = s.min_tag(&HttpRequest::get("/docs/a.html"));
        let post_tag = s.min_tag(&post);
        assert!(!get_tag.permits(&post_tag));
        // And the GET-only subtree grant does not permit POSTs.
        assert!(!s.subtree_tag("/docs/").permits(&post_tag));
    }
}
