//! The protected web file server (paper §6.1).
//!
//! "One user establishes control over the file server by specifying the
//! hash of his public key when starting up the server; he may delegate to
//! others permission to read subtrees or individual files from the server."
//!
//! Subtree delegation falls out of the tag algebra: a delegation whose
//! `resourcePath` field is `(* prefix /docs/)` permits every concrete
//! request tag under that subtree.

use crate::vfs::Vfs;
use snowflake_core::{Principal, Tag, Time};
use snowflake_http::{
    HttpRequest, HttpResponse, HttpServer, MacSessionStore, ProtectedServlet, SnowflakeService,
};
use std::sync::Arc;

/// The Snowflake service mapping web requests to VFS reads.
pub struct ProtectedWebService {
    /// The principal controlling the server (typically a key hash, as in
    /// the paper).
    issuer: Principal,
    /// The service name embedded in restriction tags (Figure 5's
    /// `(service |…|)` field).
    service_name: String,
    vfs: Arc<Vfs>,
}

impl ProtectedWebService {
    /// Creates a service controlled by `issuer`, serving `vfs`.
    pub fn new(issuer: Principal, service_name: &str, vfs: Arc<Vfs>) -> ProtectedWebService {
        ProtectedWebService {
            issuer,
            service_name: service_name.to_string(),
            vfs,
        }
    }

    /// The tag granting read access to the subtree under `prefix` — what an
    /// owner delegates to share a directory.
    pub fn subtree_tag(&self, prefix: &str) -> Tag {
        Tag::named(
            "web",
            vec![
                Tag::named("method", vec![Tag::atom("GET")]),
                Tag::named("service", vec![Tag::atom(self.service_name.as_str())]),
                Tag::named(
                    "resourcePath",
                    vec![Tag::Prefix(prefix.as_bytes().to_vec())],
                ),
            ],
        )
    }

    /// The tag granting read access to exactly one file.
    pub fn file_tag(&self, path: &str) -> Tag {
        snowflake_http::auth::web_tag("GET", &self.service_name, path)
    }

    /// Wraps this service in a [`ProtectedServlet`] over a shared MAC
    /// session store and mounts it on `server` at `prefix`.
    ///
    /// App servers that host several protected services pass the same
    /// `macs` to each mount, pooling one sharded store: a MAC session
    /// established through any mount authorizes requests wherever its
    /// grant's tag reaches *and its grant's issuer controls the service*
    /// (cross-issuer use is rejected per request), and one
    /// `evict_expired` sweep reclaims dead sessions for the whole site.
    ///
    /// The servlet is also routed at the well-known
    /// [`snowflake_http::MAC_SESSION_PATH`] (unless an earlier mount
    /// already claimed it) — establishment POSTs go there, not under
    /// `prefix`, and a session's authority comes from its verified
    /// establishment proof, so any servlet sharing the store may handle
    /// them.  For that reason every mount on one server must receive the
    /// *same* `macs`: with distinct stores, establishment would land in
    /// whichever store claimed the path first, and the other services
    /// would reject the session as unknown (clients then silently fall
    /// back to per-request signed proofs, losing the MAC amortization).
    pub fn mount(
        self,
        server: &HttpServer,
        prefix: &str,
        macs: Arc<MacSessionStore>,
        clock: fn() -> Time,
        rng: Box<dyn FnMut(&mut [u8]) + Send>,
    ) -> Arc<ProtectedServlet<ProtectedWebService>> {
        let servlet = ProtectedServlet::with_store(self, clock, rng, macs);
        server.route(prefix, Arc::clone(&servlet) as Arc<dyn snowflake_http::Handler>);
        if !server.has_route(snowflake_http::MAC_SESSION_PATH) {
            server.route(
                snowflake_http::MAC_SESSION_PATH,
                Arc::clone(&servlet) as Arc<dyn snowflake_http::Handler>,
            );
        }
        servlet
    }
}

impl SnowflakeService for ProtectedWebService {
    fn issuer(&self, _req: &HttpRequest) -> Principal {
        self.issuer.clone()
    }

    fn min_tag(&self, req: &HttpRequest) -> Tag {
        snowflake_http::auth::web_tag(&req.method, &self.service_name, &req.path)
    }

    fn serve(&self, req: &HttpRequest, _speaker: &Principal) -> HttpResponse {
        if req.method != "GET" {
            return HttpResponse::status(405, "Method Not Allowed", "GET only");
        }
        match self.vfs.read(&req.path) {
            Some(data) => HttpResponse::ok(content_type_for(&req.path), data),
            None => HttpResponse::not_found(),
        }
    }
}

fn content_type_for(path: &str) -> &'static str {
    if path.ends_with(".html") {
        "text/html"
    } else if path.ends_with(".txt") {
        "text/plain"
    } else {
        "application/octet-stream"
    }
}

// `service_name` is used through &str coercion above.
impl ProtectedWebService {
    /// The service's name as it appears in restriction tags.
    pub fn service_name(&self) -> &str {
        &self.service_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> ProtectedWebService {
        let vfs = Arc::new(Vfs::new());
        vfs.write("/docs/a.html", b"<p>a</p>".to_vec());
        vfs.write("/docs/deep/b.txt", b"b".to_vec());
        vfs.write("/private/key", b"secret".to_vec());
        ProtectedWebService::new(Principal::message(b"owner"), "files", vfs)
    }

    #[test]
    fn serves_files_with_content_types() {
        let s = service();
        let speaker = Principal::message(b"x");
        let resp = s.serve(&HttpRequest::get("/docs/a.html"), &speaker);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("Content-Type"), Some("text/html"));
        let resp = s.serve(&HttpRequest::get("/docs/deep/b.txt"), &speaker);
        assert_eq!(resp.header("Content-Type"), Some("text/plain"));
        assert_eq!(s.serve(&HttpRequest::get("/nope"), &speaker).status, 404);
        let mut post = HttpRequest::post("/docs/a.html", vec![]);
        post.set_header("X", "y");
        assert_eq!(s.serve(&post, &speaker).status, 405);
    }

    #[test]
    fn subtree_tag_covers_children_only() {
        let s = service();
        let subtree = s.subtree_tag("/docs/");
        let inside = s.min_tag(&HttpRequest::get("/docs/deep/b.txt"));
        let outside = s.min_tag(&HttpRequest::get("/private/key"));
        assert!(subtree.permits(&inside));
        assert!(!subtree.permits(&outside));
        // A single-file tag covers exactly that file.
        let one = s.file_tag("/docs/a.html");
        assert!(one.permits(&s.min_tag(&HttpRequest::get("/docs/a.html"))));
        assert!(!one.permits(&inside));
    }

    /// Two app services mounted on one server pool a single sharded MAC
    /// store: a session established through either is visible to both,
    /// and one sweep reclaims expired sessions site-wide.
    #[test]
    fn mounted_services_share_mac_store() {
        use snowflake_core::{Delegation, Proof, Validity};
        use snowflake_crypto::DetRng;
        use snowflake_http::mac::ClientMacSession;

        let server = HttpServer::new();
        let macs = Arc::new(MacSessionStore::new());
        let clock: fn() -> Time = || Time(0);
        let mut r1 = DetRng::new(b"mount-1");
        let mut r2 = DetRng::new(b"mount-2");
        let docs = ProtectedWebService::new(Principal::message(b"owner"), "docs", {
            let v = Arc::new(Vfs::new());
            v.write("/docs/a", b"a".to_vec());
            v
        })
        .mount(&server, "/docs", Arc::clone(&macs), clock, Box::new(move |b| r1.fill(b)));
        let wiki = ProtectedWebService::new(Principal::message(b"owner"), "wiki", {
            let v = Arc::new(Vfs::new());
            v.write("/wiki/b", b"b".to_vec());
            v
        })
        .mount(&server, "/wiki", Arc::clone(&macs), clock, Box::new(move |b| r2.fill(b)));

        assert!(Arc::ptr_eq(docs.mac_store(), wiki.mac_store()));

        // The well-known establishment path is reachable even though both
        // services mount under their own prefixes: an unauthorized POST is
        // challenged (401), not lost to routing (404).
        let probe = HttpRequest::post(snowflake_http::MAC_SESSION_PATH, vec![]);
        assert_eq!(server.respond(&probe).status, 401);

        // Establish one session through the docs servlet's store; the wiki
        // servlet sees it, and the shared sweep reclaims it once expired.
        let mut crng = DetRng::new(b"mount-client");
        let (body, _dh) = ClientMacSession::request_body(&mut |b| crng.fill(b));
        let grant = Delegation {
            subject: Principal::message(b"establishment"),
            issuer: Principal::message(b"owner"),
            tag: Tag::Star,
            validity: Validity::until(Time(100)),
            delegable: false,
        };
        let proof = Proof::Assumption {
            stmt: grant.clone(),
            authority: "test".into(),
        };
        let mut srng = DetRng::new(b"mount-server");
        docs.mac_store()
            .establish(&body, grant, proof, Time(0), &mut |b| srng.fill(b))
            .unwrap();
        assert_eq!(wiki.mac_store().len(), 1);
        assert_eq!(wiki.mac_store().evict_expired(Time(500)), 1);
        assert!(docs.mac_store().is_empty());
    }

    /// A MAC session carries the issuer its establishment proof was
    /// verified against; on a shared store it must not authorize requests
    /// to a service controlled by a *different* issuer, however wide its
    /// tag.
    #[test]
    fn shared_store_session_rejected_across_issuers() {
        use snowflake_core::{Delegation, HashAlg, Proof, Validity};
        use snowflake_crypto::DetRng;
        use snowflake_http::mac::ClientMacSession;

        let server = HttpServer::new();
        let macs = Arc::new(MacSessionStore::new());
        let clock: fn() -> Time = || Time(0);
        let mut r1 = DetRng::new(b"xissuer-1");
        let mut r2 = DetRng::new(b"xissuer-2");
        let docs_vfs = Arc::new(Vfs::new());
        docs_vfs.write("/docs/a", b"a".to_vec());
        let wiki_vfs = Arc::new(Vfs::new());
        wiki_vfs.write("/wiki/b", b"b".to_vec());
        let docs = ProtectedWebService::new(Principal::message(b"issuer-A"), "docs", docs_vfs)
            .mount(&server, "/docs", Arc::clone(&macs), clock, Box::new(move |b| r1.fill(b)));
        ProtectedWebService::new(Principal::message(b"issuer-B"), "wiki", wiki_vfs).mount(
            &server,
            "/wiki",
            Arc::clone(&macs),
            clock,
            Box::new(move |b| r2.fill(b)),
        );

        // Establish one session per issuer, both POSTed over HTTP to the
        // single well-known path (routed to the *docs* servlet):
        // establishment verifies a proof against the issuer it names, so
        // wiki clients are not locked out by mount order.
        let establish = |seed: &str, issuer: &[u8]| {
            let mut crng = DetRng::new(seed.as_bytes());
            let (body, dh) = ClientMacSession::request_body(&mut |b| crng.fill(b));
            let mut est = HttpRequest::post(snowflake_http::MAC_SESSION_PATH, body);
            let stmt = Delegation {
                subject: snowflake_http::request_principal(&est, HashAlg::Sha256),
                issuer: Principal::message(issuer),
                tag: Tag::Star,
                // Establishment refuses unbounded windows (store DoS).
                validity: Validity::until(Time(3_000)),
                delegable: false,
            };
            // The handling servlet's verifier vouches the test assumption.
            docs.base_ctx().assume(&stmt);
            snowflake_http::auth::attach_proof(
                &mut est,
                &Proof::Assumption {
                    stmt,
                    authority: "test".into(),
                },
            );
            let resp = server.respond(&est);
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            ClientMacSession::from_grant(&resp.body, &dh, Validity::always()).unwrap()
        };
        let session_a = establish("xissuer-client-a", b"issuer-A");
        let session_b = establish("xissuer-client-b", b"issuer-B");

        // An unbounded (never-expiring) establishment is refused: it could
        // never be reclaimed by the expiry sweeps.
        {
            let mut crng = DetRng::new(b"xissuer-unbounded");
            let (body, _dh) = ClientMacSession::request_body(&mut |b| crng.fill(b));
            let mut est = HttpRequest::post(snowflake_http::MAC_SESSION_PATH, body);
            let stmt = Delegation {
                subject: snowflake_http::request_principal(&est, HashAlg::Sha256),
                issuer: Principal::message(b"issuer-A"),
                tag: Tag::Star,
                validity: Validity::always(),
                delegable: false,
            };
            docs.base_ctx().assume(&stmt);
            snowflake_http::auth::attach_proof(
                &mut est,
                &Proof::Assumption {
                    stmt,
                    authority: "test".into(),
                },
            );
            let resp = server.respond(&est);
            assert_eq!(resp.status, 403);
            assert!(String::from_utf8_lossy(&resp.body).contains("bounded"));
        }

        let mac_request = |session: &ClientMacSession, path: &str| {
            let mut req = HttpRequest::get(path);
            let hash = snowflake_http::request_hash(&req, HashAlg::Sha256);
            req.set_header(snowflake_http::auth::MAC_ID_HEADER, &session.id_header());
            req.set_header(snowflake_http::auth::MAC_HEADER, &session.authenticate(&hash));
            req
        };
        // Each session authorizes requests under its own issuer's service…
        assert_eq!(server.respond(&mac_request(&session_a, "/docs/a")).status, 200);
        assert_eq!(server.respond(&mac_request(&session_b, "/wiki/b")).status, 200);
        // …but not under the other's, despite the Star tags.
        for (session, path) in [(&session_a, "/wiki/b"), (&session_b, "/docs/a")] {
            let resp = server.respond(&mac_request(session, path));
            assert_eq!(resp.status, 403, "{}", String::from_utf8_lossy(&resp.body));
            assert!(String::from_utf8_lossy(&resp.body).contains("different issuer"));
        }
    }

    #[test]
    fn post_tags_differ_from_get() {
        let s = service();
        let mut post = HttpRequest::post("/docs/a.html", vec![]);
        post.set_header("X", "y");
        let get_tag = s.min_tag(&HttpRequest::get("/docs/a.html"));
        let post_tag = s.min_tag(&post);
        assert!(!get_tag.permits(&post_tag));
        // And the GET-only subtree grant does not permit POSTs.
        assert!(!s.subtree_tag("/docs/").permits(&post_tag));
    }
}
