//! The protected relational email database (paper §6.2).
//!
//! "The original database server accepts insert, update, and select
//! requests as RMI invocations on a Remote Database object … Adapting the
//! application to Snowflake required only minimal changes": every remote
//! method is guarded by the framework's `check_auth`, and the method→tag
//! mapping carries row ownership, so a delegation
//! `(db (op select) (owner alice))` lets its holder read only Alice's mail.

use snowflake_core::sync::LockExt;
use std::sync::{Arc, Mutex};
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent, EmitterSlot};
use snowflake_core::{Principal, Tag, Time};
use snowflake_reldb::{
    email_schema, rows_to_sexp, DbError, DurableDatabase, Predicate, Value,
};
use snowflake_rmi::{CallerInfo, Invocation, RemoteObject, RmiFault};
use snowflake_sexpr::Sexp;

/// The registry name the email database object is bound to.
pub const EMAIL_DB_OBJECT: &str = "email-db";

/// The email database as a Snowflake-protected remote object.
pub struct EmailDb {
    issuer: Principal,
    db: Mutex<DurableDatabase>,
    next_id: Mutex<i64>,
    clock: fn() -> Time,
    /// Audit emitter; the application-level outcome of every invocation
    /// (including owner-scoped no-ops) is recorded through it (surface
    /// `emaildb`).  The framework's `check_auth` verdict is recorded
    /// separately at the `rmi` surface.
    audit: EmitterSlot,
}

impl EmailDb {
    /// Creates an empty in-memory email database controlled by `issuer`.
    pub fn new(issuer: Principal) -> EmailDb {
        Self::with_clock(issuer, Time::now)
    }

    /// Creates an empty in-memory database with an injected clock
    /// (tests, benches).
    pub fn with_clock(issuer: Principal, clock: fn() -> Time) -> EmailDb {
        Self::mount(issuer, clock, DurableDatabase::ephemeral(email_schema))
    }

    /// Opens (creating or crash-recovering) a durable email database
    /// rooted at `base` (WAL at `<base>.wal`, snapshots at `<base>.snap`):
    /// the mailstore itself survives a process death.
    pub fn open_durable(
        issuer: Principal,
        clock: fn() -> Time,
        base: impl Into<std::path::PathBuf>,
    ) -> Result<EmailDb, DbError> {
        Ok(Self::mount(
            issuer,
            clock,
            DurableDatabase::open(base, email_schema)?,
        ))
    }

    fn mount(issuer: Principal, clock: fn() -> Time, db: DurableDatabase) -> EmailDb {
        // Message ids must keep ascending across restarts: resume above
        // the largest recovered id.
        let next_id = db
            .database()
            .table("messages")
            .ok()
            .and_then(|t| {
                t.select(&Predicate::True, &["id".to_string()])
                    .ok()?
                    .into_iter()
                    .filter_map(|row| match row.first() {
                        Some(Value::Int(i)) => Some(*i),
                        _ => None,
                    })
                    .max()
            })
            .map_or(1, |max| max + 1);
        EmailDb {
            issuer,
            db: Mutex::new(db),
            next_id: Mutex::new(next_id),
            clock,
            audit: EmitterSlot::new(),
        }
    }

    /// Snapshots the live tables and truncates the WAL (bounding replay
    /// time after the next restart).  A no-op for in-memory databases.
    pub fn compact(&self) -> Result<(), DbError> {
        self.db.plock().compact()
    }

    /// Attaches an audit emitter recording application-level outcomes.
    pub fn set_audit_emitter(&self, emitter: Arc<dyn AuditEmitter>) {
        self.audit.set(emitter);
    }

    /// Emits an audit event, building it only when an emitter is attached.
    fn audit(&self, build: impl FnOnce() -> DecisionEvent) {
        self.audit.emit_with(build);
    }

    /// The restriction tag for an operation on an owner's mail — what the
    /// database owner delegates to users (and users re-delegate to
    /// gateways).
    pub fn op_tag(op: &str, owner: &str) -> Tag {
        Tag::named(
            "db",
            vec![
                Tag::named("op", vec![Tag::atom(op)]),
                Tag::named("owner", vec![Tag::atom(owner)]),
            ],
        )
    }

    /// The tag covering *all* operations on one owner's mail.
    pub fn owner_tag(owner: &str) -> Tag {
        Tag::named(
            "db",
            vec![Tag::Star, Tag::named("owner", vec![Tag::atom(owner)])],
        )
    }

    fn owner_arg(invocation: &Invocation) -> Result<String, RmiFault> {
        invocation
            .args
            .first()
            .and_then(Sexp::as_str)
            .map(str::to_string)
            .ok_or_else(|| RmiFault::Application("first argument must be the owner".into()))
    }

    fn select(&self, owner: &str, folder: Option<&str>) -> Result<Sexp, RmiFault> {
        let mut pred = Predicate::eq("owner", Value::text(owner));
        if let Some(f) = folder {
            pred = Predicate::and(pred, Predicate::eq("folder", Value::text(f)));
        }
        let db = self.db.plock();
        let rows = db
            .database()
            .table("messages")
            .and_then(|t| t.select(&pred, &[]))
            .map_err(|e| RmiFault::Application(e.to_string()))?;
        Ok(rows_to_sexp(&rows))
    }

    fn insert(&self, owner: &str, args: &[Sexp]) -> Result<Sexp, RmiFault> {
        let field = |i: usize, name: &str| -> Result<String, RmiFault> {
            args.get(i)
                .and_then(Sexp::as_str)
                .map(str::to_string)
                .ok_or_else(|| RmiFault::Application(format!("missing {name}")))
        };
        let sender = field(1, "sender")?;
        let subject = field(2, "subject")?;
        let body = field(3, "body")?;
        let folder = field(4, "folder")?;
        let id = {
            let mut n = self.next_id.plock();
            let id = *n;
            *n += 1;
            id
        };
        let mut db = self.db.plock();
        db.insert(
            "messages",
            vec![
                Value::Int(id),
                Value::text(owner),
                Value::text(sender),
                Value::text(subject),
                Value::text(body),
                Value::text(folder),
                Value::Bool(true),
            ],
        )
        .map_err(|e| RmiFault::Application(e.to_string()))?;
        Ok(Sexp::int(id as u64))
    }

    fn mark_read(&self, owner: &str, args: &[Sexp]) -> Result<Sexp, RmiFault> {
        let id = args
            .get(1)
            .and_then(Sexp::as_u64)
            .ok_or_else(|| RmiFault::Application("missing message id".into()))?;
        let pred = Predicate::and(
            Predicate::eq("owner", Value::text(owner)),
            Predicate::eq("id", Value::Int(id as i64)),
        );
        let mut db = self.db.plock();
        let n = db
            .update(
                "messages",
                &pred,
                &[("unread".to_string(), Value::Bool(false))],
            )
            .map_err(|e| RmiFault::Application(e.to_string()))?;
        Ok(Sexp::int(n as u64))
    }

    fn delete(&self, owner: &str, args: &[Sexp]) -> Result<Sexp, RmiFault> {
        let id = args
            .get(1)
            .and_then(Sexp::as_u64)
            .ok_or_else(|| RmiFault::Application("missing message id".into()))?;
        let pred = Predicate::and(
            Predicate::eq("owner", Value::text(owner)),
            Predicate::eq("id", Value::Int(id as i64)),
        );
        let mut db = self.db.plock();
        let n = db
            .delete("messages", &pred)
            .map_err(|e| RmiFault::Application(e.to_string()))?;
        Ok(Sexp::int(n as u64))
    }
}

impl RemoteObject for EmailDb {
    fn issuer(&self) -> Principal {
        self.issuer.clone()
    }

    /// `(db (op <method>) (owner <owner-arg>))` — ownership is part of the
    /// restriction, so authorization is row-scoped end to end.
    fn restriction(&self, invocation: &Invocation) -> Tag {
        let owner = invocation
            .args
            .first()
            .and_then(Sexp::as_str)
            .unwrap_or("<missing>");
        Self::op_tag(&invocation.method, owner)
    }

    fn invoke(&self, invocation: &Invocation, caller: &CallerInfo) -> Result<Sexp, RmiFault> {
        // Even a malformed invocation (no owner argument) is an
        // application-level outcome and must reach the trail, so the
        // owner parse failure flows into the audited result below.
        let owner = Self::owner_arg(invocation);
        let result = match (&owner, invocation.method.as_str()) {
            (Err(f), _) => Err(f.clone()),
            (Ok(owner), "select") => {
                let folder = invocation.args.get(1).and_then(Sexp::as_str);
                self.select(owner, folder)
            }
            (Ok(owner), "insert") => self.insert(owner, &invocation.args),
            (Ok(owner), "mark_read") => self.mark_read(owner, &invocation.args),
            (Ok(owner), "delete") => self.delete(owner, &invocation.args),
            (Ok(_), other) => Err(RmiFault::NoSuchMethod(other.into())),
        };
        self.audit(|| {
            let (decision, detail) = match &result {
                Ok(_) => (Decision::Grant, "row-scoped operation applied".to_string()),
                Err(f) => (Decision::Deny, format!("{f:?}")),
            };
            let object = match &owner {
                Ok(owner) => format!("{EMAIL_DB_OBJECT}/{owner}"),
                Err(_) => EMAIL_DB_OBJECT.to_string(),
            };
            DecisionEvent::new(
                (self.clock)(),
                "emaildb",
                decision,
                &object,
                &invocation.method,
                &detail,
            )
            .with_subject(caller.speaker.clone())
        });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_core::ChannelId;
    use snowflake_crypto::HashVal;
    use snowflake_reldb::rows_from_sexp;

    fn caller() -> CallerInfo {
        CallerInfo {
            speaker: Principal::message(b"test-speaker"),
            channel: ChannelId {
                kind: "test".into(),
                id: HashVal::of(b"ch"),
            },
        }
    }

    fn inv(method: &str, args: Vec<Sexp>) -> Invocation {
        Invocation {
            object: EMAIL_DB_OBJECT.into(),
            method: method.into(),
            args,
            quoting: None,
        }
    }

    #[test]
    fn insert_select_roundtrip() {
        let db = EmailDb::new(Principal::message(b"dbkey"));
        let c = caller();
        db.invoke(
            &inv(
                "insert",
                vec![
                    Sexp::from("alice"),
                    Sexp::from("bob"),
                    Sexp::from("lunch"),
                    Sexp::from("noon?"),
                    Sexp::from("inbox"),
                ],
            ),
            &c,
        )
        .unwrap();
        db.invoke(
            &inv(
                "insert",
                vec![
                    Sexp::from("bob"),
                    Sexp::from("alice"),
                    Sexp::from("re: lunch"),
                    Sexp::from("sure"),
                    Sexp::from("inbox"),
                ],
            ),
            &c,
        )
        .unwrap();

        // Alice's select sees only Alice's mail.
        let out = db
            .invoke(&inv("select", vec![Sexp::from("alice")]), &c)
            .unwrap();
        let rows = rows_from_sexp(&out).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], snowflake_reldb::Value::text("alice"));
    }

    #[test]
    fn mark_read_and_delete_scoped_to_owner() {
        let db = EmailDb::new(Principal::message(b"dbkey"));
        let c = caller();
        let id = db
            .invoke(
                &inv(
                    "insert",
                    vec![
                        Sexp::from("alice"),
                        Sexp::from("bob"),
                        Sexp::from("s"),
                        Sexp::from("b"),
                        Sexp::from("inbox"),
                    ],
                ),
                &c,
            )
            .unwrap()
            .as_u64()
            .unwrap();

        // Bob cannot mark Alice's message (owner mismatch → 0 rows).
        let n = db
            .invoke(
                &inv("mark_read", vec![Sexp::from("bob"), Sexp::int(id)]),
                &c,
            )
            .unwrap();
        assert_eq!(n.as_u64(), Some(0));
        // Alice can.
        let n = db
            .invoke(
                &inv("mark_read", vec![Sexp::from("alice"), Sexp::int(id)]),
                &c,
            )
            .unwrap();
        assert_eq!(n.as_u64(), Some(1));
        // Delete likewise.
        let n = db
            .invoke(&inv("delete", vec![Sexp::from("alice"), Sexp::int(id)]), &c)
            .unwrap();
        assert_eq!(n.as_u64(), Some(1));
    }

    #[test]
    fn restriction_carries_owner() {
        let db = EmailDb::new(Principal::message(b"dbkey"));
        let t = db.restriction(&inv("select", vec![Sexp::from("alice")]));
        assert_eq!(t, EmailDb::op_tag("select", "alice"));
        // The all-ops owner grant covers each specific op.
        assert!(EmailDb::owner_tag("alice").permits(&EmailDb::op_tag("select", "alice")));
        assert!(EmailDb::owner_tag("alice").permits(&EmailDb::op_tag("insert", "alice")));
        assert!(!EmailDb::owner_tag("alice").permits(&EmailDb::op_tag("select", "bob")));
    }

    /// A durable mailstore survives a "restart" (drop + reopen from
    /// disk): messages persist, and ids keep ascending rather than
    /// restarting from 1 and colliding.
    #[test]
    fn durable_mailstore_survives_reopen_with_ascending_ids() {
        let dir = std::env::temp_dir().join(format!("sf-emaildb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("mail");
        for ext in ["wal", "snap", "snap.tmp"] {
            let _ = std::fs::remove_file(base.with_extension(ext));
        }
        let c = caller();
        let msg = |sub: &str| {
            inv(
                "insert",
                vec![
                    Sexp::from("alice"),
                    Sexp::from("bob"),
                    Sexp::from(sub),
                    Sexp::from("body"),
                    Sexp::from("inbox"),
                ],
            )
        };
        let first_id = {
            let db =
                EmailDb::open_durable(Principal::message(b"dbkey"), Time::now, &base).unwrap();
            db.invoke(&msg("one"), &c).unwrap().as_u64().unwrap()
        };
        let db = EmailDb::open_durable(Principal::message(b"dbkey"), Time::now, &base).unwrap();
        let second_id = db.invoke(&msg("two"), &c).unwrap().as_u64().unwrap();
        assert!(second_id > first_id, "ids ascend across restarts");
        let out = db
            .invoke(&inv("select", vec![Sexp::from("alice")]), &c)
            .unwrap();
        assert_eq!(rows_from_sexp(&out).unwrap().len(), 2, "both survived");
        db.compact().unwrap();
        // Post-compaction restart recovers from the snapshot.
        let db = EmailDb::open_durable(Principal::message(b"dbkey"), Time::now, &base).unwrap();
        let out = db
            .invoke(&inv("select", vec![Sexp::from("alice")]), &c)
            .unwrap();
        assert_eq!(rows_from_sexp(&out).unwrap().len(), 2);
    }

    #[test]
    fn unknown_method_faults() {
        let db = EmailDb::new(Principal::message(b"dbkey"));
        let r = db.invoke(&inv("truncate", vec![Sexp::from("alice")]), &caller());
        assert!(matches!(r, Err(RmiFault::NoSuchMethod(_))));
        let r = db.invoke(&inv("select", vec![]), &caller());
        assert!(matches!(r, Err(RmiFault::Application(_))));
    }
}
