//! The quoting protocol gateway (paper §6.3).
//!
//! An HTML-over-HTTP front-end to the email database.  "It is important
//! that the gateway not misuse its authority and accidentally allow Bob to
//! read Alice's email… A better approach is to use quoting.  The gateway's
//! authority to access Alice's email in the database depends on the gateway
//! intentionally quoting Alice in its requests.  Therefore, as long as the
//! gateway correctly quotes its clients in its requests on the database
//! server, the correct access-control decision is made by the server."
//!
//! The transaction, exactly as in the paper:
//!
//! 1. Client `C` sends an unauthorized request `R` to the gateway `G`.
//! 2. `G` attempts the RMI call; the database faults with the required
//!    issuer `S` and restriction `T`.
//! 3. `G` answers `401` indicating it needs a proof that `G|? =T⇒ S` — the
//!    `?` pseudo-principal saves a round trip.
//! 4. The client substitutes its identity, delegates to "gateway quoting
//!    client", and resubmits with the delegation and a signed copy of `R`
//!    (showing `R ⇒ C`).
//! 5. `G` digests the proof into its Prover, verifies `R ⇒ C`, and forwards
//!    the request quoting `C`; the automatic RMI protocol submits the
//!    `G|C ⇒ S` proof and the database fulfills the request.
//! 6. `G` renders HTML from the rows. Subsequent requests skip the fanfare.

use snowflake_core::sync::LockExt;
use std::sync::{Arc, Mutex};
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent, EmitterSlot};
use snowflake_core::{ChainMemo, Principal, Tag, Time, VerifyCtx};
use snowflake_http::{auth, Handler, HttpRequest, HttpResponse};
use snowflake_reldb::{rows_from_sexp, Value};
use snowflake_rmi::{RmiClient, RmiError};
use snowflake_sexpr::Sexp;

use crate::emaildb::EMAIL_DB_OBJECT;

/// The HTTP→RMI quoting gateway.
pub struct QuotingGateway {
    /// The RMI connection to the database server (secure or local channel —
    /// the gateway "operates identically" over either).
    rmi: Mutex<RmiClient>,
    clock: fn() -> Time,
    /// Audit emitter; gateway-level decisions — client verification,
    /// forwarded grants, re-challenges, backend sheds — are recorded
    /// through it (surface `gateway`).
    audit: EmitterSlot,
    /// Verified-chain memo: "subsequent requests skip the fanfare" — the
    /// client re-presents the same `R ⇒ C` proof, so repeat verification
    /// skips the exponentiations.
    memo: Arc<ChainMemo>,
    /// Request latency in the per-surface request-duration family under
    /// `surface="gateway"`.
    latency: Arc<snowflake_metrics::LatencyHistogram>,
}

impl QuotingGateway {
    /// Wraps an RMI client connected to the email database.
    pub fn new(rmi: RmiClient, clock: fn() -> Time) -> QuotingGateway {
        QuotingGateway {
            rmi: Mutex::new(rmi),
            clock,
            audit: EmitterSlot::new(),
            memo: Arc::new(ChainMemo::new(256)),
            latency: snowflake_metrics::request_histogram("gateway"),
        }
    }

    /// Registers the gateway's chain memo with `registry` under
    /// `surface="gateway"`; request latency already lands in the shared
    /// per-surface histogram family at construction.
    pub fn register_metrics(&self, registry: &snowflake_metrics::Registry) {
        self.memo.register_metrics(registry, "gateway");
    }

    /// The gateway's verified-chain memo (exposed for counters and for
    /// registering it with a revocation bus).
    pub fn chain_memo(&self) -> Arc<ChainMemo> {
        Arc::clone(&self.memo)
    }

    /// Attaches an audit emitter recording this gateway's decisions.
    pub fn set_audit_emitter(&self, emitter: Arc<dyn AuditEmitter>) {
        self.audit.set(emitter);
    }

    /// Emits an audit event, building it only when an emitter is attached.
    fn audit(&self, build: impl FnOnce() -> DecisionEvent) {
        self.audit.emit_with(build);
    }

    /// Parses `/mail/<owner>/<folder>` paths.
    fn parse_path(path: &str) -> Option<(String, String)> {
        let rest = path.strip_prefix("/mail/")?;
        let (owner, folder) = rest.split_once('/')?;
        if owner.is_empty() || folder.is_empty() {
            return None;
        }
        Some((owner.to_string(), folder.to_string()))
    }

    /// Verifies the client's signed copy of the request (`R ⇒ C`) and
    /// returns the claimed client principal `C`.
    fn verify_client(&self, req: &HttpRequest) -> Result<Principal, String> {
        let proof = auth::extract_client_proof(req).ok_or("missing Sf-Client-Proof")?;
        let r_principal = auth::request_principal(req, snowflake_core::HashAlg::Sha256);
        let conclusion = proof.conclusion();
        let client = conclusion.issuer.clone();
        let ctx = VerifyCtx::at((self.clock)()).with_chain_memo(Arc::clone(&self.memo));
        ctx.authorize(&proof, &r_principal, &client, &Tag::Star)
            .map_err(|e| format!("client request proof rejected: {e}"))?;
        Ok(client)
    }

    /// Renders database rows as the HTML view the browser sees.
    fn render(owner: &str, folder: &str, rows: &[Vec<Value>]) -> String {
        let mut html = format!("<html><body><h1>{folder} of {owner}</h1><ul>");
        for row in rows {
            // Schema: id, owner, sender, subject, body, folder, unread.
            let sender = &row[2];
            let subject = &row[3];
            let body = &row[4];
            let unread = matches!(row[6], Value::Bool(true));
            html.push_str(&format!(
                "<li{}>From {sender}: <b>{subject}</b> — {body}</li>",
                if unread { " class=\"unread\"" } else { "" }
            ));
        }
        html.push_str("</ul></body></html>");
        html
    }

    /// Attempts an RMI call quoting `quotee`; on a missing proof returns
    /// the issuer/tag the database demanded.  Backend errors arrive as a
    /// ready HTTP response: a shed (BUSY) call maps to `503` — the
    /// database did not process it, so the client should retry — while
    /// everything else is a `502`.
    fn try_invoke(
        &self,
        quotee: Principal,
        method: &str,
        args: Vec<Sexp>,
    ) -> Result<Result<Sexp, (Principal, Tag)>, HttpResponse> {
        let mut rmi = self.rmi.plock();
        rmi.set_quoting(Some(quotee));
        let result = rmi.invoke(EMAIL_DB_OBJECT, method, args);
        rmi.set_quoting(None);
        match result {
            Ok(value) => Ok(Ok(value)),
            Err(RmiError::NoProof { issuer, tag }) => Ok(Err((issuer, tag))),
            Err(e) if e.is_busy() => {
                // The backend shed the call: record the gateway's own
                // shed decision (the 503 it maps the BUSY fault to).
                self.audit(|| {
                    DecisionEvent::new(
                        (self.clock)(),
                        "gateway",
                        Decision::Shed,
                        EMAIL_DB_OBJECT,
                        method,
                        &format!("database busy: {e}"),
                    )
                });
                let mut resp =
                    HttpResponse::status(503, "Service Unavailable", &format!("database busy: {e}"));
                resp.set_header("Retry-After", "1");
                Err(resp)
            }
            Err(e) => Err(HttpResponse::status(
                502,
                "Bad Gateway",
                &format!("database error: {e}"),
            )),
        }
    }

    /// Maps the HTTP request onto the database method and arguments.
    ///
    /// `GET /mail/<owner>/<folder>` selects; `POST /mail/<owner>/<folder>`
    /// inserts a message whose body is `subject\n\nbody` (what a compose
    /// form submits).
    fn db_call(
        req: &HttpRequest,
        owner: &str,
        folder: &str,
    ) -> Result<(String, Vec<Sexp>), HttpResponse> {
        match req.method.as_str() {
            "GET" => Ok(("select".into(), vec![Sexp::from(owner), Sexp::from(folder)])),
            "POST" => {
                let text = String::from_utf8_lossy(&req.body);
                let (subject, body) = text.split_once("\n\n").unwrap_or((text.as_ref(), ""));
                Ok((
                    "insert".into(),
                    vec![
                        Sexp::from(owner),
                        Sexp::from("web-compose"),
                        Sexp::from(subject.trim()),
                        Sexp::from(body.trim()),
                        Sexp::from(folder),
                    ],
                ))
            }
            _ => Err(HttpResponse::status(
                405,
                "Method Not Allowed",
                "GET or POST",
            )),
        }
    }
}

impl Handler for QuotingGateway {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let _timer = self.latency.start_timer();
        let Some((owner, folder)) = Self::parse_path(&req.path) else {
            return HttpResponse::not_found();
        };
        let (method, args) = match Self::db_call(req, &owner, &folder) {
            Ok(call) => call,
            Err(resp) => return resp,
        };

        // Do we know who the client is?  Without a signed request we can
        // only discover the database's demands with the `?` placeholder.
        let client = match auth::extract_client_proof(req) {
            None => {
                // Probe the database to learn (S, T), then challenge with
                // the G|? form.
                let placeholder = Principal::message(b"?");
                match self.try_invoke(placeholder, &method, args.clone()) {
                    Ok(Ok(_)) => unreachable!("placeholder cannot hold authority"),
                    Ok(Err((issuer, tag))) => {
                        self.audit(|| {
                            DecisionEvent::new(
                                (self.clock)(),
                                "gateway",
                                Decision::Deny,
                                &req.path,
                                &req.method,
                                "challenge: client must prove gateway-quoting-client chain",
                            )
                        });
                        let mut resp = auth::challenge(&issuer, &tag);
                        // `G` is the gateway's channel-facing key: that is
                        // the quoter the database will see.
                        let rmi = self.rmi.plock();
                        auth::add_quoter(&mut resp, &rmi.speaker());
                        return resp;
                    }
                    Err(resp) => return resp,
                }
            }
            Some(_) => match self.verify_client(req) {
                Ok(c) => c,
                Err(e) => {
                    self.audit(|| {
                        DecisionEvent::new(
                            (self.clock)(),
                            "gateway",
                            Decision::Deny,
                            &req.path,
                            &req.method,
                            &e,
                        )
                    });
                    return HttpResponse::forbidden(&e);
                }
            },
        };

        // Digest the delegation proof (G|C ⇒ S) the client supplied.
        if let Some(proof) = auth::extract_proof(req) {
            self.rmi.plock().prover().add_proof(proof);
        }

        // Forward the request, quoting the client.
        match self.try_invoke(client.clone(), &method, args) {
            Ok(Ok(value)) => {
                // The database (seeing G|C end to end) said yes; record the
                // gateway's side of the granted transaction.
                self.audit(|| {
                    let certs = auth::extract_proof(req)
                        .map(|p| p.cert_hashes())
                        .unwrap_or_default();
                    DecisionEvent::new(
                        (self.clock)(),
                        "gateway",
                        Decision::Grant,
                        &req.path,
                        &req.method,
                        "forwarded quoting client; database granted",
                    )
                    .with_subject(client.clone())
                    .with_certs(certs)
                });
                if method == "select" {
                    match rows_from_sexp(&value) {
                        Ok(rows) => HttpResponse::ok(
                            "text/html",
                            Self::render(&owner, &folder, &rows).into_bytes(),
                        ),
                        Err(e) => HttpResponse::status(502, "Bad Gateway", &e.to_string()),
                    }
                } else {
                    HttpResponse::status(201, "Created", &format!("message id {value}"))
                }
            }
            Ok(Err((issuer, tag))) => {
                // Still unauthorized: re-challenge (e.g. wrong owner).
                self.audit(|| {
                    DecisionEvent::new(
                        (self.clock)(),
                        "gateway",
                        Decision::Deny,
                        &req.path,
                        &req.method,
                        "database still demands proof (re-challenge)",
                    )
                    .with_subject(client.clone())
                });
                let mut resp = auth::challenge(&issuer, &tag);
                let rmi = self.rmi.plock();
                auth::add_quoter(&mut resp, &rmi.speaker());
                resp
            }
            Err(resp) => resp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_parsing() {
        assert_eq!(
            QuotingGateway::parse_path("/mail/alice/inbox"),
            Some(("alice".into(), "inbox".into()))
        );
        assert_eq!(QuotingGateway::parse_path("/mail/alice"), None);
        assert_eq!(QuotingGateway::parse_path("/other"), None);
        assert_eq!(QuotingGateway::parse_path("/mail//inbox"), None);
    }

    #[test]
    fn render_marks_unread() {
        let rows = vec![
            vec![
                Value::Int(1),
                Value::text("alice"),
                Value::text("bob"),
                Value::text("hi"),
                Value::text("lunch?"),
                Value::text("inbox"),
                Value::Bool(true),
            ],
            vec![
                Value::Int(2),
                Value::text("alice"),
                Value::text("carol"),
                Value::text("yo"),
                Value::text("dinner?"),
                Value::text("inbox"),
                Value::Bool(false),
            ],
        ];
        let html = QuotingGateway::render("alice", "inbox", &rows);
        assert!(html.contains("unread"));
        assert!(html.contains("lunch?"));
        assert!(html.contains("dinner?"));
        assert_eq!(html.matches("<li").count(), 2);
    }
}
