//! The three Snowflake applications (paper §6).
//!
//! "We built three applications to demonstrate the Snowflake architecture
//! for sharing":
//!
//! * [`webserver`] — §6.1's protected web file server: "one user establishes
//!   control over the file server by specifying the hash of his public key
//!   when starting up the server; he may delegate to others permission to
//!   read subtrees or individual files."  Backed by [`vfs`], an in-memory
//!   file tree.
//! * [`emaildb`] — §6.2's protected relational email database: insert,
//!   update, and select arrive as RMI invocations; every method is prefixed
//!   by the framework's `check_auth`, and restriction tags carry row-level
//!   ownership (`(db (op select) (owner alice))`).
//! * [`gateway`] — §6.3's quoting protocol gateway: an HTML-over-HTTP
//!   front-end to the email database that **quotes** its clients instead of
//!   making access-control decisions itself, so "the correct access-control
//!   decision is made by the server."  This single application spans all
//!   four boundaries of §2.

pub mod emaildb;
pub mod gateway;
pub mod vfs;
pub mod webserver;

pub use emaildb::EmailDb;
pub use gateway::QuotingGateway;
pub use vfs::Vfs;
pub use webserver::ProtectedWebService;
