//! An in-memory virtual file system backing the protected web server.

use snowflake_core::sync::RwLockExt;
use std::sync::RwLock;
use std::collections::BTreeMap;

/// A tiny path-keyed file store.
#[derive(Default)]
pub struct Vfs {
    files: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl Vfs {
    /// Creates an empty file system.
    pub fn new() -> Vfs {
        Vfs::default()
    }

    /// Writes (creating or replacing) a file.
    pub fn write(&self, path: &str, data: impl Into<Vec<u8>>) {
        self.files.pwrite().insert(normalize(path), data.into());
    }

    /// Reads a file.
    pub fn read(&self, path: &str) -> Option<Vec<u8>> {
        self.files.pread().get(&normalize(path)).cloned()
    }

    /// Lists paths under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let prefix = normalize(prefix);
        self.files
            .pread()
            .keys()
            .filter(|p| p.starts_with(&prefix))
            .cloned()
            .collect()
    }

    /// Removes a file; returns whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.files.pwrite().remove(&normalize(path)).is_some()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.pread().len()
    }

    /// Is the file system empty?
    pub fn is_empty(&self) -> bool {
        self.files.pread().is_empty()
    }
}

/// Normalizes to a leading-slash, no-trailing-slash form and resolves away
/// `.`/`..` segments so delegated subtree prefixes cannot be escaped.
fn normalize(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    format!("/{}", out.join("/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_remove() {
        let vfs = Vfs::new();
        vfs.write("/a/b.txt", b"hello".to_vec());
        assert_eq!(vfs.read("/a/b.txt").unwrap(), b"hello");
        assert_eq!(vfs.read("a/b.txt").unwrap(), b"hello", "normalization");
        assert!(vfs.remove("/a/b.txt"));
        assert!(!vfs.remove("/a/b.txt"));
        assert!(vfs.read("/a/b.txt").is_none());
    }

    #[test]
    fn list_by_prefix() {
        let vfs = Vfs::new();
        vfs.write("/site/index.html", b"i".to_vec());
        vfs.write("/site/docs/a.html", b"a".to_vec());
        vfs.write("/other/x", b"x".to_vec());
        let site = vfs.list("/site");
        assert_eq!(site.len(), 2);
        assert_eq!(vfs.list("/").len(), 3);
        assert_eq!(vfs.len(), 3);
    }

    #[test]
    fn dotdot_cannot_escape() {
        let vfs = Vfs::new();
        vfs.write("/secret/key", b"k".to_vec());
        vfs.write("/public/index", b"i".to_vec());
        // Trying to read the secret via a public-prefixed traversal fails to
        // produce a path under /public — it normalizes to the real path, so
        // prefix-scoped authority checks see the true target.
        assert_eq!(normalize("/public/../secret/key"), "/secret/key");
        assert_eq!(normalize("/public/./x"), "/public/x");
        assert_eq!(normalize("//public///x"), "/public/x");
        assert_eq!(normalize("/.."), "/");
    }
}
