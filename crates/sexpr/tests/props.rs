//! Property-based tests: every encoding round-trips every expression.

use proptest::prelude::*;
use snowflake_sexpr::Sexp;

/// Strategy producing arbitrary S-expressions up to a bounded depth/size.
fn arb_sexp() -> impl Strategy<Value = Sexp> {
    let leaf = prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Sexp::atom),
        "[a-zA-Z][a-zA-Z0-9._/-]{0,15}".prop_map(|s| Sexp::from(s.as_str())),
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(|h| Sexp::hinted_atom(h, "payload")),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Sexp::list)
    })
}

proptest! {
    #[test]
    fn canonical_roundtrip(e in arb_sexp()) {
        let c = e.canonical();
        prop_assert_eq!(Sexp::parse(&c).unwrap(), e);
    }

    #[test]
    fn transport_roundtrip(e in arb_sexp()) {
        let t = e.transport();
        prop_assert_eq!(Sexp::parse(t.as_bytes()).unwrap(), e);
    }

    #[test]
    fn advanced_roundtrip(e in arb_sexp()) {
        let a = e.advanced();
        prop_assert_eq!(Sexp::parse(a.as_bytes()).unwrap(), e.clone());
        let p = e.advanced_pretty();
        prop_assert_eq!(Sexp::parse(p.as_bytes()).unwrap(), e);
    }

    #[test]
    fn canonical_len_exact(e in arb_sexp()) {
        prop_assert_eq!(e.canonical_len(), e.canonical().len());
    }

    #[test]
    fn canonical_is_injective(a in arb_sexp(), b in arb_sexp()) {
        // Distinct expressions never share a canonical form.
        if a != b {
            prop_assert_ne!(a.canonical(), b.canonical());
        }
    }

    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Sexp::parse(&bytes);
        let _ = Sexp::parse_many(&bytes);
    }

    #[test]
    fn b64_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let enc = snowflake_sexpr::b64_encode(&bytes);
        prop_assert_eq!(snowflake_sexpr::b64_decode(enc.as_bytes()).unwrap(), bytes);
    }

    #[test]
    fn hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let enc = snowflake_sexpr::hex_encode(&bytes);
        prop_assert_eq!(snowflake_sexpr::hex_decode(enc.as_bytes()).unwrap(), bytes);
    }
}
