//! Parser for the canonical, transport, and advanced encodings.
//!
//! One recursive-descent parser covers all three: canonical verbatim atoms
//! (`3:abc`) are part of the advanced grammar, and a leading `{` switches to
//! the transport encoding (base64 of canonical).

use crate::base64::{b64_decode, hex_decode};
use crate::error::ParseError;
use crate::Sexp;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

/// Parses exactly one S-expression; trailing non-whitespace is an error.
pub fn parse(input: &[u8]) -> Result<Sexp, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing data after expression"));
    }
    Ok(e)
}

/// Parses a whitespace-separated sequence of S-expressions.
pub fn parse_many(input: &[u8]) -> Result<Vec<Sexp>, ParseError> {
    let mut p = Parser { input, pos: 0 };
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.pos == p.input.len() {
            return Ok(out);
        }
        out.push(p.expr()?);
    }
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expr(&mut self) -> Result<Sexp, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'(') => self.list(),
            Some(b'{') => self.transport(),
            Some(b'[') => {
                let hint = self.display_hint()?;
                let mut atom = self.atom()?;
                if let Sexp::Atom { hint: h, .. } = &mut atom {
                    *h = Some(hint);
                }
                Ok(atom)
            }
            Some(b')') => Err(self.err("unmatched ')'")),
            Some(_) => self.atom(),
        }
    }

    fn list(&mut self) -> Result<Sexp, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'('));
        self.bump();
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated list")),
                Some(b')') => {
                    self.bump();
                    return Ok(Sexp::List(items));
                }
                Some(_) => items.push(self.expr()?),
            }
        }
    }

    fn transport(&mut self) -> Result<Sexp, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        let start = self.pos;
        self.bump();
        let open = self.pos;
        while let Some(c) = self.peek() {
            if c == b'}' {
                let inner = &self.input[open..self.pos];
                self.bump();
                let canonical = b64_decode(inner).ok_or_else(|| {
                    ParseError::new(start, "invalid base64 in transport encoding")
                })?;
                return parse(&canonical).map_err(|e| {
                    ParseError::new(start, format!("inside transport encoding: {}", e.message))
                });
            }
            self.bump();
        }
        Err(self.err("unterminated transport encoding"))
    }

    fn display_hint(&mut self) -> Result<Vec<u8>, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.bump();
        let atom = self.atom()?;
        let bytes = match atom {
            Sexp::Atom { bytes, .. } => bytes,
            Sexp::List(_) => unreachable!("atom() never returns a list"),
        };
        if self.peek() != Some(b']') {
            return Err(self.err("expected ']' after display hint"));
        }
        self.bump();
        Ok(bytes)
    }

    /// Parses any atom form: verbatim `N:bytes`, decimal-prefixed base64 /
    /// quoted strings, bare tokens, `"quoted"`, `|base64|`, `#hex#`.
    fn atom(&mut self) -> Result<Sexp, ParseError> {
        match self.peek() {
            Some(b'0'..=b'9') => self.length_prefixed(),
            Some(b'"') => self.quoted(None),
            Some(b'|') => self.base64_atom(),
            Some(b'#') => self.hex_atom(),
            Some(c) if is_token_start(c) => self.token(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn length_prefixed(&mut self) -> Result<Sexp, ParseError> {
        let mut len: usize = 0;
        let digits_start = self.pos;
        while let Some(c @ b'0'..=b'9') = self.peek() {
            len = len
                .checked_mul(10)
                .and_then(|n| n.checked_add((c - b'0') as usize))
                .ok_or_else(|| self.err("length overflow"))?;
            self.bump();
        }
        if self.pos == digits_start {
            return Err(self.err("expected decimal length"));
        }
        match self.peek() {
            Some(b':') => {
                self.bump();
                if self.pos + len > self.input.len() {
                    return Err(self.err("verbatim atom extends past end of input"));
                }
                let bytes = self.input[self.pos..self.pos + len].to_vec();
                self.pos += len;
                Ok(Sexp::atom(bytes))
            }
            Some(b'"') => self.quoted(Some(len)),
            Some(b'|') => {
                let a = self.base64_atom()?;
                self.check_decoded_len(&a, len)?;
                Ok(a)
            }
            Some(b'#') => {
                let a = self.hex_atom()?;
                self.check_decoded_len(&a, len)?;
                Ok(a)
            }
            _ => {
                // A bare numeric token such as `12345`.
                let text = &self.input[digits_start..self.pos];
                Ok(Sexp::atom(text.to_vec()))
            }
        }
    }

    fn check_decoded_len(&self, atom: &Sexp, expected: usize) -> Result<(), ParseError> {
        let got = atom.as_atom().map(<[u8]>::len).unwrap_or(0);
        if got != expected {
            return Err(self.err(format!(
                "length prefix {expected} does not match decoded length {got}"
            )));
        }
        Ok(())
    }

    fn quoted(&mut self, expected_len: Option<usize>) -> Result<Sexp, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump();
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated quoted string")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    None => return Err(self.err("unterminated escape")),
                    Some(b'n') => bytes.push(b'\n'),
                    Some(b'r') => bytes.push(b'\r'),
                    Some(b't') => bytes.push(b'\t'),
                    Some(b'\\') => bytes.push(b'\\'),
                    Some(b'"') => bytes.push(b'"'),
                    Some(b'x') => {
                        let hi = self.bump().ok_or_else(|| self.err("bad \\x escape"))?;
                        let lo = self.bump().ok_or_else(|| self.err("bad \\x escape"))?;
                        let v = hex_decode(&[hi, lo]).ok_or_else(|| self.err("bad \\x escape"))?;
                        bytes.push(v[0]);
                    }
                    Some(c) => return Err(self.err(format!("unknown escape \\{}", c as char))),
                },
                Some(c) => bytes.push(c),
            }
        }
        if let Some(n) = expected_len {
            if bytes.len() != n {
                return Err(self.err("length prefix does not match quoted string"));
            }
        }
        Ok(Sexp::atom(bytes))
    }

    fn base64_atom(&mut self) -> Result<Sexp, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'|'));
        self.bump();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'|' {
                let inner = &self.input[start..self.pos];
                self.bump();
                let bytes = b64_decode(inner)
                    .ok_or_else(|| ParseError::new(start, "invalid base64 atom"))?;
                return Ok(Sexp::atom(bytes));
            }
            self.bump();
        }
        Err(self.err("unterminated base64 atom"))
    }

    fn hex_atom(&mut self) -> Result<Sexp, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'#'));
        self.bump();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'#' {
                let inner = &self.input[start..self.pos];
                self.bump();
                let bytes =
                    hex_decode(inner).ok_or_else(|| ParseError::new(start, "invalid hex atom"))?;
                return Ok(Sexp::atom(bytes));
            }
            self.bump();
        }
        Err(self.err("unterminated hex atom"))
    }

    fn token(&mut self) -> Result<Sexp, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_token_char(c)) {
            self.bump();
        }
        Ok(Sexp::atom(self.input[start..self.pos].to_vec()))
    }
}

/// Token characters per the Rivest draft: alphanumeric plus punctuation that
/// cannot be confused with structure.
pub(crate) fn is_token_char(c: u8) -> bool {
    c.is_ascii_alphanumeric()
        || matches!(
            c,
            b'-' | b'.'
                | b'/'
                | b'_'
                | b':'
                | b'*'
                | b'+'
                | b'='
                | b'?'
                | b'!'
                | b'%'
                | b'^'
                | b'~'
                | b'\''
                | b'@'
        )
}

/// A token may not start with a digit (that selects the verbatim form).
pub(crate) fn is_token_start(c: u8) -> bool {
    is_token_char(c) && !c.is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_subset() {
        let e = parse(b"(3:tag(3:web))").unwrap();
        assert_eq!(e.tag_name(), Some("tag"));
    }

    #[test]
    fn token_and_quoted_mix() {
        let e = parse(br#"(name "Alice B." alias)"#).unwrap();
        let items = e.as_list().unwrap();
        assert_eq!(items[1].as_str(), Some("Alice B."));
        assert_eq!(items[2].as_str(), Some("alias"));
    }

    #[test]
    fn escapes_in_quoted() {
        let e = parse(br#""a\n\t\"\\\x41""#).unwrap();
        assert_eq!(e.as_atom().unwrap(), b"a\n\t\"\\A");
    }

    #[test]
    fn hex_and_b64_atoms() {
        assert_eq!(
            parse(b"#deadbeef#").unwrap().as_atom().unwrap(),
            &[0xde, 0xad, 0xbe, 0xef]
        );
        assert_eq!(parse(b"|Zm9v|").unwrap().as_atom().unwrap(), b"foo");
    }

    #[test]
    fn length_prefixed_variants() {
        assert_eq!(parse(b"3:foo").unwrap().as_atom().unwrap(), b"foo");
        assert_eq!(parse(b"3|Zm9v|").unwrap().as_atom().unwrap(), b"foo");
        assert_eq!(
            parse(b"4#deadbeef#").unwrap().as_atom().unwrap(),
            &[0xde, 0xad, 0xbe, 0xef]
        );
        assert_eq!(parse(br#"3"foo""#).unwrap().as_atom().unwrap(), b"foo");
        assert!(parse(b"2|Zm9v|").is_err());
    }

    #[test]
    fn bare_number_is_token() {
        assert_eq!(parse(b"12345").unwrap().as_str(), Some("12345"));
    }

    #[test]
    fn whitespace_tolerance() {
        let e = parse(b"  ( a\n\t(b   c) )  ").unwrap();
        assert_eq!(e.as_list().unwrap().len(), 2);
    }

    #[test]
    fn deep_nesting() {
        let mut txt = String::new();
        for _ in 0..200 {
            txt.push('(');
        }
        txt.push('x');
        for _ in 0..200 {
            txt.push(')');
        }
        let mut e = parse(txt.as_bytes()).unwrap();
        for _ in 0..200 {
            e = e.as_list().unwrap()[0].clone();
        }
        assert_eq!(e.as_str(), Some("x"));
    }
}
