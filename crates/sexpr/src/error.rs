//! Parse errors for the S-expression codecs.

use std::fmt;

/// An error produced while parsing an S-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "s-expression parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}
