//! Base64 and hex codecs implemented from scratch.
//!
//! The transport encoding and the advanced encoding's `|…|` and `#…#` atom
//! forms need base64 and hex.  No external codec crates are used; these are
//! straightforward RFC 4648 implementations, whitespace-tolerant on decode as
//! the S-expression draft requires.

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64 with `=` padding.
pub fn b64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes base64, ignoring ASCII whitespace; `=` padding is optional.
pub fn b64_decode(text: &[u8]) -> Option<Vec<u8>> {
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    let mut out = Vec::with_capacity(text.len() / 4 * 3);
    let mut seen_pad = false;
    for &c in text {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == b'=' {
            seen_pad = true;
            continue;
        }
        if seen_pad {
            return None; // data after padding
        }
        let v = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a' + 26,
            b'0'..=b'9' => c - b'0' + 52,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        } as u32;
        acc = (acc << 6) | v;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    // Any leftover bits must be zero padding bits from the final sextet.
    if bits > 0 && (acc & ((1 << bits) - 1)) != 0 {
        return None;
    }
    Some(out)
}

/// Encodes bytes as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 15) as usize] as char);
    }
    out
}

/// Decodes hex (either case), ignoring ASCII whitespace.
pub fn hex_decode(text: &[u8]) -> Option<Vec<u8>> {
    let mut nibbles = Vec::with_capacity(text.len());
    for &c in text {
        if c.is_ascii_whitespace() {
            continue;
        }
        let v = match c {
            b'0'..=b'9' => c - b'0',
            b'a'..=b'f' => c - b'a' + 10,
            b'A'..=b'F' => c - b'A' + 10,
            _ => return None,
        };
        nibbles.push(v);
    }
    if nibbles.len() % 2 != 0 {
        return None;
    }
    Some(nibbles.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b64_rfc4648_vectors() {
        assert_eq!(b64_encode(b""), "");
        assert_eq!(b64_encode(b"f"), "Zg==");
        assert_eq!(b64_encode(b"fo"), "Zm8=");
        assert_eq!(b64_encode(b"foo"), "Zm9v");
        assert_eq!(b64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(b64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(b64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn b64_decode_vectors() {
        assert_eq!(b64_decode(b"Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(b64_decode(b"Zm9v YmFy\n").unwrap(), b"foobar");
        assert_eq!(b64_decode(b"Zg==").unwrap(), b"f");
        assert_eq!(b64_decode(b"Zg").unwrap(), b"f");
        assert!(b64_decode(b"Zg==X").is_none());
        assert!(b64_decode(b"Z!").is_none());
        // Non-zero trailing bits rejected.
        assert!(b64_decode(b"Zh==").is_none());
    }

    #[test]
    fn b64_roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(b64_decode(b64_encode(&data).as_bytes()).unwrap(), data);
    }

    #[test]
    fn hex_roundtrip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(hex_decode(hex_encode(&data).as_bytes()).unwrap(), data);
        assert_eq!(
            hex_decode(b"DeadBEEF").unwrap(),
            vec![0xde, 0xad, 0xbe, 0xef]
        );
        assert!(hex_decode(b"abc").is_none());
        assert!(hex_decode(b"zz").is_none());
    }
}
