//! SPKI S-expressions.
//!
//! Snowflake encodes every statement, principal, proof, and wire message as
//! an S-expression in the style of [Rivest's draft][sexp] used by SPKI
//! (RFC 2693).  The paper relies on this format because it has "both robust
//! and efficient wire transfer encodings" (§2.4): the *canonical* encoding is
//! a unique byte string suitable for hashing and signing, the *transport*
//! encoding wraps the canonical form in base64 for 7-bit-safe protocols such
//! as HTTP headers, and the *advanced* encoding is the human-readable form
//! shown in the paper's Figure 5.
//!
//! [sexp]: https://people.csail.mit.edu/rivest/Sexp.txt
//!
//! # Examples
//!
//! ```
//! use snowflake_sexpr::Sexp;
//!
//! let e = Sexp::list(vec![
//!     Sexp::from("tag"),
//!     Sexp::list(vec![Sexp::from("web"), Sexp::from("GET")]),
//! ]);
//! assert_eq!(e.canonical(), b"(3:tag(3:web3:GET))".to_vec());
//! let parsed = Sexp::parse(&e.canonical()).unwrap();
//! assert_eq!(parsed, e);
//! ```

mod base64;
mod error;
mod parse;
mod print;

pub use base64::{b64_decode, b64_encode, hex_decode, hex_encode};
pub use error::ParseError;

use std::fmt;

/// An SPKI S-expression: an octet-string atom or a list of S-expressions.
///
/// Atoms may carry an optional *display hint* (`[hint]bytes` in the wire
/// encodings) describing how the octet string should be presented, per the
/// Rivest draft.  Hints participate in equality and in the canonical
/// encoding, so two atoms differing only in hint hash differently.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sexp {
    /// An octet-string atom with an optional display hint.
    Atom {
        /// Optional display hint (e.g. `text/plain`).
        hint: Option<Vec<u8>>,
        /// The octet string itself.
        bytes: Vec<u8>,
    },
    /// A parenthesized list of sub-expressions.
    List(Vec<Sexp>),
}

impl Sexp {
    /// Creates an atom from raw bytes with no display hint.
    pub fn atom(bytes: impl Into<Vec<u8>>) -> Self {
        Sexp::Atom {
            hint: None,
            bytes: bytes.into(),
        }
    }

    /// Creates an atom with a display hint.
    pub fn hinted_atom(hint: impl Into<Vec<u8>>, bytes: impl Into<Vec<u8>>) -> Self {
        Sexp::Atom {
            hint: Some(hint.into()),
            bytes: bytes.into(),
        }
    }

    /// Creates a list expression.
    pub fn list(items: Vec<Sexp>) -> Self {
        Sexp::List(items)
    }

    /// Creates a list whose first element is the atom `tag_name` — the
    /// ubiquitous SPKI "tagged list" shape, e.g. `(hash md5 |...|)`.
    pub fn tagged(tag_name: &str, rest: Vec<Sexp>) -> Self {
        let mut items = Vec::with_capacity(rest.len() + 1);
        items.push(Sexp::atom(tag_name.as_bytes().to_vec()));
        items.extend(rest);
        Sexp::List(items)
    }

    /// Creates an atom holding the decimal representation of `n`.
    pub fn int(n: u64) -> Self {
        Sexp::atom(n.to_string().into_bytes())
    }

    /// Returns the atom's bytes, or `None` for a list.
    pub fn as_atom(&self) -> Option<&[u8]> {
        match self {
            Sexp::Atom { bytes, .. } => Some(bytes),
            Sexp::List(_) => None,
        }
    }

    /// Returns the atom's bytes as UTF-8, or `None` for lists / non-UTF-8.
    pub fn as_str(&self) -> Option<&str> {
        self.as_atom().and_then(|b| std::str::from_utf8(b).ok())
    }

    /// Parses the atom as a decimal `u64`, or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_str().and_then(|s| s.parse().ok())
    }

    /// Returns the list's items, or `None` for an atom.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::Atom { .. } => None,
            Sexp::List(items) => Some(items),
        }
    }

    /// Returns `true` if this is an atom.
    pub fn is_atom(&self) -> bool {
        matches!(self, Sexp::Atom { .. })
    }

    /// For a tagged list `(name …)`, returns `name` when it is a UTF-8 atom.
    pub fn tag_name(&self) -> Option<&str> {
        self.as_list()
            .and_then(|items| items.first())
            .and_then(|h| h.as_str())
    }

    /// For a tagged list, returns the elements after the tag name.
    pub fn tag_body(&self) -> Option<&[Sexp]> {
        match self.as_list() {
            Some(items) if !items.is_empty() => Some(&items[1..]),
            _ => None,
        }
    }

    /// Looks up the first sub-list of a tagged list whose own tag is `name`.
    ///
    /// This is the common SPKI accessor pattern: in
    /// `(cert (issuer X) (subject Y))`, `find("subject")` returns
    /// `(subject Y)`.
    pub fn find(&self, name: &str) -> Option<&Sexp> {
        self.tag_body()?.iter().find(|e| e.tag_name() == Some(name))
    }

    /// Like [`Sexp::find`] but returns the *single* body element of the found
    /// sub-list, i.e. `find_value("subject")` on
    /// `(cert (subject Y))` returns `Y`.
    pub fn find_value(&self, name: &str) -> Option<&Sexp> {
        let found = self.find(name)?;
        let body = found.tag_body()?;
        if body.len() == 1 {
            Some(&body[0])
        } else {
            None
        }
    }

    /// Serializes to the canonical encoding (unique; used for hashing and
    /// signing).
    pub fn canonical(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.canonical_len());
        self.write_canonical(&mut out);
        out
    }

    /// Length in bytes of the canonical encoding, without materializing it.
    pub fn canonical_len(&self) -> usize {
        match self {
            Sexp::Atom { hint, bytes } => {
                let mut n = dec_len(bytes.len()) + 1 + bytes.len();
                if let Some(h) = hint {
                    n += 2 + dec_len(h.len()) + 1 + h.len();
                }
                n
            }
            Sexp::List(items) => 2 + items.iter().map(Sexp::canonical_len).sum::<usize>(),
        }
    }

    fn write_canonical(&self, out: &mut Vec<u8>) {
        match self {
            Sexp::Atom { hint, bytes } => {
                if let Some(h) = hint {
                    out.push(b'[');
                    out.extend_from_slice(h.len().to_string().as_bytes());
                    out.push(b':');
                    out.extend_from_slice(h);
                    out.push(b']');
                }
                out.extend_from_slice(bytes.len().to_string().as_bytes());
                out.push(b':');
                out.extend_from_slice(bytes);
            }
            Sexp::List(items) => {
                out.push(b'(');
                for item in items {
                    item.write_canonical(out);
                }
                out.push(b')');
            }
        }
    }

    /// Serializes to the transport encoding: `{base64(canonical)}`.
    ///
    /// The transport encoding is 7-bit safe and whitespace tolerant, which is
    /// what lets proofs travel inside HTTP headers (paper §5.3, Figure 5).
    pub fn transport(&self) -> String {
        format!("{{{}}}", b64_encode(&self.canonical()))
    }

    /// Serializes to the human-readable advanced encoding.
    ///
    /// Token-safe atoms print bare, printable strings print quoted, and
    /// binary atoms print as base64 between `|` bars — the format used in the
    /// paper's Figure 5.
    pub fn advanced(&self) -> String {
        let mut s = String::new();
        print::write_advanced(self, &mut s, 0, false);
        s
    }

    /// Pretty multi-line advanced encoding with indentation.
    pub fn advanced_pretty(&self) -> String {
        let mut s = String::new();
        print::write_advanced(self, &mut s, 0, true);
        s
    }

    /// Parses any of the three encodings (auto-detected).
    ///
    /// A leading `{` selects the transport encoding; otherwise the input is
    /// parsed as the advanced grammar, of which the canonical encoding is a
    /// subset.
    pub fn parse(input: &[u8]) -> Result<Sexp, ParseError> {
        parse::parse(input)
    }

    /// Parses a sequence of S-expressions separated by whitespace.
    pub fn parse_many(input: &[u8]) -> Result<Vec<Sexp>, ParseError> {
        parse::parse_many(input)
    }
}

impl From<&str> for Sexp {
    fn from(s: &str) -> Self {
        Sexp::atom(s.as_bytes().to_vec())
    }
}

impl From<String> for Sexp {
    fn from(s: String) -> Self {
        Sexp::atom(s.into_bytes())
    }
}

impl From<u64> for Sexp {
    fn from(n: u64) -> Self {
        Sexp::int(n)
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.advanced())
    }
}

impl fmt::Debug for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.advanced())
    }
}

fn dec_len(mut n: usize) -> usize {
    let mut digits = 1;
    while n >= 10 {
        n /= 10;
        digits += 1;
    }
    digits
}

/// Convenience macro for building S-expressions.
///
/// # Examples
///
/// ```
/// use snowflake_sexpr::{sexp, Sexp};
/// let e = sexp!["tag", ["web", ["method", "GET"]]];
/// assert_eq!(e.canonical(), b"(3:tag(3:web(6:method3:GET)))".to_vec());
/// ```
#[macro_export]
macro_rules! sexp {
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Sexp::list(vec![ $( $crate::sexp!($item) ),* ])
    };
    ($e:expr) => {
        $crate::Sexp::from($e)
    };
    ($($item:tt),+ $(,)?) => {
        $crate::Sexp::list(vec![ $( $crate::sexp!($item) ),* ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_canonical() {
        assert_eq!(Sexp::from("abc").canonical(), b"3:abc");
        assert_eq!(Sexp::atom(vec![]).canonical(), b"0:");
        let long = Sexp::atom(vec![b'x'; 120]);
        let mut expect = b"120:".to_vec();
        expect.extend(vec![b'x'; 120]);
        assert_eq!(long.canonical(), expect);
    }

    #[test]
    fn hinted_atom_canonical_roundtrip() {
        let e = Sexp::hinted_atom("text/plain", "hello");
        let c = e.canonical();
        assert_eq!(c, b"[10:text/plain]5:hello");
        assert_eq!(Sexp::parse(&c).unwrap(), e);
    }

    #[test]
    fn list_canonical() {
        let e = Sexp::tagged("hash", vec![Sexp::from("md5"), Sexp::atom(vec![0u8, 255])]);
        let c = e.canonical();
        let parsed = Sexp::parse(&c).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn canonical_len_matches() {
        let e = sexp![
            "cert",
            ["issuer", "alice"],
            ["subject", "bob"],
            ["tag", ["*"]]
        ];
        assert_eq!(e.canonical_len(), e.canonical().len());
    }

    #[test]
    fn transport_roundtrip() {
        let e = sexp!["a", ["b", "c"], "d"];
        let t = e.transport();
        assert!(t.starts_with('{') && t.ends_with('}'));
        assert_eq!(Sexp::parse(t.as_bytes()).unwrap(), e);
    }

    #[test]
    fn advanced_roundtrip_tokens() {
        let e = sexp![
            "tag",
            ["web", ["method", "GET"], ["resourcePath", "/inbox/1"]]
        ];
        let a = e.advanced();
        assert_eq!(Sexp::parse(a.as_bytes()).unwrap(), e);
    }

    #[test]
    fn advanced_roundtrip_binary() {
        let e = Sexp::tagged(
            "hash",
            vec![Sexp::from("md5"), Sexp::atom(vec![1, 2, 3, 250])],
        );
        let a = e.advanced();
        assert!(a.contains('|'), "binary atom should render as base64: {a}");
        assert_eq!(Sexp::parse(a.as_bytes()).unwrap(), e);
    }

    #[test]
    fn advanced_quoted_string() {
        let e = Sexp::from("hello world (not a list)");
        let a = e.advanced();
        assert!(a.starts_with('"'), "{a}");
        assert_eq!(Sexp::parse(a.as_bytes()).unwrap(), e);
    }

    #[test]
    fn figure5_style_message_parses() {
        // The challenge parameters from the paper's Figure 5.
        let txt =
            br#"(tag (web (method GET) (service |Sm9uJ3MgUHJvdGVjdGVpY2U=|) (resourcePath "")))"#;
        let e = Sexp::parse(txt).unwrap();
        assert_eq!(e.tag_name(), Some("tag"));
        let web = e.find("web").expect("web");
        assert_eq!(web.find_value("method").unwrap().as_str(), Some("GET"));
        assert_eq!(web.find_value("resourcePath").unwrap().as_str(), Some(""));
    }

    #[test]
    fn find_accessors() {
        let e = sexp!["cert", ["issuer", "alice"], ["subject", "bob"]];
        assert_eq!(e.find_value("issuer").unwrap().as_str(), Some("alice"));
        assert_eq!(e.find_value("subject").unwrap().as_str(), Some("bob"));
        assert!(e.find("tag").is_none());
        assert!(e.find_value("missing").is_none());
    }

    #[test]
    fn nested_empty_list() {
        let e = Sexp::list(vec![Sexp::list(vec![]), Sexp::from("x")]);
        let c = e.canonical();
        assert_eq!(c, b"(()1:x)");
        assert_eq!(Sexp::parse(&c).unwrap(), e);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Sexp::parse(b"(unterminated").is_err());
        assert!(Sexp::parse(b")").is_err());
        assert!(Sexp::parse(b"5:ab").is_err());
        assert!(Sexp::parse(b"").is_err());
        assert!(Sexp::parse(b"(a) trailing").is_err());
        assert!(Sexp::parse(b"{not-base64!}").is_err());
    }

    #[test]
    fn parse_many_sequence() {
        let v = Sexp::parse_many(b"(a b) (c) atom").unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].as_str(), Some("atom"));
    }

    #[test]
    fn ordering_is_total() {
        let a = Sexp::from("a");
        let b = Sexp::from("b");
        let l = Sexp::list(vec![a.clone()]);
        assert!(a < b);
        // Atoms order before/after lists deterministically.
        assert_ne!(a.cmp(&l), std::cmp::Ordering::Equal);
    }

    #[test]
    fn as_u64_parses_decimal() {
        assert_eq!(Sexp::int(12345).as_u64(), Some(12345));
        assert_eq!(Sexp::from("nope").as_u64(), None);
        assert_eq!(Sexp::list(vec![]).as_u64(), None);
    }

    #[test]
    fn display_hint_distinguishes_atoms() {
        let plain = Sexp::atom("x");
        let hinted = Sexp::hinted_atom("h", "x");
        assert_ne!(plain, hinted);
        assert_ne!(plain.canonical(), hinted.canonical());
    }
}
