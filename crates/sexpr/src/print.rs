//! Advanced-encoding printer.
//!
//! Chooses, per atom, the most readable advanced form that round-trips:
//! bare token, quoted string, or base64 between `|` bars.

use crate::base64::b64_encode;
use crate::parse::{is_token_char, is_token_start};
use crate::Sexp;

/// Writes the advanced encoding of `e` into `out`.
///
/// When `pretty` is set, lists longer than a few elements break across lines
/// with two-space indentation per `depth`.
pub(crate) fn write_advanced(e: &Sexp, out: &mut String, depth: usize, pretty: bool) {
    match e {
        Sexp::Atom { hint, bytes } => {
            if let Some(h) = hint {
                out.push('[');
                write_atom_bytes(h, out);
                out.push(']');
            }
            write_atom_bytes(bytes, out);
        }
        Sexp::List(items) => {
            out.push('(');
            let break_lines = pretty && items.len() > 3;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    if break_lines {
                        out.push('\n');
                        for _ in 0..=depth {
                            out.push_str("  ");
                        }
                    } else {
                        out.push(' ');
                    }
                }
                write_advanced(item, out, depth + 1, pretty);
            }
            out.push(')');
        }
    }
}

fn write_atom_bytes(bytes: &[u8], out: &mut String) {
    if is_bare_token(bytes) {
        // SAFETY-free: token chars are ASCII.
        out.push_str(std::str::from_utf8(bytes).expect("token bytes are ASCII"));
    } else if is_quotable(bytes) {
        out.push('"');
        for &b in bytes {
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                _ => out.push(b as char),
            }
        }
        out.push('"');
    } else {
        out.push('|');
        out.push_str(&b64_encode(bytes));
        out.push('|');
    }
}

/// A bare token: nonempty, token-safe characters, non-digit start.
fn is_bare_token(bytes: &[u8]) -> bool {
    match bytes.first() {
        None => false,
        Some(&c0) if !is_token_start(c0) => false,
        Some(_) => bytes.iter().all(|&c| is_token_char(c)),
    }
}

/// Quotable: printable ASCII and common whitespace escapes only.
fn is_quotable(bytes: &[u8]) -> bool {
    bytes
        .iter()
        .all(|&b| (0x20..0x7f).contains(&b) || matches!(b, b'\n' | b'\r' | b'\t'))
}

#[cfg(test)]
mod tests {
    use crate::{sexp, Sexp};

    #[test]
    fn tokens_print_bare() {
        assert_eq!(Sexp::from("hello-world").advanced(), "hello-world");
        assert_eq!(Sexp::from("a/b.c_d").advanced(), "a/b.c_d");
    }

    #[test]
    fn digit_start_is_quoted_or_verbatim() {
        // `9lives` starts with a digit: cannot print bare (would parse as a
        // length prefix), so it must round-trip via quotes.
        let e = Sexp::from("9lives");
        let a = e.advanced();
        assert_eq!(Sexp::parse(a.as_bytes()).unwrap(), e);
        assert_ne!(a, "9lives");
    }

    #[test]
    fn binary_prints_base64() {
        let e = Sexp::atom(vec![0u8, 1, 2]);
        assert_eq!(e.advanced(), "|AAEC|");
    }

    #[test]
    fn pretty_breaks_long_lists() {
        let e = sexp!["cert", ["a", "1"], ["b", "2"], ["c", "3"], ["d", "4"]];
        let p = e.advanced_pretty();
        assert!(p.contains('\n'));
        assert_eq!(Sexp::parse(p.as_bytes()).unwrap(), e);
    }

    #[test]
    fn empty_atom_roundtrips() {
        let e = Sexp::atom(Vec::new());
        let a = e.advanced();
        assert_eq!(Sexp::parse(a.as_bytes()).unwrap(), e);
    }
}
