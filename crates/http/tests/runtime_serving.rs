//! The HTTP server on the bounded runtime, over real TCP through the
//! connection reactor: overload shedding (a saturated pool answers
//! `503` and counts the drop), and graceful shutdown (in-flight
//! requests drain, late connections hear a shutting-down `503`, then
//! the reactor closes the listener and `serve_tcp` returns).

use snowflake_http::{HttpRequest, HttpResponse, HttpServer};
use snowflake_runtime::{PoolConfig, ServerRuntime};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// An open/closed gate plus a count of handlers currently parked on it.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicUsize,
}

impl Gate {
    fn closed() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn wait_entered(&self, n: usize) {
        wait_for(|| self.entered.load(Ordering::SeqCst) >= n);
    }
}

fn wait_for(mut cond: impl FnMut() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(start.elapsed().as_secs() < 10, "condition not reached in time");
        std::thread::yield_now();
    }
}

/// Routes `/slow` through the gate and serves `/fast` immediately.
fn gated_server(gate: &Arc<Gate>) -> Arc<HttpServer> {
    let server = HttpServer::new();
    let g = Arc::clone(gate);
    server.route(
        "/slow",
        Arc::new(move |_req: &HttpRequest| {
            g.wait();
            HttpResponse::ok("text/plain", b"slow done".to_vec())
        }),
    );
    server.route(
        "/fast",
        Arc::new(|_req: &HttpRequest| HttpResponse::ok("text/plain", b"fast".to_vec())),
    );
    server
}

/// Connects and sends one close-delimited GET without reading the reply.
fn send_get(addr: std::net::SocketAddr, path: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut req = HttpRequest::get(path);
    req.set_header("Connection", "close");
    req.write_to(&mut stream).unwrap();
    stream
}

/// Reads the full response off a connection.
fn read_response(stream: TcpStream) -> HttpResponse {
    HttpResponse::read_from(&mut BufReader::new(stream))
        .unwrap()
        .expect("server must reply before closing")
}

/// A saturated pool sheds the extra request with a real `503` on the
/// wire (and counts it), while admitted requests are served once a
/// worker frees up.  The shed happens at *frame* dispatch now — the
/// reactor buffers the request and only pays a pool slot for a complete
/// ready frame.
#[test]
fn saturated_server_sheds_with_503() {
    let gate = Gate::closed();
    let server = gated_server(&gate);
    let runtime = ServerRuntime::new(PoolConfig::new("http-shed", 1, 1));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (srv, rt) = (Arc::clone(&server), Arc::clone(&runtime));
    let acceptor = std::thread::spawn(move || srv.serve_tcp(listener, &rt));

    // Request 1 occupies the only worker (its handler parks on the
    // gate); request 2 fills the one queue slot.
    let c1 = send_get(addr, "/slow");
    gate.wait_entered(1);
    let c2 = send_get(addr, "/fast");
    wait_for(|| runtime.stats().submitted == 2);

    // Request 3 is shed: a 503 on its own wire, a counted drop.
    let c3 = send_get(addr, "/fast");
    let resp = read_response(c3);
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.header("Retry-After"), Some("1"));
    assert_eq!(runtime.stats().shed, 1);

    // Releasing the gate serves both admitted requests.
    gate.open();
    assert_eq!(read_response(c1).body, b"slow done");
    assert_eq!(read_response(c2).body, b"fast");

    // Shutdown drains the (now idle) reactor, closes the listener, and
    // serve_tcp returns; the port no longer accepts.
    runtime.shutdown();
    acceptor.join().unwrap().unwrap();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after drain"
    );
}

/// Graceful shutdown: the in-flight request completes (drain), a
/// connection arriving during the drain hears a shutting-down 503, and
/// the blocked serve_tcp returns once the reactor closes the listener.
#[test]
fn shutdown_drains_in_flight_and_refuses_new() {
    let gate = Gate::closed();
    let server = gated_server(&gate);
    let runtime = ServerRuntime::new(PoolConfig::new("http-drain", 1, 4));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (srv, rt) = (Arc::clone(&server), Arc::clone(&runtime));
    let acceptor = std::thread::spawn(move || srv.serve_tcp(listener, &rt));

    // One request is mid-handler when shutdown begins.
    let c1 = send_get(addr, "/slow");
    gate.wait_entered(1);
    let rt = Arc::clone(&runtime);
    let closer = std::thread::spawn(move || rt.shutdown());
    wait_for(|| runtime.is_shutting_down());
    assert!(!closer.is_finished(), "shutdown must block on the drain");

    // A connection arriving during the drain is refused with a 503 —
    // audited and counted in the runtime's shed ledger.
    let late = send_get(addr, "/fast");
    let resp = read_response(late);
    assert_eq!(resp.status, 503);
    assert!(String::from_utf8_lossy(&resp.body).contains("shutting down"));
    assert_eq!(runtime.stats().shed, 1, "drain-time shed is counted");
    assert!(runtime
        .sheds_by_surface()
        .contains(&("http".to_owned(), 1)));

    // The in-flight request still completes: that is the drain.  Only
    // then does the reactor close the listener and release serve_tcp.
    gate.open();
    assert_eq!(read_response(c1).body, b"slow done");
    closer.join().unwrap();
    acceptor.join().unwrap().unwrap();
    assert_eq!(runtime.stats().in_flight, 0);
    assert_eq!(runtime.stats().completed, 1);
}

/// Keep-alive parking: a connection that completes a request stays open
/// parked in the reactor — holding no worker — and serves a second
/// request on the same socket.
#[test]
fn keep_alive_connection_parks_between_requests() {
    let gate = Gate::closed();
    let server = gated_server(&gate);
    let runtime = ServerRuntime::new(PoolConfig::new("http-park", 1, 4));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (srv, rt) = (Arc::clone(&server), Arc::clone(&runtime));
    let acceptor = std::thread::spawn(move || srv.serve_tcp(listener, &rt));

    let mut stream = TcpStream::connect(addr).unwrap();
    for i in 0..2 {
        let mut req = HttpRequest::get("/fast");
        req.set_header("Connection", "keep-alive");
        req.write_to(&mut stream).unwrap();
        let resp = HttpResponse::read_from(&mut BufReader::new(&mut stream))
            .unwrap()
            .expect("reply on a kept-alive socket");
        assert_eq!(resp.body, b"fast", "request {i}");
        assert_eq!(resp.header("Connection"), Some("keep-alive"));
    }

    // Between requests: parked in the reactor, zero workers in flight.
    wait_for(|| runtime.reactor_stats().parked == 1);
    assert_eq!(runtime.stats().in_flight, 0);
    assert_eq!(runtime.reactor_stats().frames_dispatched, 2);

    runtime.shutdown();
    acceptor.join().unwrap().unwrap();
}
