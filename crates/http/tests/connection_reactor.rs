//! Adversarial connection behavior against the reactor-backed HTTP
//! server: a slow-loris client dribbling one header byte at a time never
//! consumes a worker and is reaped by the timer wheel, and shutdown with
//! parked keep-alive connections closes them instead of waiting out
//! their idle timers.

use snowflake_http::{HttpRequest, HttpResponse, HttpServer};
use snowflake_runtime::{PoolConfig, ReactorConfig, ServerRuntime};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn fast_server() -> Arc<HttpServer> {
    let server = HttpServer::new();
    server.route(
        "/fast",
        Arc::new(|_req: &HttpRequest| HttpResponse::ok("text/plain", b"fast".to_vec())),
    );
    server
}

fn wait_for(mut cond: impl FnMut() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(start.elapsed().as_secs() < 10, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A client dribbling an incomplete request one byte at a time holds no
/// worker — the partial frame buffers in the reactor — and because it
/// never completes a request, the idle deadline armed at accept is never
/// refreshed: the timer wheel reaps it.
#[test]
fn slow_loris_parks_then_is_reaped() {
    let server = fast_server();
    let runtime = ServerRuntime::with_reactor_config(
        PoolConfig::new("http-loris", 1, 2),
        ReactorConfig {
            idle_timeout: Duration::from_millis(400),
            ..ReactorConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (srv, rt) = (Arc::clone(&server), Arc::clone(&runtime));
    let acceptor = std::thread::spawn(move || srv.serve_tcp(listener, &rt));

    // Dribble half a request, one byte at a time, pausing between bytes
    // (but well inside the idle window, so only non-progress reaps it).
    let mut loris = TcpStream::connect(addr).unwrap();
    for byte in b"GET /fast HT" {
        loris.write_all(&[*byte]).unwrap();
        loris.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }

    // The partial frame is buffered in the reactor: connection open, no
    // pool job ever submitted for it.
    wait_for(|| runtime.reactor_stats().open_connections == 1);
    assert_eq!(runtime.stats().submitted, 0, "no worker for a partial frame");
    assert_eq!(runtime.reactor_stats().frames_dispatched, 0);

    // Meanwhile a well-behaved client on the same 1-worker pool is
    // served: the loris is starving nothing.
    let mut ok = TcpStream::connect(addr).unwrap();
    let mut req = HttpRequest::get("/fast");
    req.set_header("Connection", "close");
    req.write_to(&mut ok).unwrap();
    let resp = HttpResponse::read_from(&mut BufReader::new(ok)).unwrap().unwrap();
    assert_eq!(resp.body, b"fast");

    // The idle deadline (armed at accept, never re-armed: no request
    // ever completed) fires and the wheel reaps the loris: EOF.
    loris
        .set_read_timeout(Some(Duration::from_secs(8)))
        .unwrap();
    let mut buf = [0u8; 16];
    let n = loris.read(&mut buf).unwrap();
    assert_eq!(n, 0, "reaped connection must read EOF");
    wait_for(|| runtime.reactor_stats().reaped_idle >= 1);

    runtime.shutdown();
    acceptor.join().unwrap().unwrap();
}

/// Shutdown with connections parked mid-keep-alive: the drain closes
/// them immediately (they hold no in-flight work) rather than waiting
/// out their idle timers, and `serve_tcp` returns.
#[test]
fn drain_closes_parked_keep_alive_connections() {
    let server = fast_server();
    // A long idle timeout: if the drain waited for idle reaping, this
    // test would time out.
    let runtime = ServerRuntime::with_reactor_config(
        PoolConfig::new("http-drain-parked", 2, 4),
        ReactorConfig {
            idle_timeout: Duration::from_secs(600),
            ..ReactorConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (srv, rt) = (Arc::clone(&server), Arc::clone(&runtime));
    let acceptor = std::thread::spawn(move || srv.serve_tcp(listener, &rt));

    // Three clients complete a keep-alive request each and stay parked.
    let mut parked = Vec::new();
    for _ in 0..3 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut req = HttpRequest::get("/fast");
        req.set_header("Connection", "keep-alive");
        req.write_to(&mut stream).unwrap();
        let resp = HttpResponse::read_from(&mut BufReader::new(&mut stream))
            .unwrap()
            .unwrap();
        assert_eq!(resp.body, b"fast");
        parked.push(stream);
    }
    wait_for(|| runtime.reactor_stats().parked == 3);

    // Shutdown returns promptly: parked connections are closed, not
    // drained like in-flight work.
    let begun = std::time::Instant::now();
    runtime.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(60),
        "drain must not wait for parked idle timers"
    );
    acceptor.join().unwrap().unwrap();

    // Every parked client sees EOF.
    for mut stream in parked {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(stream.read(&mut buf).unwrap(), 0, "closed at drain");
    }
    assert_eq!(runtime.reactor_stats().open_connections, 0);
}
