//! The conventional HTTP authentication methods (RFC 2617), provided for
//! comparison with Snowflake Authorization — "Both methods authenticate the
//! client as the holder of a secret password, and leave authorization to an
//! ACL at the server" (§5.3).

use snowflake_http::auth::{basic_authorization, digest_response, parse_basic, verify_digest};
use snowflake_http::{duplex, HttpClient, HttpRequest, HttpResponse, HttpServer};
use std::sync::Arc;

/// A Basic-auth handler: the ACL lives at the server — exactly the coupling
/// Snowflake removes.
fn basic_guard(req: &HttpRequest) -> HttpResponse {
    let acl = [("alice", "wonderland")];
    match req.header("Authorization").and_then(parse_basic) {
        Some((user, pass)) if acl.contains(&(user.as_str(), pass.as_str())) => {
            HttpResponse::ok("text/plain", format!("hello {user}").into_bytes())
        }
        Some(_) => HttpResponse::forbidden("bad credentials"),
        None => {
            let mut resp = HttpResponse::status(401, "Unauthorized", "authentication required");
            resp.set_header("WWW-Authenticate", "Basic realm=\"compare\"");
            resp
        }
    }
}

#[test]
fn basic_auth_end_to_end() {
    let server = HttpServer::new();
    server.route("/", Arc::new(basic_guard));
    let (cs, mut ss) = duplex();
    let t = std::thread::spawn(move || {
        let _ = server.serve_stream(&mut ss);
    });
    let mut client = HttpClient::new(Box::new(cs));

    // Unauthenticated → challenge.
    let mut req = HttpRequest::get("/secret");
    req.set_header("Connection", "keep-alive");
    let resp = client.send(&req).unwrap();
    assert_eq!(resp.status, 401);
    assert!(resp
        .header("WWW-Authenticate")
        .unwrap()
        .starts_with("Basic"));

    // Right password → 200; wrong → 403.
    req.set_header("Authorization", &basic_authorization("alice", "wonderland"));
    assert_eq!(client.send(&req).unwrap().status, 200);
    req.set_header("Authorization", &basic_authorization("alice", "guess"));
    assert_eq!(client.send(&req).unwrap().status, 403);

    drop(client);
    t.join().unwrap();
}

#[test]
fn digest_auth_round() {
    // Server side state for one digest exchange.
    let realm = "compare";
    let nonce = "f3a95bd4";
    let password = "wonderland";

    // Client computes the response hash; server recomputes and compares in
    // constant time.
    let client_resp = digest_response("alice", realm, password, "GET", "/secret", nonce);
    let server_expect = digest_response("alice", realm, password, "GET", "/secret", nonce);
    assert!(verify_digest(&server_expect, &client_resp));

    // Any parameter change breaks the hash.
    for (user, pw, method, uri, n) in [
        ("mallory", password, "GET", "/secret", nonce),
        ("alice", "guess", "GET", "/secret", nonce),
        ("alice", password, "POST", "/secret", nonce),
        ("alice", password, "GET", "/other", nonce),
        ("alice", password, "GET", "/secret", "00000000"),
    ] {
        let attempt = digest_response(user, realm, pw, method, uri, n);
        assert!(!verify_digest(&server_expect, &attempt));
    }
}
