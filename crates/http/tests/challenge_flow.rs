//! End-to-end tests of the Snowflake HTTP authorization protocol (§5.3):
//! the 401 challenge / signed-request retry, the MAC amortization, document
//! authentication, and delegation links.

use snowflake_core::{Certificate, Delegation, Principal, Tag, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::server::DocumentAuthenticator;
use snowflake_http::{
    duplex, HttpClient, HttpRequest, HttpResponse, HttpServer, ProtectedServlet, SnowflakeProxy,
    SnowflakeService,
};
use snowflake_prover::Prover;
use snowflake_sexpr::Sexp;
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

/// A protected web file service over an in-memory "site".
struct WebService {
    issuer: Principal,
    service_name: String,
}

impl SnowflakeService for WebService {
    fn issuer(&self, _req: &HttpRequest) -> Principal {
        self.issuer.clone()
    }

    fn min_tag(&self, req: &HttpRequest) -> Tag {
        snowflake_http::auth::web_tag(&req.method, &self.service_name, &req.path)
    }

    fn serve(&self, req: &HttpRequest, speaker: &Principal) -> HttpResponse {
        let body = format!("contents of {} served to {}", req.path, speaker.describe());
        HttpResponse::ok("text/plain", body.into_bytes())
    }
}

struct Rig {
    server: Arc<HttpServer>,
    servlet: Arc<ProtectedServlet<WebService>>,
    issuer: Principal,
    proxy: SnowflakeProxy,
}

fn rig(grant_tag: &str) -> Rig {
    let owner = kp("owner");
    let alice = kp("alice");
    let issuer = Principal::key(&owner.public);

    // The owner grants Alice's identity key access, delegable.
    let mut rng = DetRng::new(b"rig");
    let tag = Tag::parse(&Sexp::parse(grant_tag.as_bytes()).unwrap()).unwrap();
    let cert = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: issuer.clone(),
            tag,
            validity: Validity::always(),
            delegable: true,
        },
        &mut |b| rng.fill(b),
    );

    let mut prng = DetRng::new(b"prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_proof(snowflake_core::Proof::signed_cert(cert));
    prover.add_key(alice);

    let mut srng = DetRng::new(b"servlet");
    let servlet = ProtectedServlet::with_clock(
        WebService {
            issuer: issuer.clone(),
            service_name: "Jon's Protected Service".into(),
        },
        fixed_clock,
        Box::new(move |b| srng.fill(b)),
    );
    let server = HttpServer::new();
    server.route(
        "/",
        Arc::clone(&servlet) as Arc<dyn snowflake_http::Handler>,
    );

    let mut xrng = DetRng::new(b"proxy");
    let proxy = SnowflakeProxy::with_clock(prover, fixed_clock, Box::new(move |b| xrng.fill(b)));
    Rig {
        server,
        servlet,
        issuer,
        proxy,
    }
}

/// Spawns the server on one end of an in-memory stream and returns a client
/// on the other end.
fn connect(rig: &Rig) -> (HttpClient, std::thread::JoinHandle<()>) {
    let (client_stream, mut server_stream) = duplex();
    let server = Arc::clone(&rig.server);
    let handle = std::thread::spawn(move || {
        let _ = server.serve_stream(&mut server_stream);
    });
    (HttpClient::new(Box::new(client_stream)), handle)
}

#[test]
fn challenge_and_signed_retry() {
    let r = rig("(tag (web (method GET)))");
    let (mut client, handle) = connect(&r);

    let resp = r
        .proxy
        .execute(&mut client, HttpRequest::get("/inbox/1"))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(String::from_utf8_lossy(&resp.body).contains("/inbox/1"));

    let stats = r.servlet.stats();
    assert_eq!(stats.challenges, 1);
    assert_eq!(stats.proof_verifications, 1);
    drop(client);
    handle.join().unwrap();
}

#[test]
fn identical_request_hits_cache() {
    let r = rig("(tag (web (method GET)))");
    let (mut client, handle) = connect(&r);

    // Same request thrice: one challenge, one verification, then the
    // identical-request fast path (the "ident" bar of Figure 8).
    for _ in 0..3 {
        let resp = r
            .proxy
            .execute(&mut client, HttpRequest::get("/inbox/1"))
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    let stats = r.servlet.stats();
    assert_eq!(stats.proof_verifications, 1);
    assert!(stats.ident_hits >= 1, "{stats:?}");
    drop(client);
    handle.join().unwrap();
}

#[test]
fn insufficient_delegation_rejected() {
    // Alice only holds (web (method GET)); a POST must fail with 403 and
    // the proxy surfaces the rejection.
    let r = rig("(tag (web (method GET)))");
    let (mut client, handle) = connect(&r);

    let result = r
        .proxy
        .execute(&mut client, HttpRequest::post("/inbox", b"x".to_vec()));
    assert!(result.is_err(), "POST should not be provable: {result:?}");
    drop(client);
    handle.join().unwrap();
}

#[test]
fn stranger_has_no_proof() {
    let r = rig("(tag (web (method GET)))");
    // A proxy whose prover has no delegation chain.
    let stranger = kp("stranger");
    let mut prng = DetRng::new(b"stranger");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_key(stranger);
    let mut xrng = DetRng::new(b"stranger-proxy");
    let proxy = SnowflakeProxy::with_clock(prover, fixed_clock, Box::new(move |b| xrng.fill(b)));

    let (mut client, handle) = connect(&r);
    let result = proxy.execute(&mut client, HttpRequest::get("/inbox/1"));
    assert!(matches!(
        result,
        Err(snowflake_http::client::ProxyError::NoProof { .. })
    ));
    drop(client);
    handle.join().unwrap();
}

#[test]
fn tampered_request_after_signing_rejected() {
    let r = rig("(tag (web (method GET)))");
    let (mut client, handle) = connect(&r);

    // Sign one request, then alter the path: the hash no longer matches the
    // proof subject.
    let req = HttpRequest::get("/inbox/1");
    let tag = snowflake_http::auth::web_tag("GET", "Jon's Protected Service", "/inbox/1");
    let mut signed = r.proxy.sign_request(req, &r.issuer, &tag).unwrap();
    signed.path = "/secret/2".into();
    signed.set_header("Connection", "keep-alive");
    let resp = client.send(&signed).unwrap();
    assert_eq!(resp.status, 403, "{}", String::from_utf8_lossy(&resp.body));
    drop(client);
    handle.join().unwrap();
}

#[test]
fn mac_session_amortizes_signatures() {
    let r = rig("(tag (web))");
    let (mut client, handle) = connect(&r);

    // Establish the MAC session (one signed request)…
    let tag = Tag::parse(&Sexp::parse(b"(tag (web))").unwrap()).unwrap();
    r.proxy
        .establish_mac_session(&mut client, &r.issuer, &tag)
        .unwrap();
    assert!(r.proxy.has_mac_session(&r.issuer));

    // …then many requests ride the MAC fast path.
    for i in 0..5 {
        let resp = r
            .proxy
            .execute(&mut client, HttpRequest::get(&format!("/inbox/{i}")))
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    let stats = r.servlet.stats();
    assert_eq!(stats.mac_hits, 5, "{stats:?}");
    // Only the establishment needed a public-key verification.
    assert_eq!(stats.proof_verifications, 1, "{stats:?}");
    drop(client);
    handle.join().unwrap();
}

#[test]
fn document_authentication_end_to_end() {
    // A separate unprotected route that signs its documents.
    let doc_key = kp("doc-signer");
    let mut arng = DetRng::new(b"doc");
    let authenticator = Arc::new(DocumentAuthenticator::new(
        doc_key,
        Box::new(move |b| arng.fill(b)),
    ));
    let issuer = authenticator.issuer();

    let server = HttpServer::new();
    let auth2 = Arc::clone(&authenticator);
    server.route(
        "/",
        Arc::new(move |_req: &HttpRequest| {
            let mut resp = HttpResponse::ok("text/html", b"<p>the course list</p>".to_vec());
            auth2.attach(&mut resp, true);
            resp
        }),
    );

    let (client_stream, mut server_stream) = duplex();
    let handle = std::thread::spawn(move || {
        let _ = server.serve_stream(&mut server_stream);
    });
    let mut client = HttpClient::new(Box::new(client_stream));

    let mut prng = DetRng::new(b"p");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    let mut xrng = DetRng::new(b"x");
    let proxy = SnowflakeProxy::with_clock(prover, fixed_clock, Box::new(move |b| xrng.fill(b)));

    let resp = client.send(&HttpRequest::get("/course-list")).unwrap();
    proxy.verify_document(&resp, &issuer).unwrap();
    // Wrong issuer: rejected.
    assert!(proxy
        .verify_document(&resp, &Principal::message(b"evil"))
        .is_err());
    handle.join().unwrap();
}

#[test]
fn delegation_link_shares_access() {
    let r = rig("(tag (web (method GET)))");

    // Alice generates a link for Bob.
    let bob = kp("bob");
    let bob_principal = Principal::key(&bob.public);
    let tag = snowflake_http::auth::web_tag("GET", "Jon's Protected Service", "/inbox/1");
    let link = r
        .proxy
        .make_delegation_link(
            "http://mail.example/inbox/1",
            &bob_principal,
            &r.issuer,
            &tag,
            Validity::until(Time(2_000_000)),
        )
        .unwrap();

    // Bob's proxy imports the link: his prover now holds the chain
    // Bob ⇒ Alice ⇒ owner, so he can answer challenges.
    let mut brng = DetRng::new(b"bob-prover");
    let bob_prover = Arc::new(Prover::with_rng(Box::new(move |b| brng.fill(b))));
    bob_prover.add_key(bob);
    let mut xrng = DetRng::new(b"bob-proxy");
    let bob_proxy =
        SnowflakeProxy::with_clock(bob_prover, fixed_clock, Box::new(move |b| xrng.fill(b)));
    let url = bob_proxy.import_delegation_link(&link).unwrap();
    assert_eq!(url, "http://mail.example/inbox/1");

    let (mut client, handle) = connect(&r);
    let resp = bob_proxy
        .execute(&mut client, HttpRequest::get("/inbox/1"))
        .unwrap();
    assert_eq!(resp.status, 200);
    drop(client);
    handle.join().unwrap();
}
