//! HTTP/1.0-style message model.
//!
//! Deliberately small: request line + headers + `Content-Length` body,
//! optional keep-alive.  That is all the paper's protocols (Figure 5, the
//! MAC optimization, document authentication) require, and it keeps the
//! parsing cost honest for the Figure 7 baseline comparisons.

use std::io::{self, BufRead, Write};

/// Maximum accepted header section size (shared with the reactor frame
/// scanner, which must reject oversize frames before buffering them).
pub const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted body size (shared with the reactor frame scanner).
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (absolute, e.g. `/inbox/1`).
    pub path: String,
    /// Protocol version string (`HTTP/1.0`).
    pub version: String,
    /// Ordered header list.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A GET request with no body.
    pub fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            version: "HTTP/1.0".into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A POST request carrying `body`.
    pub fn post(path: &str, body: Vec<u8>) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            version: "HTTP/1.0".into(),
            headers: Vec::new(),
            body,
        }
    }

    /// First value of the named header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_get(&self.headers, name)
    }

    /// Sets (replacing) a header.
    pub fn set_header(&mut self, name: &str, value: &str) {
        header_set(&mut self.headers, name, value);
    }

    /// Removes all occurrences of a header.
    pub fn remove_header(&mut self, name: &str) {
        self.headers.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// Serializes onto a writer (adds `Content-Length`).
    pub fn write_to(&self, w: &mut dyn Write) -> io::Result<()> {
        let mut head = format!("{} {} {}\r\n", self.method, self.path, self.version);
        for (n, v) in &self.headers {
            if n.eq_ignore_ascii_case("content-length") {
                continue;
            }
            head.push_str(&format!("{n}: {v}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Parses one request from a buffered reader; `Ok(None)` on clean EOF.
    pub fn read_from(r: &mut dyn BufRead) -> io::Result<Option<HttpRequest>> {
        let Some(line) = read_line(r)? else {
            return Ok(None);
        };
        let mut parts = line.split_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v.to_string()),
            _ => return Err(bad("malformed request line")),
        };
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(Some(HttpRequest {
            method,
            path,
            version,
            headers,
            body,
        }))
    }

    /// Does the client ask to keep the connection open?
    pub fn keep_alive(&self) -> bool {
        self.header("Connection")
            .map(|v| v.eq_ignore_ascii_case("keep-alive"))
            .unwrap_or(false)
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Ordered header list.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 response with the given content type and body.
    pub fn ok(content_type: &str, body: Vec<u8>) -> HttpResponse {
        HttpResponse {
            status: 200,
            reason: "OK".into(),
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// A plain-text response with an arbitrary status.
    pub fn status(status: u16, reason: &str, body: &str) -> HttpResponse {
        HttpResponse {
            status,
            reason: reason.into(),
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: body.as_bytes().to_vec(),
        }
    }

    /// 404.
    pub fn not_found() -> HttpResponse {
        Self::status(404, "Not Found", "not found")
    }

    /// 403 — "to indicate the authorization failure".
    pub fn forbidden(msg: &str) -> HttpResponse {
        Self::status(403, "Forbidden", msg)
    }

    /// First value of the named header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_get(&self.headers, name)
    }

    /// Sets (replacing) a header.
    pub fn set_header(&mut self, name: &str, value: &str) {
        header_set(&mut self.headers, name, value);
    }

    /// Serializes onto a writer (adds `Content-Length`).
    pub fn write_to(&self, w: &mut dyn Write) -> io::Result<()> {
        let mut head = format!("HTTP/1.0 {} {}\r\n", self.status, self.reason);
        for (n, v) in &self.headers {
            if n.eq_ignore_ascii_case("content-length") {
                continue;
            }
            head.push_str(&format!("{n}: {v}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Parses one response; `Ok(None)` on clean EOF.
    pub fn read_from(r: &mut dyn BufRead) -> io::Result<Option<HttpResponse>> {
        let Some(line) = read_line(r)? else {
            return Ok(None);
        };
        let mut parts = line.splitn(3, ' ');
        let _version = parts.next().ok_or_else(|| bad("missing version"))?;
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status code"))?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(Some(HttpResponse {
            status,
            reason,
            headers,
            body,
        }))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_line(r: &mut dyn BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_HEADER_BYTES {
        return Err(bad("header line too long"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_headers(r: &mut dyn BufRead) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_line(r)?.ok_or_else(|| bad("eof inside headers"))?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEADER_BYTES {
            return Err(bad("header section too large"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

fn read_body(r: &mut dyn BufRead, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
    let len: usize = header_get(headers, "Content-Length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    io::Read::read_exact(r, &mut body)?;
    Ok(body)
}

fn header_get<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn header_set(headers: &mut Vec<(String, String)>, name: &str, value: &str) {
    headers.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    headers.push((name.to_string(), value.to_string()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(req: &HttpRequest) -> HttpRequest {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        HttpRequest::read_from(&mut BufReader::new(&buf[..]))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let mut req = HttpRequest::get("/inbox/1");
        req.set_header("Host", "mail.example");
        req.set_header("X-Custom", "value with spaces");
        let back = roundtrip_request(&req);
        assert_eq!(back.method, "GET");
        assert_eq!(back.path, "/inbox/1");
        assert_eq!(back.header("host"), Some("mail.example"));
        assert_eq!(back.header("x-custom"), Some("value with spaces"));
        assert!(back.body.is_empty());
    }

    #[test]
    fn post_body_roundtrip() {
        let req = HttpRequest::post("/submit", b"a=1&b=2".to_vec());
        let back = roundtrip_request(&req);
        assert_eq!(back.body, b"a=1&b=2");
        assert_eq!(back.header("content-length"), Some("7"));
    }

    #[test]
    fn response_roundtrip() {
        let mut resp = HttpResponse::ok("text/html", b"<p>hi</p>".to_vec());
        resp.set_header("Server", "Snowflake");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = HttpResponse::read_from(&mut BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.reason, "OK");
        assert_eq!(back.body, b"<p>hi</p>");
        assert_eq!(back.header("server"), Some("Snowflake"));
    }

    #[test]
    fn eof_returns_none() {
        let empty: &[u8] = b"";
        assert!(HttpRequest::read_from(&mut BufReader::new(empty))
            .unwrap()
            .is_none());
        assert!(HttpResponse::read_from(&mut BufReader::new(empty))
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_rejected() {
        for bytes in [
            &b"NOT-A-REQUEST\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],                    // missing version
            &b"GET / HTTP/1.0\r\nbroken\r\n\r\n"[..], // header without colon
        ] {
            assert!(
                HttpRequest::read_from(&mut BufReader::new(bytes)).is_err(),
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn header_replacement() {
        let mut req = HttpRequest::get("/");
        req.set_header("A", "1");
        req.set_header("a", "2");
        assert_eq!(req.header("A"), Some("2"));
        assert_eq!(
            req.headers
                .iter()
                .filter(|(n, _)| n.eq_ignore_ascii_case("a"))
                .count(),
            1
        );
        req.remove_header("A");
        assert_eq!(req.header("A"), None);
    }

    #[test]
    fn keep_alive_flag() {
        let mut req = HttpRequest::get("/");
        assert!(!req.keep_alive());
        req.set_header("Connection", "keep-alive");
        assert!(req.keep_alive());
        req.set_header("Connection", "close");
        assert!(!req.keep_alive());
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let mut buf = Vec::new();
        HttpRequest::get("/a").write_to(&mut buf).unwrap();
        HttpRequest::get("/b").write_to(&mut buf).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(HttpRequest::read_from(&mut r).unwrap().unwrap().path, "/a");
        assert_eq!(HttpRequest::read_from(&mut r).unwrap().unwrap().path, "/b");
        assert!(HttpRequest::read_from(&mut r).unwrap().is_none());
    }
}
