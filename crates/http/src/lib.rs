//! HTTP with Snowflake authorization (paper §5.3).
//!
//! "Not all applications can assume that our ssh-enhanced version of RMI is
//! available as an RPC mechanism.  Indeed, the most visible RPC mechanism on
//! the Internet is HTTP."  This crate provides:
//!
//! * [`message`] — HTTP/1.0-style request/response parsing and serialization.
//! * [`stream`] — byte-stream plumbing: an in-memory duplex stream and an
//!   adapter that runs HTTP over a framed [`snowflake_channel::AuthChannel`]
//!   (that is how the SSL-like baseline carries HTTP over the secure
//!   channel).
//! * [`auth`] — the **Snowflake Authorization** method: the server's `401`
//!   challenge carries `Sf-ServiceIssuer` and `Sf-MinimumTag` (Figure 5);
//!   the client's retry carries a proof whose subject is *the hash of the
//!   request, less the Authorization header*.  Basic and Digest
//!   authentication are provided for comparison.
//! * [`server`] — a small routing HTTP server plus [`ProtectedServlet`],
//!   the abstract servlet of §5.3.4: concrete services supply a
//!   request→issuer map and a request→minimum-restriction map, and the
//!   framework constructs challenges and verifies proofs.
//! * [`mac`] — the signed-request optimization of §5.3.1: the server sends
//!   an encrypted MAC secret; later requests authenticate with a cheap
//!   HMAC, and the MAC session is itself a principal in the end-to-end
//!   chain.
//! * [`metrics`] — the `GET /metrics` exporter surface: the process-global
//!   [`snowflake_metrics::Registry`] rendered as Prometheus text, riding
//!   the reactor with sheds counted and scrapes audited under
//!   `surface="metrics"`.
//! * [`client`] — an HTTP client and the Snowflake **proxy** of §5.3.5 that
//!   answers challenges with its Prover, maintains MAC sessions, verifies
//!   server document-authentication proofs (§5.3.3), and generates/imports
//!   delegation links.

pub mod auth;
pub mod client;
pub mod mac;
pub mod message;
pub mod metrics;
pub mod server;
pub mod stream;

pub use auth::{request_hash, request_principal, WWW_AUTH_SNOWFLAKE};
pub use client::{HttpClient, SnowflakeProxy};
pub use mac::{MacSessionStore, DEFAULT_MAC_SHARDS, MAC_SESSION_PATH};
pub use message::{HttpRequest, HttpResponse};
pub use metrics::{serve_metrics, MetricsEndpoint, METRICS_CONTENT_TYPE, METRICS_PATH};
pub use server::{Handler, HttpServer, ProtectedServlet, SnowflakeService};
pub use stream::{bounded_duplex, duplex, ChannelStream, MemStream, DEFAULT_STREAM_CAPACITY};
